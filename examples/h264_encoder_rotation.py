#!/usr/bin/env python3
"""The H.264 case study end to end (paper §6, Figs. 7/11/12).

Encodes synthetic macroblocks through the Fig. 7 pipeline (functional —
real SATD motion search, DCT, Hadamard transforms), then prices the same
workload on the RISPP run-time under different Atom-Container budgets and
compares against the paper's published per-macroblock numbers.

Run:  python examples/h264_encoder_rotation.py
"""

from repro.apps.h264 import (
    EncoderPipeline,
    REFERENCE_CONFIGS,
    build_h264_library,
    macroblock_cycles,
    macroblock_stream,
    si_cycles_for_config,
)
from repro.reporting import render_bars, render_table
from repro.runtime import RisppRuntime

PAPER = {
    "Opt. SW": 201_065,
    "4 Atoms": 60_244,
    "5 Atoms": 59_135,
    "6 Atoms": 58_287,
}


def main() -> None:
    # -- functional pass: really encode two macroblocks --------------------
    pipeline = EncoderPipeline()
    macroblocks = macroblock_stream(2, seed=5)
    for i, mb in enumerate(macroblocks):
        out = pipeline.encode_macroblock(mb)
        print(
            f"MB{i}: SI calls {out.si_counts}, "
            f"mean best SATD {sum(out.best_satd) / 16:.0f}, "
            f"intra={'yes' if out.intra_injected else 'no'}"
        )

    # -- rate-distortion: the quantizing decoder-in-the-encoder ------------
    print("\nRate-distortion sweep (TQ chain, one macroblock):")
    import numpy as np

    for qp in (0, 12, 24, 36, 48):
        out = EncoderPipeline(qp=qp).encode_macroblock(macroblocks[0])
        nz = sum(
            int(np.count_nonzero(out.luma_levels[i][j]))
            for i in range(4)
            for j in range(4)
        )
        print(f"  QP {qp:2d}: PSNR {out.luma_psnr(macroblocks[0].luma):5.1f} dB, "
              f"{nz:3d}/256 non-zero levels")

    # -- cycle model: the Fig. 12 comparison -------------------------------
    library = build_h264_library()
    sis = ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")
    rows = []
    totals = {}
    for config in REFERENCE_CONFIGS:
        latencies = {s: si_cycles_for_config(library, s, config) for s in sis}
        total = macroblock_cycles(latencies)
        totals[config] = total
        rows.append(
            [config, *latencies.values(), total, PAPER[config],
             f"{100 * (total - PAPER[config]) / PAPER[config]:+.2f}%"]
        )
    print()
    print(
        render_table(
            ["config", *sis, "cycles/MB", "paper", "dev"],
            rows,
            title="Fig. 11 + Fig. 12: SI latencies and whole-encoder cycles",
        )
    )
    print()
    print(render_bars(totals, title="Fig. 12 (linear)", unit=" cyc"))

    # -- live rotation: a runtime processing frames ------------------------
    print("\nForecast-driven rotation while encoding:")
    runtime = RisppRuntime(library, num_containers=6, core_mhz=100.0)
    runtime.forecast("SATD_4x4", now=0, expected=256)
    runtime.forecast("DCT_4x4", now=0, expected=16)
    now = 600_000  # warm-up: rotations complete during preprocessing
    for name, count in (("SATD_4x4", 256), ("DCT_4x4", 16), ("HT_4x4", 1)):
        spent = 0
        for _ in range(count):
            c = runtime.execute_si(name, now)
            spent += c
            now += c
        print(f"  {name:9s} x{count:3d}: {spent:7,} cycles "
              f"({runtime.si_mode(name, now)})")
    print(f"  rotations: {runtime.stats.rotations_requested}, "
          f"HW fraction: {100 * runtime.stats.hw_fraction():.1f}%")


if __name__ == "__main__":
    main()
