#!/usr/bin/env python3
"""Automatic SI identification and generation (paper §6 future work).

Starting from plain scalar code — a 1-D transform butterfly followed by
an absolute-value accumulation, the inner loop of SATD — the compiler
passes (a) enumerate convex candidate SIs under register-port
constraints, (b) group the chosen candidate's operations into reusable
Atom kinds, and (c) auto-generate the molecule catalogue with the
dataflow scheduler.  The result is a rotatable SpecialInstruction the
run-time manager can forecast and rotate like any hand-designed one.

Run:  python examples/si_identification.py
"""

from repro.compiler import (
    Constraints,
    Operation,
    OperationGraph,
    best_candidates,
    enumerate_si_candidates,
    si_from_candidate,
)
from repro.core import ForecastedSI, select_greedy, SILibrary
from repro.reporting import render_table


def satd_inner_loop() -> OperationGraph:
    """The scalar inner loop: butterfly + |.| accumulation of one 4-vector."""
    ops = [
        # residuals
        Operation("d0", "sub", ("%a0", "%b0"), latency=2),
        Operation("d1", "sub", ("%a1", "%b1"), latency=2),
        Operation("d2", "sub", ("%a2", "%b2"), latency=2),
        Operation("d3", "sub", ("%a3", "%b3"), latency=2),
        # butterfly stage 1
        Operation("e0", "add", ("d0", "d3"), latency=2),
        Operation("e1", "add", ("d1", "d2"), latency=2),
        Operation("e2", "sub", ("d1", "d2"), latency=2),
        Operation("e3", "sub", ("d0", "d3"), latency=2),
        # butterfly stage 2
        Operation("y0", "add", ("e0", "e1"), latency=2),
        Operation("y1", "add", ("e3", "e2"), latency=2),
        Operation("y2", "sub", ("e0", "e1"), latency=2),
        Operation("y3", "sub", ("e3", "e2"), latency=2),
        # absolute values + reduction
        Operation("m0", "abs", ("y0",), latency=2),
        Operation("m1", "abs", ("y1",), latency=2),
        Operation("m2", "abs", ("y2",), latency=2),
        Operation("m3", "abs", ("y3",), latency=2),
        Operation("s0", "add", ("m0", "m1"), latency=2),
        Operation("s1", "add", ("m2", "m3"), latency=2),
        Operation("sum", "add", ("s0", "s1"), latency=2),
    ]
    return OperationGraph(ops, live_outs=("sum",))


def main() -> None:
    graph = satd_inner_loop()
    print(f"input: {len(graph)} scalar operations, "
          f"software cost {graph.software_cycles(frozenset(graph.op_ids()))} cycles")

    constraints = Constraints(
        max_inputs=8, max_outputs=2, max_ops=20, io_overhead_cycles=2
    )
    candidates = enumerate_si_candidates(graph, constraints, max_candidates=200_000)
    print(f"\n{len(candidates)} convex candidates under "
          f"{constraints.max_inputs} inputs / {constraints.max_outputs} outputs")

    rows = [
        [
            i,
            len(c),
            len(c.inputs),
            len(c.outputs),
            c.software_cycles,
            c.hardware_cycles,
            f"{c.speedup:.1f}x",
        ]
        for i, c in enumerate(candidates[:8])
    ]
    print(render_table(
        ["rank", "ops", "in", "out", "SW cyc", "HW cyc", "speed-up"],
        rows, title="Top candidates",
    ))

    # Emit the best one as a rotatable SI.
    best = candidates[0]
    si, catalogue, report = si_from_candidate(
        "SATD_ROW", graph, best, counts_allowed=(1, 2, 4)
    )
    print(f"\nGenerated SI '{si.name}': {report.kept} molecules "
          f"(from {report.explored} enumerated), atoms: "
          f"{', '.join(k.name for k in catalogue)}")
    for impl in si.implementations:
        print(f"  {impl.label:<18} {impl.atoms():2d} atoms -> {impl.cycles:2d} cycles")

    # And use it like any library SI.
    library = SILibrary(catalogue, [si])
    result = select_greedy(
        library, [ForecastedSI(si, expected_executions=256)], container_budget=6
    )
    chosen = result.chosen[si.name]
    print(f"\nruntime selection at 6 containers: "
          f"molecule '{chosen.label}' ({chosen.cycles} cycles, "
          f"{result.containers_used} containers)")

    # Disjoint cover: accelerate different code regions.
    cover = best_candidates(graph, constraints, count=3, max_candidates=200_000)
    print("\ndisjoint greedy cover:",
          [f"{len(c)} ops saving {c.saved_cycles} cyc" for c in cover])


if __name__ == "__main__":
    main()
