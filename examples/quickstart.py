#!/usr/bin/env python3
"""Quickstart: the RISPP model in five minutes.

Walks through the public API bottom-up: the Molecule algebra, a Special
Instruction with multiple hardware molecules, run-time molecule selection
under a container budget, and a forecast-driven rotation on the run-time
manager.

Run:  python examples/quickstart.py
"""

from repro import (
    AtomCatalogue,
    AtomKind,
    ForecastedSI,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    select_greedy,
    supremum,
)
from repro.runtime import RisppRuntime


def main() -> None:
    # 1. An atom catalogue: two rotatable data paths + a static helper.
    catalogue = AtomCatalogue.of(
        [
            AtomKind("Butterfly", bitstream_bytes=60_000),
            AtomKind("AbsSum", bitstream_bytes=55_000),
            AtomKind("Fetch", reconfigurable=False),
        ]
    )
    space = catalogue.space

    # 2. Molecules are atom-count vectors with lattice algebra.
    small = space.molecule({"Butterfly": 1, "AbsSum": 1, "Fetch": 1})
    fast = space.molecule({"Butterfly": 4, "AbsSum": 2, "Fetch": 1})
    print("union      :", small | fast)          # element-wise max
    print("intersection:", small & fast)         # element-wise min
    print("residual    :", fast - small)         # atoms still to load
    print("determinant :", abs(fast), "atom instances")
    print("supremum    :", supremum([small, fast]))
    print("small <= fast:", small <= fast)

    # 3. A Special Instruction: software fallback + hardware molecules.
    cost = SpecialInstruction(
        "COST",
        space,
        software_cycles=400,
        implementations=[
            MoleculeImpl(small, 30, label="minimal"),
            MoleculeImpl(fast, 10, label="fast"),
        ],
        description="a made-up block-matching cost function",
    )
    library = SILibrary(catalogue, [cost])

    # Statically check the library with rispp-lint before using it.
    from repro.analysis import lint_library

    lint_library(library, containers=6).raise_on_error()
    print("\nrispp-lint : library invariants hold")
    print("Rep(COST)  :", cost.rep())
    print("speed-up   :", f"{cost.max_expected_speedup():.0f}x over software")

    # 4. Molecule selection: best implementations within a budget.
    for budget in (0, 2, 6):
        result = select_greedy(
            library, [ForecastedSI(cost, expected_executions=100)], budget
        )
        impl = result.chosen["COST"]
        print(
            f"budget={budget}: "
            + (f"molecule '{impl.label}' ({impl.cycles} cyc)" if impl else "software")
        )

    # 5. The run-time manager: forecast -> rotation -> gradual upgrade.
    runtime = RisppRuntime(library, num_containers=6, core_mhz=100.0)
    runtime.forecast("COST", now=0, expected=100)
    print("\nexecution right after the forecast:",
          runtime.execute_si("COST", now=10), "cycles (software)")
    done = max(j.finish_at for j in runtime.port.jobs)
    print(f"rotations finish at cycle {done:,}")
    print("execution after the rotations     :",
          runtime.execute_si("COST", now=done + 1), "cycles (hardware)")
    print("\nevent trace:")
    print(runtime.trace.render_timeline())


if __name__ == "__main__":
    main()
