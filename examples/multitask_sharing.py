#!/usr/bin/env python3
"""The Fig. 6 scenario: two tasks sharing six Atom Containers.

Replays the paper's T0..T5 walk-through on the behavioural runtime:
steady state, forecast-driven reallocation, software fallback, cross-task
atom reuse, and the gradual SW -> HW -> faster-HW upgrade ladder.

Run:  python examples/multitask_sharing.py
"""

from repro.apps.h264.scenario import run_fig6_scenario
from repro.reporting import render_container_timeline
from repro.sim import EventKind


def main() -> None:
    result = run_fig6_scenario()
    trace = result.runtime.trace

    t = {name: result.label(task, name)
         for task, name in (("A", "T0"), ("B", "T1"), ("B", "T2"), ("B", "T3"))}
    print("Fig. 6 checkpoints:", ", ".join(f"{k}={v:,}" for k, v in t.items()))

    print("\nContainer occupancy (the Fig. 6 chart):")
    print(render_container_timeline(trace, 6, markers=t))

    print("\nKey events:")
    interesting = (
        EventKind.FORECAST,
        EventKind.FORECAST_END,
        EventKind.REALLOCATION,
        EventKind.ROTATION_REQUESTED,
        EventKind.ROTATION_COMPLETED,
        EventKind.SI_MODE_SWITCH,
    )
    for e in trace.events:
        if e.kind in interesting:
            detail = " ".join(f"{k}={v}" for k, v in sorted(e.detail.items()))
            print(f"  @{e.cycle:>9,} {e.kind.value:<19} {e.task:<2} {e.si:<9} {detail}")

    print("\nSATD_4x4 execution-mode ladder after T2 (the T4/T5 upgrades):")
    for e in trace.of_kind(EventKind.SI_MODE_SWITCH):
        if e.si == "SATD_4x4" and e.cycle > t["T2"]:
            print(f"  @{e.cycle:>9,}  {e.detail['from_mode']} -> "
                  f"{e.detail['to_mode']} ({e.detail['cycles']} cycles)")

    print("\nFinal container state:")
    for line in result.runtime.fabric.describe():
        print(" ", line)

    stats = result.runtime.stats
    print(f"\ntotals: {stats.si_executions} SI executions "
          f"({100 * stats.hw_fraction():.1f}% in hardware), "
          f"{stats.rotations_requested} rotations, "
          f"{stats.mode_switches} mode switches")


if __name__ == "__main__":
    main()
