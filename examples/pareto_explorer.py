#!/usr/bin/env python3
"""Exploring the area/performance design space (paper Fig. 13 + Fig. 1).

Prints the Pareto fronts of all H.264 SIs, walks the run-time upgrade
path as the container budget grows, and contrasts RISPP's shared-area
model with the extensible-processor baseline.

Run:  python examples/pareto_explorer.py
"""

from repro.apps.h264 import build_h264_library
from repro.baselines import ExtensibleProcessor, SoftwareProcessor
from repro.core import ForecastedSI, pareto_front_of, tradeoff_points, upgrade_path
from repro.hardware import H264_PHASES, AreaComparison
from repro.reporting import render_table


def main() -> None:
    library = build_h264_library(include_sad=True)

    # -- Fig. 13: per-SI trade-off clouds and fronts -----------------------
    for name in ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2", "SAD_4x4"):
        si = library.get(name)
        cloud = tradeoff_points(si)
        front = pareto_front_of(si)
        front_set = {(p.atoms, p.cycles) for p in front}
        print(f"{name}: software {si.software_cycles} cycles")
        for p in cloud:
            marker = "*" if (p.atoms, p.cycles) in front_set else " "
            print(f"  {marker} {p.atoms:2d} atoms -> {p.cycles:2d} cycles"
                  f"   [{p.impl.label}]")
    print("  (* = Pareto-optimal: the molecules the run-time walks, Fig. 13)")

    # -- dynamic trade-off: the budget walk ---------------------------------
    workload = [
        ForecastedSI(library.get("SATD_4x4"), 256),
        ForecastedSI(library.get("DCT_4x4"), 24),
        ForecastedSI(library.get("HT_4x4"), 1),
    ]
    print("\nJoint selection as the Atom-Container budget grows:")
    for result in upgrade_path(library, workload, 18):
        chosen = {
            n: (i.cycles if i else "SW") for n, i in result.chosen.items()
        }
        print(f"  budget {result.containers_used:2d} used: {chosen}")

    # -- RISPP vs the baselines ----------------------------------------------
    print()
    sw = SoftwareProcessor(library)
    asip = ExtensibleProcessor.design(library, workload, atom_budget=18)
    profile = {"SATD_4x4": 256, "DCT_4x4": 24, "HT_4x4": 1}
    rows = [
        ["software", "-", sw.execute_workload(profile)],
        ["ASIP (18 dedicated atoms)", asip.dedicated_atoms,
         asip.execute_workload(profile)],
    ]
    print(render_table(
        ["platform", "atoms", "SI cycles / MB"], rows,
        title="Baselines on the Fig. 7 workload",
    ))

    cmp = AreaComparison.build(list(H264_PHASES), alpha=1.25)
    print(f"\nFig. 1 area story: extensible {cmp.extensible_ge:,} GE vs "
          f"RISPP {cmp.rispp_ge:,.0f} GE "
          f"(alpha={cmp.alpha}) -> {cmp.saving_pct:.1f}% saving")


if __name__ == "__main__":
    main()
