#!/usr/bin/env python3
"""The complete RISPP flow on one program, in one call.

Profile → Forecast-point insertion (§4) → execution with run-time Atom
rotation (§5), on the AES-128 application — the "carefully selected
boundary of design-time and run-time decisions" the paper concludes with,
as working code.

Run:  python examples/end_to_end_flow.py
"""

from repro.apps.aes import (
    build_aes_library,
    build_aes_program,
    default_aes_fdfs,
    encrypt_block,
)
from repro.reporting import render_container_timeline, render_table
from repro.sim import EventKind
from repro.sim.integration import compile_and_run


def main() -> None:
    program = build_aes_program()
    library = build_aes_library()
    env = {
        "plaintext": bytes.fromhex("3243f6a8885a308d313198a2e0370734"),
        "key": bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    }

    def profile_env(i: int) -> dict:
        return {"plaintext": bytes([i] * 16), "key": bytes([99 - i] * 16)}

    flow = compile_and_run(
        program,
        library,
        default_aes_fdfs(),
        containers=6,
        profile_env_factory=profile_env,
        run_env=env,
    )

    # 1. The design-time half.
    print("Profiled blocks:")
    for block in flow.cfg.blocks():
        uses = ", ".join(f"{k}x{v}" for k, v in block.si_usages.items()) or "-"
        print(f"  {block.block_id:<9} x{block.exec_count:<3} ({uses})")
    print("\nPlaced Forecast points:")
    for p in flow.annotation.all_points():
        print(f"  {p.block_id!r} forecasts {p.si_name} "
              f"(expected {p.expected_executions:.1f} executions)")

    # 2. The run-time half.
    result = flow.result
    assert result.env["ciphertext"] == encrypt_block(env["plaintext"], env["key"])
    print("\nAES output verified against the reference cipher.")
    rows = [
        ["total", result.total_cycles],
        ["core (plain blocks)", result.core_cycles],
        ["special instructions", result.si_cycles],
    ]
    print(render_table(["component", "cycles"], rows, title="Annotated run"))
    print(f"forecasts fired: {result.forecasts_fired}; "
          f"SI executions: {result.si_executions}")
    stats = flow.runtime.stats
    print(f"hardware fraction: {100 * stats.hw_fraction():.1f}% "
          f"({stats.rotations_requested} rotations)")

    # 3. What the containers did.
    print("\nContainer occupancy:")
    print(render_container_timeline(flow.runtime.trace, 6, width=64))

    modes = [
        (e.cycle, e.si, e.detail["mode"])
        for e in flow.runtime.trace.of_kind(EventKind.SI_MODE_SWITCH)
    ]
    if modes:
        print("\nmode switches:")
        for cycle, si, mode in modes:
            print(f"  @{cycle:>9,} {si} -> {mode}")


if __name__ == "__main__":
    main()
