#!/usr/bin/env python3
"""Compile-time forecasting on AES (paper §4, Fig. 3).

Profiles a real AES-128 encryption (the IR program actually encrypts and
is checked against the cipher), computes reach probabilities, temporal
distances and expected executions per block, evaluates the Forecast
Decision Function, trims candidates against the Atom-Container budget and
places the final Forecast points.  Prints the annotated BB graph as DOT —
paste it into Graphviz to see Fig. 3.

Run:  python examples/aes_forecasting.py
"""

from repro.apps.aes import (
    aes_forecast_report,
    build_aes_library,
    encrypt_block,
    profile_aes,
)
from repro.cfg import collect_si_stats
from repro.reporting import render_table


def main() -> None:
    # Sanity: the cipher is a real AES-128 (FIPS-197 Appendix B).
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    assert encrypt_block(pt, key).hex() == "3925841d02dc09fbdc118597196a0b32"
    print("AES-128 self-check against FIPS-197: OK")

    # Profile and show the measured block structure.
    cfg = profile_aes(runs=8, seed=0)
    rows = [
        [b.block_id, b.cycles, b.exec_count,
         ", ".join(f"{k}x{v}" for k, v in b.si_usages.items()) or "-"]
        for b in cfg.blocks()
    ]
    print()
    print(render_table(
        ["block", "cycles", "executions", "SI usage"], rows,
        title="Profiled AES basic blocks",
    ))

    # Per-block forecast inputs for one SI.
    stats = collect_si_stats(cfg, "MIXCOL")
    rows = [
        [s.block_id, f"{s.probability:.2f}",
         "inf" if s.expected_distance == float("inf") else f"{s.expected_distance:.0f}",
         f"{s.expected_executions:.1f}"]
        for s in stats.values()
    ]
    print()
    print(render_table(
        ["block", "P(reach MIXCOL)", "expected distance", "expected executions"],
        rows, title="Forecast inputs for MIXCOL",
    ))

    # The full pipeline: candidates -> trimming -> FC blocks.
    report = aes_forecast_report(runs=8, containers=6, seed=0)
    print()
    print(render_table(
        ["block", "SI", "p", "distance", "expected", "FDF demand"],
        [
            [c.block_id, c.si_name, f"{c.probability:.2f}",
             f"{c.distance:.0f}", f"{c.expected_executions:.1f}",
             f"{c.required_executions:.1f}"]
            for c in report.candidates
        ],
        title="FC candidates (Fig. 3 squares)",
    ))
    print("\nPlaced Forecast points:")
    for p in report.annotation.all_points():
        print(f"  block {p.block_id!r} forecasts {p.si_name} "
              f"(expected {p.expected_executions:.1f} executions)")

    lib = build_aes_library()
    print("\nAES SI library:",
          ", ".join(f"{n} ({lib.get(n).software_cycles} cyc SW, "
                    f"{lib.get(n).fastest_molecule().cycles} cyc HW)"
                    for n in lib.names()))

    # Statically verify the whole compile-time bundle with rispp-lint
    # (the same checks `compile_and_run` enforces before executing).
    from repro.analysis import lint_flow

    lint = lint_flow(report.cfg, lib, report.annotation, subject="aes-example")
    lint.raise_on_error()
    print("\nrispp-lint:", "clean" if lint.clean()
          else f"{len(lint.warnings())} warning(s), no errors")

    print("\nDOT graph (render with `dot -Tpng`):\n")
    print(report.dot)


if __name__ == "__main__":
    main()
