"""Property: telemetry counts equal trace-event counts for *any*
interleaving of forecast / execute_si / fail_container operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.suites import build_synthetic_library
from repro.obs import MetricRegistry
from repro.runtime import RisppRuntime
from repro.sim import EventKind

CONTAINERS = 4
SIS = 3

#: One operation: (kind, subject index).  Indices wrap over the SIs
#: (or containers for "fail"), so every drawn pair is valid.
_OP = st.tuples(
    st.sampled_from(["forecast", "execute", "end", "fail"]),
    st.integers(min_value=0, max_value=max(SIS, CONTAINERS) - 1),
)


def _drive(ops):
    """Apply an op sequence; return the registry and the runtime."""
    registry = MetricRegistry()
    runtime = RisppRuntime(
        build_synthetic_library(kinds=5, sis=SIS),
        CONTAINERS,
        metrics=registry,
    )
    now = 0
    for kind, index in ops:
        if kind == "forecast":
            runtime.forecast(f"SI{index % SIS}", now, expected=16.0)
        elif kind == "execute":
            now += runtime.execute_si(f"SI{index % SIS}", now)
        elif kind == "end":
            runtime.forecast_end(f"SI{index % SIS}", now)
        else:
            runtime.fail_container(index % CONTAINERS, now)
        now += 100
    return registry, runtime


def _events(runtime, kind):
    return sum(1 for e in runtime.trace if e.kind is kind)


@given(ops=st.lists(_OP, max_size=30))
@settings(max_examples=40, deadline=None)
def test_histogram_counts_equal_trace_event_counts(ops):
    registry, runtime = _drive(ops)
    assert registry.histogram("si_latency_cycles").count == _events(
        runtime, EventKind.SI_EXECUTED
    )
    assert registry.histogram("rotation_latency_cycles").count == _events(
        runtime, EventKind.ROTATION_COMPLETED
    )


@given(ops=st.lists(_OP, max_size=30))
@settings(max_examples=40, deadline=None)
def test_counters_equal_stats_and_trace(ops):
    registry, runtime = _drive(ops)
    execs = registry.counter("si_executions_total")
    assert execs.labels(mode="sw").current() == runtime.stats.sw_executions
    assert execs.labels(mode="hw").current() == runtime.stats.hw_executions
    events = registry.counter("forecast_events_total")
    assert events.labels(event="fired").current() == _events(
        runtime, EventKind.FORECAST
    )
    assert events.labels(event="ended").current() == _events(
        runtime, EventKind.FORECAST_END
    )
    assert registry.counter(
        "container_failures_total"
    ).current() == _events(runtime, EventKind.CONTAINER_FAILED)
    rotations = registry.counter("rotations_requested_total")
    assert (
        rotations.labels(kind="planned").current()
        + rotations.labels(kind="repair").current()
    ) == _events(runtime, EventKind.ROTATION_REQUESTED)


@given(ops=st.lists(_OP, max_size=20))
@settings(max_examples=25, deadline=None)
def test_deterministic_snapshot_is_reproducible(ops):
    from repro.obs import snapshot

    snap_a = snapshot(_drive(ops)[0])
    snap_b = snapshot(_drive(ops)[0])
    assert snap_a == snap_b
