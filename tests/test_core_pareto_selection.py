"""Unit tests for Pareto analysis (Fig. 13) and run-time molecule selection."""

import pytest

from repro.core import (
    AtomCatalogue,
    AtomKind,
    ForecastedSI,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    is_pareto_optimal,
    pareto_front,
    pareto_front_of,
    select_exhaustive,
    select_greedy,
    tradeoff_points,
    upgrade_path,
)


@pytest.fixture()
def catalogue():
    return AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack"),
            AtomKind("Transform"),
            AtomKind("SATD"),
        ]
    )


@pytest.fixture()
def library(catalogue):
    space = catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
            MoleculeImpl(space.molecule({"Load": 4, "Pack": 4, "Transform": 4}), 8),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
            MoleculeImpl(
                space.molecule({"Load": 2, "Pack": 1, "Transform": 2, "SATD": 1}), 18
            ),
            MoleculeImpl(
                space.molecule({"Load": 4, "Pack": 4, "Transform": 4, "SATD": 2}), 12
            ),
        ],
    )
    return SILibrary(catalogue, [ht, satd])


class TestPareto:
    def test_points_sorted(self, library):
        pts = tradeoff_points(library.get("HT"))
        assert [p.atoms for p in pts] == sorted(p.atoms for p in pts)

    def test_front_strictly_improves(self, library):
        front = pareto_front_of(library.get("SATD"))
        for a, b in zip(front, front[1:]):
            assert b.atoms > a.atoms
            assert b.cycles < a.cycles

    def test_dominated_point_removed(self, library):
        pts = tradeoff_points(library.get("HT"))
        # Craft a dominated point: same atoms as the best, more cycles.
        from repro.core.pareto import ParetoPoint

        dominated = ParetoPoint(pts[-1].atoms, pts[-1].cycles + 5, pts[-1].impl)
        front = pareto_front(pts + [dominated])
        assert dominated not in front

    def test_is_pareto_optimal(self, library):
        pts = tradeoff_points(library.get("HT"))
        front = pareto_front(pts)
        for p in front:
            assert is_pareto_optimal(p, pts)

    def test_reconfigurable_only_projection(self, library, catalogue):
        pts = tradeoff_points(
            library.get("HT"),
            reconfigurable_only_kinds=catalogue.reconfigurable_names(),
        )
        # Load is static, so the smallest HT molecule occupies 2 containers.
        assert pts[0].atoms == 2


class TestSelection:
    def test_zero_budget_selects_nothing(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 0)
        assert result.chosen["HT"] is None
        assert result.containers_used == 0

    def test_minimal_budget_selects_minimal_molecule(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 2)
        assert result.chosen["HT"] is not None
        assert result.chosen["HT"].cycles == 22

    def test_large_budget_selects_fastest(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 100)
        assert result.chosen["HT"].cycles == 8

    def test_sharing_between_sis(self, library):
        # HT's 2-container molecule is a subset of SATD's minimal molecule:
        # choosing both must not double-charge shared atoms.
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1),
        ]
        result = select_greedy(library, reqs, 3)
        assert result.chosen["SATD"] is not None
        assert result.chosen["HT"] is not None
        assert result.containers_used <= 3

    def test_weights_steer_selection(self, library):
        # With a tight budget the heavily used SI wins the containers.
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1000),
        ]
        result = select_greedy(library, reqs, 3)
        assert result.chosen["SATD"] is not None

    def test_greedy_matches_exhaustive_on_small_case(self, library):
        reqs = [
            ForecastedSI(library.get("HT"), 5),
            ForecastedSI(library.get("SATD"), 20),
        ]
        for budget in range(0, 12):
            g = select_greedy(library, reqs, budget)
            e = select_exhaustive(library, reqs, budget)
            assert g.total_benefit <= e.total_benefit + 1e-9
            # Greedy should be close to optimal on this library.
            if e.total_benefit:
                assert g.total_benefit >= 0.85 * e.total_benefit

    def test_upgrade_path_monotone(self, library):
        reqs = [ForecastedSI(library.get("SATD"), 10)]
        path = upgrade_path(library, reqs, 12)
        benefits = [r.total_benefit for r in path]
        assert benefits == sorted(benefits)
        assert all(r.containers_used <= b for b, r in enumerate(path))

    def test_loaded_atoms_prefer_reuse(self, library, catalogue):
        space = catalogue.space
        loaded = space.molecule({"Pack": 1, "Transform": 2})
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 3, loaded=loaded)
        # The 17-cycle molecule reuses exactly the loaded atoms.
        assert result.chosen["HT"].cycles in (17, 8)

    def test_negative_budget_rejected(self, library):
        with pytest.raises(ValueError):
            select_greedy(library, [], -1)
        with pytest.raises(ValueError):
            select_exhaustive(library, [], -1)

    def test_negative_weight_rejected(self, library):
        with pytest.raises(ValueError):
            ForecastedSI(library.get("HT"), -1)

    def test_exhaustive_counts_combinations(self, library):
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1),
        ]
        result = select_exhaustive(library, reqs, 100)
        assert result.considered == 4 * 4  # (None + 3 impls) per SI
