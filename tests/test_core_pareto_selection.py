"""Unit tests for Pareto analysis (Fig. 13) and run-time molecule selection."""

import pytest

from repro.core import (
    AtomCatalogue,
    AtomKind,
    ForecastedSI,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    is_pareto_optimal,
    pareto_front,
    pareto_front_of,
    select_exhaustive,
    select_greedy,
    tradeoff_points,
    upgrade_path,
)


@pytest.fixture()
def catalogue():
    return AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack"),
            AtomKind("Transform"),
            AtomKind("SATD"),
        ]
    )


@pytest.fixture()
def library(catalogue):
    space = catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
            MoleculeImpl(space.molecule({"Load": 4, "Pack": 4, "Transform": 4}), 8),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
            MoleculeImpl(
                space.molecule({"Load": 2, "Pack": 1, "Transform": 2, "SATD": 1}), 18
            ),
            MoleculeImpl(
                space.molecule({"Load": 4, "Pack": 4, "Transform": 4, "SATD": 2}), 12
            ),
        ],
    )
    return SILibrary(catalogue, [ht, satd])


class TestPareto:
    def test_points_sorted(self, library):
        pts = tradeoff_points(library.get("HT"))
        assert [p.atoms for p in pts] == sorted(p.atoms for p in pts)

    def test_front_strictly_improves(self, library):
        front = pareto_front_of(library.get("SATD"))
        for a, b in zip(front, front[1:]):
            assert b.atoms > a.atoms
            assert b.cycles < a.cycles

    def test_dominated_point_removed(self, library):
        pts = tradeoff_points(library.get("HT"))
        # Craft a dominated point: same atoms as the best, more cycles.
        from repro.core.pareto import ParetoPoint

        dominated = ParetoPoint(pts[-1].atoms, pts[-1].cycles + 5, pts[-1].impl)
        front = pareto_front(pts + [dominated])
        assert dominated not in front

    def test_is_pareto_optimal(self, library):
        pts = tradeoff_points(library.get("HT"))
        front = pareto_front(pts)
        for p in front:
            assert is_pareto_optimal(p, pts)

    def test_reconfigurable_only_projection(self, library, catalogue):
        pts = tradeoff_points(
            library.get("HT"),
            reconfigurable_only_kinds=catalogue.reconfigurable_names(),
        )
        # Load is static, so the smallest HT molecule occupies 2 containers.
        assert pts[0].atoms == 2


class TestSelection:
    def test_zero_budget_selects_nothing(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 0)
        assert result.chosen["HT"] is None
        assert result.containers_used == 0

    def test_minimal_budget_selects_minimal_molecule(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 2)
        assert result.chosen["HT"] is not None
        assert result.chosen["HT"].cycles == 22

    def test_large_budget_selects_fastest(self, library):
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 100)
        assert result.chosen["HT"].cycles == 8

    def test_sharing_between_sis(self, library):
        # HT's 2-container molecule is a subset of SATD's minimal molecule:
        # choosing both must not double-charge shared atoms.
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1),
        ]
        result = select_greedy(library, reqs, 3)
        assert result.chosen["SATD"] is not None
        assert result.chosen["HT"] is not None
        assert result.containers_used <= 3

    def test_weights_steer_selection(self, library):
        # With a tight budget the heavily used SI wins the containers.
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1000),
        ]
        result = select_greedy(library, reqs, 3)
        assert result.chosen["SATD"] is not None

    def test_greedy_matches_exhaustive_on_small_case(self, library):
        reqs = [
            ForecastedSI(library.get("HT"), 5),
            ForecastedSI(library.get("SATD"), 20),
        ]
        for budget in range(0, 12):
            g = select_greedy(library, reqs, budget)
            e = select_exhaustive(library, reqs, budget)
            assert g.total_benefit <= e.total_benefit + 1e-9
            # Greedy should be close to optimal on this library.
            if e.total_benefit:
                assert g.total_benefit >= 0.85 * e.total_benefit

    def test_upgrade_path_monotone(self, library):
        reqs = [ForecastedSI(library.get("SATD"), 10)]
        path = upgrade_path(library, reqs, 12)
        benefits = [r.total_benefit for r in path]
        assert benefits == sorted(benefits)
        assert all(r.containers_used <= b for b, r in enumerate(path))

    def test_loaded_atoms_prefer_reuse(self, library, catalogue):
        space = catalogue.space
        loaded = space.molecule({"Pack": 1, "Transform": 2})
        reqs = [ForecastedSI(library.get("HT"), 10)]
        result = select_greedy(library, reqs, 3, loaded=loaded)
        # The 17-cycle molecule reuses exactly the loaded atoms.
        assert result.chosen["HT"].cycles in (17, 8)

    def test_negative_budget_rejected(self, library):
        with pytest.raises(ValueError):
            select_greedy(library, [], -1)
        with pytest.raises(ValueError):
            select_exhaustive(library, [], -1)

    def test_negative_weight_rejected(self, library):
        with pytest.raises(ValueError):
            ForecastedSI(library.get("HT"), -1)

    def test_exhaustive_counts_combinations(self, library):
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("SATD"), 1),
        ]
        result = select_exhaustive(library, reqs, 100)
        assert result.considered == 4 * 4  # (None + 3 impls) per SI

    def test_duplicate_requests_rejected(self, library):
        # Duplicates used to be silently collapsed by greedy and
        # double-counted by exhaustive; both now fail loudly.
        reqs = [
            ForecastedSI(library.get("HT"), 1),
            ForecastedSI(library.get("HT"), 5),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            select_greedy(library, reqs, 4)
        with pytest.raises(ValueError, match="duplicate"):
            select_exhaustive(library, reqs, 4)


class TestSelectionBugfixes:
    """Regression tests for the selection-correctness sweep.

    Each test pins one fixed bug: the greedy negative-denominator
    mis-score, pareto_front/is_pareto_optimal disagreeing on duplicate
    points, and exhaustive ties wasting containers.
    """

    def test_greedy_container_freeing_swap_is_scored_positive(self):
        # Upgrading SI1 from implX ({A:1}) to implY ({B:4}) *after* SI2's
        # {B:4} is chosen shrinks the supremum by one container, so the
        # marginal cost is negative.  The old score `gain / (extra + 0.5)`
        # went negative on that denominator and the strictly beneficial
        # swap always lost; the freed container could then never host SI3.
        catalogue = AtomCatalogue.of(
            [AtomKind("A"), AtomKind("B"), AtomKind("C")]
        )
        space = catalogue.space
        si1 = SpecialInstruction(
            "SI1",
            space,
            100,
            [
                MoleculeImpl(space.molecule({"A": 1}), 50),
                MoleculeImpl(space.molecule({"B": 4}), 20),
                MoleculeImpl(space.molecule({"A": 1, "B": 4}), 20),
            ],
        )
        si2 = SpecialInstruction(
            "SI2", space, 20, [MoleculeImpl(space.molecule({"B": 4}), 10)]
        )
        si3 = SpecialInstruction(
            "SI3", space, 30, [MoleculeImpl(space.molecule({"C": 2}), 10)]
        )
        library = SILibrary(catalogue, [si1, si2, si3])
        reqs = [
            ForecastedSI(si1, 1),
            ForecastedSI(si2, 10),
            ForecastedSI(si3, 1),
        ]
        result = select_greedy(library, reqs, 6)
        # The swap must land on the B-only molecule, freeing A's container.
        assert result.chosen["SI1"] is not None
        assert result.chosen["SI1"].molecule == space.molecule({"B": 4})
        assert result.chosen["SI3"] is not None
        assert result.total_benefit == pytest.approx(200.0)
        # ... which is the true optimum on this library.
        exact = select_exhaustive(library, reqs, 6)
        assert exact.total_benefit == pytest.approx(result.total_benefit)

    def test_pareto_front_keeps_duplicate_points(self, library):
        from repro.core.pareto import ParetoPoint

        pts = tradeoff_points(library.get("HT"))
        twin = ParetoPoint(pts[0].atoms, pts[0].cycles, pts[0].impl)
        front = pareto_front(pts + [twin])
        # Both copies sit on the front: duplicates never dominate each
        # other, and pareto_front now agrees with is_pareto_optimal
        # (it used to silently drop later duplicates).
        assert front.count(twin) == 2
        for p in pts + [twin]:
            assert (p in front) == is_pareto_optimal(p, pts + [twin])

    def test_exhaustive_tie_prefers_fewer_containers(self):
        catalogue = AtomCatalogue.of([AtomKind("A"), AtomKind("B")])
        space = catalogue.space
        # Two implementations with identical cycles (hence identical
        # benefit); the bulky one enumerates first.  The old `>`-only
        # comparison kept whichever came first, wasting two containers.
        si = SpecialInstruction(
            "SI",
            space,
            100,
            [
                MoleculeImpl(space.molecule({"A": 3}), 50),
                MoleculeImpl(space.molecule({"A": 1}), 50),
            ],
        )
        library = SILibrary(catalogue, [si])
        result = select_exhaustive(library, [ForecastedSI(si, 1)], 8)
        assert result.chosen["SI"].molecule == space.molecule({"A": 1})
        assert result.containers_used == 1
        assert result.total_benefit == pytest.approx(50.0)
