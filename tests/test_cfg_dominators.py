"""Tests for dominator analysis (validated against networkx)."""

import networkx as nx
import pytest

from repro.cfg import ControlFlowGraph
from repro.cfg.dominators import (
    common_dominator,
    dominates,
    dominators_of,
    forecast_covers_usage,
    immediate_dominators,
)


def diamond_with_loop() -> ControlFlowGraph:
    cfg = ControlFlowGraph()
    for b in ["entry", "left", "right", "join", "loop", "exit"]:
        cfg.block(b)
    cfg.get("loop").si_usages["S"] = 1
    cfg.add_edge("entry", "left")
    cfg.add_edge("entry", "right")
    cfg.add_edge("left", "join")
    cfg.add_edge("right", "join")
    cfg.add_edge("join", "loop")
    cfg.add_edge("loop", "loop")
    cfg.add_edge("loop", "exit")
    return cfg


class TestImmediateDominators:
    def test_diamond(self):
        idom = immediate_dominators(diamond_with_loop())
        assert idom["left"] == "entry"
        assert idom["right"] == "entry"
        assert idom["join"] == "entry"  # neither branch dominates the join
        assert idom["loop"] == "join"
        assert idom["exit"] == "loop"

    def test_matches_networkx(self):
        cfg = diamond_with_loop()
        ours = immediate_dominators(cfg)
        theirs = dict(nx.immediate_dominators(cfg.to_networkx(), cfg.entry))
        theirs.setdefault(cfg.entry, cfg.entry)  # convention difference
        assert ours == theirs

    def test_matches_networkx_on_random_graphs(self):
        import random

        rng = random.Random(17)
        for trial in range(10):
            cfg = ControlFlowGraph()
            n = 12
            for i in range(n):
                cfg.block(f"b{i}")
            edges = {(i, i + 1) for i in range(n - 1)}
            for _ in range(10):
                a, b = rng.randrange(n - 1), rng.randrange(n)
                edges.add((a, b))
            for a, b in sorted(edges):
                cfg.add_edge(f"b{a}", f"b{b}")
            ours = immediate_dominators(cfg)
            theirs = dict(nx.immediate_dominators(cfg.to_networkx(), "b0"))
            theirs.setdefault("b0", "b0")
            assert ours == theirs, f"trial {trial}"

    def test_unreachable_blocks_excluded(self):
        cfg = ControlFlowGraph()
        cfg.block("entry")
        cfg.block("island")
        idom = immediate_dominators(cfg)
        assert "island" not in idom

    def test_entry_required(self):
        cfg = ControlFlowGraph()
        with pytest.raises(ValueError):
            immediate_dominators(cfg)


class TestDominatorQueries:
    def test_dominator_chain(self):
        cfg = diamond_with_loop()
        assert dominators_of(cfg, "exit") == ["exit", "loop", "join", "entry"]

    def test_dominates(self):
        cfg = diamond_with_loop()
        assert dominates(cfg, "entry", "exit")
        assert dominates(cfg, "join", "loop")
        assert not dominates(cfg, "left", "join")

    def test_unreachable_rejected(self):
        cfg = diamond_with_loop()
        cfg.block("island")
        with pytest.raises(ValueError):
            dominators_of(cfg, "island")

    def test_common_dominator(self):
        cfg = diamond_with_loop()
        assert common_dominator(cfg, ["left", "right"]) == "entry"
        assert common_dominator(cfg, ["loop", "exit"]) == "loop"
        with pytest.raises(ValueError):
            common_dominator(cfg, [])


class TestForecastCoverage:
    def test_dominating_forecast_covers(self):
        cfg = diamond_with_loop()
        assert forecast_covers_usage(cfg, "entry", "S")
        assert forecast_covers_usage(cfg, "join", "S")

    def test_branch_forecast_does_not_cover(self):
        cfg = diamond_with_loop()
        assert not forecast_covers_usage(cfg, "left", "S")

    def test_unknown_si_rejected(self):
        with pytest.raises(ValueError):
            forecast_covers_usage(diamond_with_loop(), "entry", "NOPE")

    def test_pipeline_placements_are_dominating_here(self, mini_library):
        # On the (structured) hotspot program the pipeline's FC blocks
        # dominate their SIs' usages — the structural soundness check.
        from repro.forecast import ForecastDecisionFunction, run_forecast_pipeline

        # rebuild the hotspot CFG inline (mirrors the conftest fixture)
        cfg = ControlFlowGraph()
        cfg.block("init", cycles=50)
        cfg.block("warmA", cycles=120)
        cfg.block("loopA", cycles=100, si_usages={"SATD": 1})
        cfg.block("mid", cycles=30)
        cfg.block("warmB", cycles=90)
        cfg.block("loopB", cycles=80, si_usages={"HT": 1})
        cfg.block("end", cycles=10)
        for a, b, c in [
            ("init", "warmA", 1), ("warmA", "loopA", 1), ("loopA", "loopA", 99),
            ("loopA", "mid", 1), ("mid", "warmB", 1), ("warmB", "loopB", 1),
            ("loopB", "loopB", 49), ("loopB", "end", 1),
        ]:
            cfg.add_edge(a, b, count=c)
        cfg.set_profile({"init": 1, "warmA": 1, "loopA": 100, "mid": 1,
                         "warmB": 1, "loopB": 50, "end": 1})
        fdfs = {
            "SATD": ForecastDecisionFunction(t_rot=60.0, t_sw=544.0, t_hw=24.0),
            "HT": ForecastDecisionFunction(t_rot=60.0, t_sw=298.0, t_hw=24.0),
        }
        annotation = run_forecast_pipeline(cfg, mini_library, fdfs, 6)
        for point in annotation.all_points():
            assert forecast_covers_usage(cfg, point.block_id, point.si_name)
