"""The ``repro bench`` harness: timing primitives, schema, CLI."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    StageResult,
    render_report,
    run_suite,
    time_best,
    time_stage,
    trace_signature,
    write_report,
)
from repro.cli import main
from repro.sim import EventKind, Trace

#: Layout contract of BENCH_runtime.json (CI uploads it on every push).
REPORT_KEYS = {
    "schema_version", "suite", "quick", "timestamp_utc",
    "python", "platform", "end_to_end", "stages", "totals", "metrics",
}
END_TO_END_KEYS = {
    "scenario", "baseline_s", "optimized_s", "speedup", "trace_equal",
    "trace_events", "si_executions", "simulated_cycles", "cycles_per_sec",
    "trace_verified", "verify_findings",
}
STAGE_KEYS = {
    "name", "wall_s", "iterations", "repeats", "throughput", "unit", "extra",
}


class TestHarness:
    def test_time_stage_runs_and_times(self):
        calls = []
        stage = time_stage(
            "s", lambda: calls.append(1), iterations=10, repeats=4
        )
        assert len(calls) == 4  # best-of-4
        assert stage.wall_s >= 0
        assert stage.iterations == 10
        assert stage.throughput > 0

    def test_time_stage_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_stage("s", lambda: None, iterations=1, repeats=0)

    def test_time_best_returns_last_result(self):
        wall, result = time_best(lambda: 42, repeats=2)
        assert result == 42
        assert wall >= 0

    def test_stage_result_dict_is_schema_stable(self):
        d = StageResult("s", 0.5, iterations=100, repeats=3).to_dict()
        assert set(d) == STAGE_KEYS
        assert d["throughput"] == pytest.approx(200.0)

    def test_trace_signature_resolves_lazy_details(self):
        eager, lazy = Trace(), Trace()
        eager.record(5, EventKind.SI_EXECUTED, si="S", mode="HW", cycles=12)
        lazy.record_lazy(
            5, EventKind.SI_EXECUTED, lambda: {"mode": "HW", "cycles": 12},
            si="S",
        )
        assert trace_signature(eager) == trace_signature(lazy)
        assert trace_signature(eager) != trace_signature(Trace())


class TestSuites:
    @pytest.fixture(scope="class")
    def synthetic_report(self):
        return run_suite("synthetic", quick=True)

    def test_report_schema(self, synthetic_report):
        report = synthetic_report
        assert set(report) == REPORT_KEYS
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suite"] == "synthetic"
        assert report["quick"] is True
        assert set(report["end_to_end"]) == END_TO_END_KEYS
        for stage in report["stages"]:
            assert set(stage) == STAGE_KEYS
        assert report["totals"]["stages"] == len(report["stages"])

    def test_optimizations_preserve_trace_and_speed_things_up(
        self, synthetic_report
    ):
        e2e = synthetic_report["end_to_end"]
        assert e2e["trace_equal"] is True
        assert e2e["trace_verified"] is True, e2e["verify_findings"]
        assert e2e["verify_findings"] == []
        assert e2e["trace_events"] > 0
        assert e2e["speedup"] > 0
        assert e2e["si_executions"] > 0

    def test_micro_stages_cover_the_hot_paths(self, synthetic_report):
        names = [s["name"] for s in synthetic_report["stages"]]
        assert names == [
            "selection", "selection_backend", "rotation_planning",
            "execute_si", "trace_record", "metrics_overhead",
            "state_explore", "audit", "recovery", "serve",
        ]

    def test_serve_stage_proves_pool_determinism(self, synthetic_report):
        stage = next(
            s for s in synthetic_report["stages"] if s["name"] == "serve"
        )
        extra = stage["extra"]
        # 1-worker and 4-worker pools must return byte-identical
        # responses per request — the serve determinism contract.
        assert extra["results_equal"] is True
        assert stage["iterations"] == extra["scenarios"] == len(extra["seeds"])
        assert extra["wall_1_worker_s"] > 0
        assert extra["wall_4_workers_s"] > 0
        assert stage["unit"] == "scenarios/s"

    def test_recovery_stage_proves_crash_consistency(self, synthetic_report):
        stage = next(
            s for s in synthetic_report["stages"] if s["name"] == "recovery"
        )
        extra = stage["extra"]
        # The resumed trace must equal the uninterrupted run's — the
        # same gate the CI crash-recovery job applies end to end.
        assert extra["trace_equal"] is True
        assert stage["iterations"] == extra["snapshots"] > 0
        assert extra["journal_records"] > 0
        assert extra["snapshot_bytes"] > 0
        assert extra["resume_s"] > 0
        assert stage["unit"] == "snapshots/s"

    def test_selection_backend_stage_proves_equivalence(
        self, synthetic_report
    ):
        stage = next(
            s for s in synthetic_report["stages"]
            if s["name"] == "selection_backend"
        )
        extra = stage["extra"]
        assert extra["numpy_available"] is True
        # Bit-for-bit equivalence: identical SelectionResults on the
        # suite's forecast mix, identical traces on the short scenario,
        # and both traces replay cleanly through rispp-verify.
        assert extra["results_equal"] is True
        assert extra["trace_equal"] is True
        assert extra["trace_verified"] is True
        # The vectorized path must actually have been timed.
        assert extra["numpy_s"] > 0
        assert extra["reference_s"] > 0
        assert extra["speedup"] > 0

    def test_disabled_telemetry_overhead_is_bounded(self, synthetic_report):
        stage = next(
            s for s in synthetic_report["stages"]
            if s["name"] == "metrics_overhead"
        )
        extra = stage["extra"]
        assert extra["disabled_overhead_pct"] < 3.0
        # The enabled path must actually have run (sanity, not a bound).
        assert extra["enabled_wall_s"] > 0

    def test_state_explore_stage_reports_exploration_shape(
        self, synthetic_report
    ):
        stage = next(
            s for s in synthetic_report["stages"]
            if s["name"] == "state_explore"
        )
        extra = stage["extra"]
        assert extra["scope"] == "tiny"
        assert extra["states_explored"] == stage["iterations"] > 0
        assert extra["states_explored"] <= extra["max_states"]
        assert extra["violations"] == 0
        assert 0.0 <= extra["dedupe_ratio"] <= 1.0

    def test_audit_stage_reports_clean_gated_run(self, synthetic_report):
        stage = next(
            s for s in synthetic_report["stages"] if s["name"] == "audit"
        )
        extra = stage["extra"]
        assert extra["files_scanned"] == stage["iterations"] > 0
        assert extra["findings"] == 0
        assert extra["stale_suppressions"] == 0
        assert extra["exit_code"] == 0
        assert stage["wall_s"] > 0

    def test_report_embeds_deterministic_metrics_snapshot(
        self, synthetic_report
    ):
        from repro.obs import SNAPSHOT_KIND

        snap = synthetic_report["metrics"]
        assert snap["kind"] == SNAPSHOT_KIND
        assert snap["deterministic_only"] is True
        names = {family["name"] for family in snap["metrics"]}
        assert "rispp_si_executions_total" in names
        assert "rispp_rotation_latency_cycles" in names
        # Wall-clock span timers must not leak into the snapshot.
        assert "rispp_replan_duration_seconds" not in names

    def test_report_round_trips_through_json(self, synthetic_report, tmp_path):
        path = tmp_path / "BENCH_runtime.json"
        write_report(synthetic_report, str(path))
        assert json.loads(path.read_text()) == synthetic_report

    def test_render_report_mentions_the_verdict(self, synthetic_report):
        text = render_report(synthetic_report)
        assert "trace equivalence: OK" in text
        assert "speedup" in text

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("mp3")


class TestBenchCLI:
    def test_bench_writes_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_runtime.json"
        code = main(["bench", "--suite", "synthetic", "--quick",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench suite: synthetic (quick)" in out
        report = json.loads(path.read_text())
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["end_to_end"]["trace_equal"] is True

    def test_bench_rejects_unknown_suite(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "mp3"])

    def test_usage_mentions_bench(self, capsys):
        main([])
        assert "bench" in capsys.readouterr().out
