"""Tests for the intra-frame bitstream decoder (true codec round trip)."""

import numpy as np
import pytest

from repro.apps.h264 import synthetic_frame
from repro.apps.h264.decoder import (
    decode_intra_frame_bitstream,
    roundtrip_intra_frame,
    serialize_intra_frame,
)
from repro.apps.h264.entropy import BitWriter, write_ue
from repro.apps.h264.intra import encode_intra_frame


class TestCodecRoundTrip:
    @pytest.mark.parametrize("qp", [0, 16, 32, 48])
    def test_decoder_matches_encoder_reconstruction(self, qp):
        frame = synthetic_frame(32, 32, seed=8)
        encoded = encode_intra_frame(frame, qp)
        bits = serialize_intra_frame(encoded, qp)
        decoded, decoded_qp = decode_intra_frame_bitstream(bits.bits)
        assert decoded_qp == qp
        assert (decoded == encoded.reconstructed).all()

    def test_roundtrip_helper(self):
        frame = synthetic_frame(16, 16, seed=1)
        decoded, bits = roundtrip_intra_frame(frame, qp=20)
        assert decoded.shape == frame.shape
        assert bits > 0

    def test_bitstream_size_falls_with_qp(self):
        frame = synthetic_frame(32, 32, seed=8)
        sizes = [roundtrip_intra_frame(frame, qp)[1] for qp in (0, 16, 32, 48)]
        assert sizes == sorted(sizes, reverse=True)

    def test_decoded_quality(self):
        frame = synthetic_frame(32, 32, seed=8)
        decoded, _bits = roundtrip_intra_frame(frame, qp=8)
        err = np.abs(decoded - frame)
        assert err.mean() < 4

    def test_non_square_frames(self):
        frame = synthetic_frame(16, 48, seed=2)
        decoded, _bits = roundtrip_intra_frame(frame, qp=24)
        assert decoded.shape == (16, 48)


class TestSequenceCodec:
    @pytest.fixture(scope="class")
    def frames(self):
        return [synthetic_frame(64, 64, seed=3, shift=s) for s in range(3)]

    def test_sequence_roundtrip_bit_exact(self, frames):
        from repro.apps.h264.decoder import decode_sequence, serialize_sequence

        bits, recons = serialize_sequence(frames, qp=20)
        decoded, qp = decode_sequence(bits.bits)
        assert qp == 20
        assert len(decoded) == 3
        for encoder_view, decoder_view in zip(recons, decoded):
            assert (encoder_view == decoder_view).all()

    def test_decoded_sequence_quality(self, frames):
        from repro.apps.h264.decoder import decode_sequence, serialize_sequence

        bits, _recons = serialize_sequence(frames, qp=12)
        decoded, _qp = decode_sequence(bits.bits)
        # Compare the encoded macroblock region of the last frame.
        diff = np.abs(decoded[-1][16:48, 16:48] - frames[-1][16:48, 16:48])
        assert diff.mean() < 6

    def test_sequence_bits_scale_with_qp(self, frames):
        from repro.apps.h264.decoder import serialize_sequence

        sizes = [len(serialize_sequence(frames, qp)[0]) for qp in (8, 24, 40)]
        assert sizes == sorted(sizes, reverse=True)

    def test_sequence_validation(self, frames):
        from repro.apps.h264.decoder import decode_sequence, serialize_sequence

        with pytest.raises(ValueError):
            serialize_sequence([], qp=20)
        with pytest.raises(ValueError):
            serialize_sequence(
                [frames[0], np.zeros((32, 32), dtype=np.int64)], qp=20
            )
        bits, _ = serialize_sequence(frames, qp=20)
        with pytest.raises(ValueError):
            decode_sequence(bits.bits[: len(bits.bits) // 3])


class TestBitstreamValidation:
    def test_invalid_qp_rejected(self):
        w = BitWriter()
        write_ue(w, 4)  # 4 block rows
        write_ue(w, 4)
        write_ue(w, 99)  # bad QP
        with pytest.raises(ValueError):
            decode_intra_frame_bitstream(w.bits)

    def test_empty_frame_rejected(self):
        w = BitWriter()
        write_ue(w, 0)
        write_ue(w, 4)
        write_ue(w, 20)
        with pytest.raises(ValueError):
            decode_intra_frame_bitstream(w.bits)

    def test_invalid_mode_rejected(self):
        w = BitWriter()
        write_ue(w, 1)
        write_ue(w, 1)
        write_ue(w, 20)
        write_ue(w, 9)  # mode index out of range
        with pytest.raises(ValueError):
            decode_intra_frame_bitstream(w.bits)

    def test_truncated_stream_rejected(self):
        frame = synthetic_frame(16, 16, seed=3)
        encoded = encode_intra_frame(frame, 20)
        bits = serialize_intra_frame(encoded, 20).bits
        with pytest.raises(ValueError):
            decode_intra_frame_bitstream(bits[: len(bits) // 2])
