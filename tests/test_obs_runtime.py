"""Telemetry wired through the runtime: counts match the trace/stats,
and metrics never perturb simulation semantics (trace equivalence)."""

import pytest

from repro.bench import trace_signature
from repro.bench.suites import build_synthetic_library, run_si_stream
from repro.obs import MetricRegistry
from repro.sim import EventKind

# The proven synthetic stream of the bench/chaos suites: strong enough
# loop-head forecasts that rotations land and executions upgrade to HW.
FORECASTS = [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)]
BLOCKS = [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)]


@pytest.fixture(scope="module")
def instrumented():
    registry = MetricRegistry()
    runtime = run_si_stream(
        build_synthetic_library(),
        FORECASTS,
        BLOCKS,
        containers=5,
        block_rounds=6,
        optimize=True,
        metrics=registry,
    )
    end = runtime.trace.last_cycle + 1
    for si_name, _ in FORECASTS:
        runtime.forecast_end(si_name, end)
    if runtime.port.jobs:  # drain in-flight rotations
        runtime.advance(max(j.finish_at for j in runtime.port.jobs) + 1)
    return registry, runtime


def _events(runtime, kind):
    return sum(1 for e in runtime.trace if e.kind is kind)


class TestCountsMatchTheRun:
    def test_execution_counters_match_stats(self, instrumented):
        registry, runtime = instrumented
        execs = registry.counter("si_executions_total")
        sw = execs.labels(mode="sw").current()
        hw = execs.labels(mode="hw").current()
        assert sw == runtime.stats.sw_executions
        assert hw == runtime.stats.hw_executions
        assert sw + hw == runtime.stats.si_executions
        assert hw > 0  # rotations landed: the stream did upgrade

    def test_execution_cycles_match_stats(self, instrumented):
        registry, runtime = instrumented
        cycles = registry.counter("si_cycles_total")
        total = (
            cycles.labels(mode="sw").current()
            + cycles.labels(mode="hw").current()
        )
        assert total == runtime.stats.si_cycles

    def test_latency_histogram_counts_every_execution(self, instrumented):
        registry, runtime = instrumented
        hist = registry.histogram("si_latency_cycles")
        assert hist.count == _events(runtime, EventKind.SI_EXECUTED)
        assert hist.count == runtime.stats.si_executions
        assert hist.sum == runtime.stats.si_cycles

    def test_replan_counters_match_stats(self, instrumented):
        registry, runtime = instrumented
        replans = registry.counter("replans_total")
        assert (
            replans.labels(outcome="planned").current()
            == runtime.stats.replans
        )
        assert (
            replans.labels(outcome="skipped").current()
            == runtime.stats.replans_skipped
        )
        # Steady-state loop-head forecasts must hit the skip cache.
        assert replans.labels(outcome="skipped").current() > 0

    def test_rotation_counters_match_trace(self, instrumented):
        registry, runtime = instrumented
        rotations = registry.counter("rotations_requested_total")
        requested = (
            rotations.labels(kind="planned").current()
            + rotations.labels(kind="repair").current()
        )
        assert requested == runtime.stats.rotations_requested
        assert requested == _events(runtime, EventKind.ROTATION_REQUESTED)
        # No injector attached: nothing may claim to be a repair.
        assert rotations.labels(kind="repair").current() == 0

    def test_port_histograms_count_completed_rotations(self, instrumented):
        registry, runtime = instrumented
        completed = _events(runtime, EventKind.ROTATION_COMPLETED)
        assert registry.histogram(
            "rotation_latency_cycles"
        ).count == completed
        assert registry.histogram(
            "rotation_queue_delay_cycles"
        ).count == completed
        assert registry.gauge("port_queue_depth").current() == 0

    def test_mode_switches_match_stats(self, instrumented):
        registry, runtime = instrumented
        assert (
            registry.counter("mode_switches_total").current()
            == runtime.stats.mode_switches
        )

    def test_forecast_events_match_trace(self, instrumented):
        registry, runtime = instrumented
        events = registry.counter("forecast_events_total")
        assert events.labels(event="fired").current() == _events(
            runtime, EventKind.FORECAST
        )
        assert events.labels(event="ended").current() == _events(
            runtime, EventKind.FORECAST_END
        )

    def test_forecast_windows_close_once_per_fired_window(self, instrumented):
        registry, runtime = instrumented
        windows = registry.counter("forecast_windows_total")
        closed = (
            windows.labels(outcome="hit").current()
            + windows.labels(outcome="miss").current()
        )
        # A window closes when its forecast re-fires (fine-tuning) or
        # explicitly ends; every fired window was closed by the drain.
        assert closed == _events(runtime, EventKind.FORECAST)
        assert registry.histogram("forecast_error_abs").count == closed

    def test_fabric_gauges_reflect_final_state(self, instrumented):
        registry, runtime = instrumented
        states = registry.gauge("containers_state")
        by_state = {
            key[0]: child.current() for key, child in states.children()
        }
        assert sum(by_state.values()) == len(runtime.fabric)
        assert by_state["failed"] == 0  # fault-free run
        assert by_state["loaded"] > 0  # rotations landed
        utilisation = registry.gauge("fabric_utilisation_ratio").current()
        assert 0.0 <= utilisation <= 1.0
        assert registry.counter("container_churn_total").current() > 0

    def test_no_faults_means_quiet_fault_metrics(self, instrumented):
        registry, _runtime = instrumented
        assert registry.counter("container_failures_total").current() == 0
        injected = registry.counter("faults_injected_total")
        assert all(
            child.current() == 0 for _, child in injected.children()
        )


class TestTraceEquivalence:
    def test_metrics_do_not_perturb_the_trace(self):
        library = build_synthetic_library()
        baseline = run_si_stream(
            library, FORECASTS, BLOCKS,
            containers=5, block_rounds=4, optimize=False,
        )
        instrumented_rt = run_si_stream(
            library, FORECASTS, BLOCKS,
            containers=5, block_rounds=4, optimize=True,
            metrics=MetricRegistry(),
        )
        assert trace_signature(baseline.trace) == trace_signature(
            instrumented_rt.trace
        )

    def test_disabled_and_enabled_runs_are_trace_identical(self):
        library = build_synthetic_library()
        plain = run_si_stream(
            library, FORECASTS, BLOCKS,
            containers=5, block_rounds=4, optimize=True,
        )
        instrumented_rt = run_si_stream(
            library, FORECASTS, BLOCKS,
            containers=5, block_rounds=4, optimize=True,
            metrics=MetricRegistry(),
        )
        assert trace_signature(plain.trace) == trace_signature(
            instrumented_rt.trace
        )
