"""Tests for the H.264 quantization/rescale/inverse-transform chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264 import dct_4x4
from repro.apps.h264.quant import (
    MAX_QP,
    dequantize_4x4,
    inverse_dct_4x4,
    position_class,
    quantization_step,
    quantize_4x4,
    reconstruct_4x4,
)

pixel_blocks = arrays(np.int64, (4, 4), elements=st.integers(-255, 255))


class TestPositionClass:
    def test_corner_positions(self):
        assert position_class(0, 0) == 0
        assert position_class(2, 2) == 0
        assert position_class(1, 1) == 1
        assert position_class(3, 3) == 1
        assert position_class(0, 1) == 2
        assert position_class(2, 1) == 2

    def test_class_counts(self):
        classes = [position_class(i, j) for i in range(4) for j in range(4)]
        assert classes.count(0) == 4
        assert classes.count(1) == 4
        assert classes.count(2) == 8


class TestQuantization:
    def test_zero_block_stays_zero(self):
        z = quantize_4x4(np.zeros((4, 4)), 20)
        assert (z == 0).all()
        assert (dequantize_4x4(z, 20) == 0).all()

    def test_sign_preserved(self):
        w = np.array([[1000, -1000, 0, 0]] * 4)
        z = quantize_4x4(w, 10)
        assert z[0, 0] > 0 and z[0, 1] < 0

    def test_higher_qp_coarser_levels(self):
        w = dct_4x4(np.full((4, 4), 100))
        fine = np.abs(quantize_4x4(w, 0)).sum()
        coarse = np.abs(quantize_4x4(w, 40)).sum()
        assert coarse < fine

    def test_qp_validated(self):
        w = np.zeros((4, 4))
        with pytest.raises(ValueError):
            quantize_4x4(w, -1)
        with pytest.raises(ValueError):
            quantize_4x4(w, MAX_QP + 1)
        with pytest.raises(ValueError):
            dequantize_4x4(w, 99)

    def test_block_shape_validated(self):
        with pytest.raises(ValueError):
            quantize_4x4(np.zeros((2, 2)), 10)

    def test_intra_vs_inter_rounding(self):
        w = np.full((4, 4), 7)
        intra = quantize_4x4(w, 30, intra=True)
        inter = quantize_4x4(w, 30, intra=False)
        # The intra offset rounds more aggressively upward.
        assert (intra >= inter).all()

    def test_quantization_step_doubles_every_six(self):
        for qp in range(0, MAX_QP - 5):
            assert quantization_step(qp + 6) == pytest.approx(
                2 * quantization_step(qp)
            )
        assert quantization_step(0) == pytest.approx(0.625)


class TestReconstruction:
    @given(pixel_blocks)
    @settings(max_examples=40)
    def test_lossless_at_qp0_within_one(self, x):
        rec = reconstruct_4x4(dct_4x4(x), 0)
        assert np.abs(rec - x).max() <= 1

    @given(pixel_blocks, st.integers(0, 42))
    @settings(max_examples=60)
    def test_error_bounded_by_quant_step(self, x, qp):
        rec = reconstruct_4x4(dct_4x4(x), qp)
        # Worst-case spatial error stays within ~2 quantizer steps.
        bound = 2 * quantization_step(qp) + 1
        assert np.abs(rec - x).max() <= bound

    def test_error_grows_monotonically_with_qp(self):
        rng = np.random.default_rng(3)
        blocks = [rng.integers(-255, 256, (4, 4)) for _ in range(30)]
        errors = []
        for qp in (0, 12, 24, 36, 48):
            err = max(
                int(np.abs(reconstruct_4x4(dct_4x4(b), qp) - b).max())
                for b in blocks
            )
            errors.append(err)
        assert errors == sorted(errors)
        assert errors[0] <= 1

    def test_inverse_transform_of_dc_only(self):
        # A rescaled pure-DC block reconstructs to a flat block.
        w = np.zeros((4, 4), dtype=np.int64)
        w[0, 0] = 64 * 10  # DC of a flat block of 10s, pre-scaled by 64
        rec = inverse_dct_4x4(w)
        assert (rec == 10).all()

    def test_inverse_shape_validated(self):
        with pytest.raises(ValueError):
            inverse_dct_4x4(np.zeros((3, 3)))
