"""Property tests over randomly generated CFGs.

The SCC-recursive probability computation must agree with the exact
absorbing-Markov-chain reference on *arbitrary* graphs, and the distance
measures must satisfy their ordering invariants.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import (
    ControlFlowGraph,
    expected_distance,
    max_distance,
    min_distance,
    reach_probability_markov,
    reach_probability_scc,
)


@st.composite
def random_cfg(draw):
    """A random profiled CFG: 3..10 blocks, random edges, one SI block.

    Every block gets a guaranteed path onward (edge to the next block or
    exit), so the structure resembles a real program: connected from the
    entry, loops allowed, at least one exit.
    """
    n = draw(st.integers(min_value=3, max_value=10))
    cfg = ControlFlowGraph()
    for i in range(n):
        cfg.block(f"b{i}", cycles=draw(st.integers(1, 20)))
    edges = set()
    # A spine keeps everything reachable and guarantees an exit.
    for i in range(n - 1):
        edges.add((i, i + 1))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=n * 2,
        )
    )
    for a, b in extra:
        edges.add((a, b))
    # The last block stays an exit.
    edges = {(a, b) for a, b in edges if a != n - 1}
    for a, b in sorted(edges):
        cfg.add_edge(f"b{a}", f"b{b}", count=draw(st.integers(1, 50)))
    target = draw(st.integers(1, n - 1))
    cfg.get(f"b{target}").si_usages["S"] = 1
    return cfg


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_scc_probability_matches_markov(cfg):
    targets = cfg.blocks_using("S")
    pm = reach_probability_markov(cfg, targets)
    ps = reach_probability_scc(cfg, targets)
    for block in cfg.block_ids():
        assert abs(pm[block] - ps[block]) < 1e-9


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_probabilities_are_probabilities(cfg):
    targets = cfg.blocks_using("S")
    for p in reach_probability_scc(cfg, targets).values():
        assert 0.0 <= p <= 1.0


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_distance_ordering(cfg):
    """min <= expected everywhere; targets at distance zero."""
    targets = cfg.blocks_using("S")
    dmin = min_distance(cfg, targets)
    dexp = expected_distance(cfg, targets)
    for block in cfg.block_ids():
        if math.isinf(dexp[block]):
            continue
        assert dmin[block] <= dexp[block] + 1e-9
    for t in targets:
        assert dmin[t] == 0.0
        assert dexp[t] == 0.0


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_min_distance_finite_iff_reachable(cfg):
    targets = cfg.blocks_using("S")
    prob = reach_probability_markov(cfg, targets)
    dmin = min_distance(cfg, targets)
    for block in cfg.block_ids():
        if prob[block] > 0:
            assert math.isfinite(dmin[block])
        # A block with positive min-distance path must have followed real
        # edges; unreachable blocks are infinite.
        if math.isinf(dmin[block]):
            assert prob[block] == 0.0


@settings(max_examples=40, deadline=None)
@given(random_cfg())
def test_max_distance_dominates_min_on_dags(cfg):
    """On acyclic graphs the pessimistic estimate dominates the optimistic."""
    from repro.cfg import condense

    if condense(cfg).loops():
        return  # loop trip-count scaling may undercut worst single paths
    targets = cfg.blocks_using("S")
    dmin = min_distance(cfg, targets)
    dmax = max_distance(cfg, targets)
    for block in cfg.block_ids():
        if math.isfinite(dmax[block]) and math.isfinite(dmin[block]):
            assert dmax[block] >= dmin[block] - 1e-9
