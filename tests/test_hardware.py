"""Unit tests for the hardware model: specs, containers, fabric, port, area."""

import pytest

from repro.hardware import (
    CONTAINER_SLICES,
    SELECTMAP_BYTES_PER_US,
    TABLE1_SPECS,
    AreaComparison,
    AtomContainer,
    ContainerState,
    Fabric,
    H264_PHASES,
    PhaseProfile,
    ReconfigurationPort,
    average_rotation_us,
    extensible_processor_area,
    ge_max,
    ge_saving_pct,
    max_alpha_for_constraint,
    meets_constraint,
    rispp_area,
)


class TestAtomSpecs:
    @pytest.mark.parametrize("name", ["Transform", "SATD", "Pack", "QuadSub"])
    def test_rotation_time_matches_table1(self, name):
        spec = TABLE1_SPECS[name]
        modelled = spec.rotation_time_us()
        assert modelled == pytest.approx(spec.reported_rotation_us, rel=1e-3)

    def test_pack_has_biggest_bitstream(self):
        # The BlockRAM row under Pack's container inflates its bitstream.
        assert TABLE1_SPECS["Pack"].bitstream_bytes == max(
            s.bitstream_bytes for s in TABLE1_SPECS.values()
        )

    def test_utilization_matches_paper(self):
        assert TABLE1_SPECS["Transform"].utilization == pytest.approx(0.505, abs=0.01)
        assert TABLE1_SPECS["QuadSub"].utilization == pytest.approx(0.342, abs=0.01)

    def test_rotation_cycles_scale_with_frequency(self):
        spec = TABLE1_SPECS["Transform"]
        assert spec.rotation_time_cycles(200.0) == pytest.approx(
            2 * spec.rotation_time_cycles(100.0), rel=1e-3
        )

    def test_invalid_rates_rejected(self):
        spec = TABLE1_SPECS["SATD"]
        with pytest.raises(ValueError):
            spec.rotation_time_us(0)
        with pytest.raises(ValueError):
            spec.rotation_time_cycles(0)

    def test_average_rotation_in_milliseconds_range(self):
        # §4: "the rotation time is in the range of milliseconds".
        avg = average_rotation_us()
        assert 500 <= avg <= 1500

    def test_container_capacity(self):
        for spec in TABLE1_SPECS.values():
            assert spec.slices <= CONTAINER_SLICES


class TestAtomContainer:
    def test_lifecycle(self):
        c = AtomContainer(0)
        assert c.state is ContainerState.EMPTY
        c.begin_rotation("Pack", ready_at=100, owner="A")
        assert c.is_busy()
        c.complete_rotation(100)
        assert c.is_available()
        assert c.atom == "Pack"
        assert c.owner == "A"
        assert c.rotations == 1

    def test_cannot_rotate_while_loading(self):
        c = AtomContainer(0)
        c.begin_rotation("Pack", ready_at=100)
        with pytest.raises(ValueError):
            c.begin_rotation("SATD", ready_at=200)

    def test_cannot_complete_early(self):
        c = AtomContainer(0)
        c.begin_rotation("Pack", ready_at=100)
        with pytest.raises(ValueError):
            c.complete_rotation(50)

    def test_cannot_complete_idle(self):
        with pytest.raises(ValueError):
            AtomContainer(0).complete_rotation(0)

    def test_touch_requires_loaded(self):
        c = AtomContainer(0)
        with pytest.raises(ValueError):
            c.touch(5)

    def test_evict_returns_atom(self):
        c = AtomContainer(0)
        c.begin_rotation("Pack", ready_at=10)
        c.complete_rotation(10)
        assert c.evict() == "Pack"
        assert c.state is ContainerState.EMPTY

    def test_evict_while_loading_rejected(self):
        c = AtomContainer(0)
        c.begin_rotation("Pack", ready_at=10)
        with pytest.raises(ValueError):
            c.evict()

    def test_reassign_owner(self):
        c = AtomContainer(0)
        c.reassign("B")
        assert c.owner == "B"


class TestFabric:
    def test_static_atoms_always_available(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 4, static_multiplicity=8)
        atoms = fabric.available_atoms()
        assert atoms.count("Load") == 8
        assert atoms.count("Pack") == 0

    def test_loaded_atoms_counted(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 4)
        fabric.container(0).begin_rotation("Pack", ready_at=10)
        fabric.container(0).complete_rotation(10)
        fabric.container(1).begin_rotation("Pack", ready_at=20)
        assert fabric.available_atoms().count("Pack") == 1
        assert fabric.in_flight().count("Pack") == 1
        assert fabric.eventual_atoms().count("Pack") == 2

    def test_container_buckets(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 3)
        fabric.container(0).begin_rotation("SATD", ready_at=5)
        fabric.container(0).complete_rotation(5)
        fabric.container(1).begin_rotation("Pack", ready_at=9)
        assert len(fabric.empty_containers()) == 1
        assert len(fabric.loaded_containers()) == 1
        assert len(fabric.busy_containers()) == 1
        assert fabric.containers_holding("SATD")[0].container_id == 0

    def test_check_rotatable(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        with pytest.raises(ValueError):
            fabric.check_rotatable("Load")  # static
        with pytest.raises(ValueError):
            fabric.check_rotatable("Ghost")
        fabric.check_rotatable("Pack")  # fine

    def test_utilisation(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 4)
        assert fabric.utilisation() == 0.0
        fabric.container(0).begin_rotation("Pack", ready_at=1)
        assert fabric.utilisation() == 0.25

    def test_describe_one_line_per_container(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 6)
        assert len(fabric.describe()) == 6

    def test_touch_atoms_updates_lru(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        fabric.container(0).begin_rotation("Pack", ready_at=1)
        fabric.container(0).complete_rotation(1)
        m = fabric.space.molecule({"Pack": 1, "Load": 1})
        fabric.touch_atoms(m, now=50)
        assert fabric.container(0).last_used == 50


class TestReconfigurationPort:
    def test_rotation_cycles_from_bitstream(self, mini_catalogue):
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        # Transform: 59_353 B / 69.2 B/us = 857.6 us -> 85_763 cycles @100MHz
        cycles = port.rotation_cycles("Transform")
        expected = 59_353 / SELECTMAP_BYTES_PER_US * 100.0
        assert cycles == pytest.approx(expected, rel=1e-3)

    def test_static_atom_rejected(self, mini_catalogue):
        port = ReconfigurationPort(mini_catalogue)
        with pytest.raises(ValueError):
            port.rotation_cycles("Load")

    def test_rotations_serialise(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 4)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        j1 = port.request(fabric, "Pack", 0, now=0)
        j2 = port.request(fabric, "SATD", 1, now=0)
        assert j2.started_at == j1.finish_at
        assert j2.queue_delay == j1.duration

    def test_advance_completes_jobs(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0)
        # Request reserves but does not disturb the container yet.
        assert port.is_reserved(0)
        assert not fabric.container(0).is_busy()
        port.advance(fabric, job.started_at)
        assert fabric.container(0).is_busy()
        done = port.advance(fabric, job.finish_at)
        assert [j.atom for j in done] == ["Pack"]
        assert fabric.container(0).is_available()
        assert not port.is_reserved(0)

    def test_container_serves_old_atom_until_rotation_starts(self, mini_catalogue):
        # The Fig. 6 T3 property: a container queued for rotation keeps
        # serving its current Atom while earlier jobs occupy the port.
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        j0 = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, j0.finish_at)
        assert fabric.container(0).atom == "Pack"
        # Queue two rotations: SATD into AC1 (starts now), Transform into
        # AC0 (starts only when the port frees up).
        j1 = port.request(fabric, "SATD", 1, now=j0.finish_at)
        j2 = port.request(fabric, "Transform", 0, now=j0.finish_at)
        assert j2.started_at == j1.finish_at
        mid = (j1.started_at + j1.finish_at) // 2
        port.advance(fabric, mid)
        # While SATD is being written, AC0 still offers Pack.
        assert fabric.available_atoms().count("Pack") == 1
        port.advance(fabric, j2.started_at)
        assert fabric.available_atoms().count("Pack") == 0

    def test_double_reservation_rejected(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        port.request(fabric, "Pack", 0, now=0)
        with pytest.raises(ValueError):
            port.request(fabric, "SATD", 0, now=0)

    def test_next_completion(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        assert port.next_completion() is None
        job = port.request(fabric, "Pack", 0, now=10)
        assert port.next_completion() == job.finish_at

    def test_eviction_recorded(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 1)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        j1 = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, j1.finish_at)
        j2 = port.request(fabric, "SATD", 0, now=j1.finish_at)
        assert j2.evicted == "Pack"

    def test_busy_accounting(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        port.request(fabric, "Pack", 0, now=0)
        port.request(fabric, "SATD", 1, now=0)
        assert port.total_rotations() == 2
        assert port.total_busy_cycles() == port.busy_until


class TestAreaModel:
    def test_paper_facts_encoded(self):
        mc = next(p for p in H264_PHASES if p.name == "MC")
        assert mc.time_pct == 17.0
        assert mc.gate_equivalents == ge_max(list(H264_PHASES))
        me = next(p for p in H264_PHASES if p.name == "ME")
        assert me.gate_equivalents == min(p.gate_equivalents for p in H264_PHASES)
        assert me.time_pct == max(p.time_pct for p in H264_PHASES)

    def test_saving_formula(self):
        phases = list(H264_PHASES)
        total = extensible_processor_area(phases)
        saving = ge_saving_pct(phases, alpha=1.25)
        assert saving == pytest.approx(
            (total - 1.25 * ge_max(phases)) * 100 / total
        )
        assert 0 < saving < 100

    def test_rispp_always_smaller_at_reasonable_alpha(self):
        phases = list(H264_PHASES)
        assert rispp_area(phases, 1.25) < extensible_processor_area(phases)

    def test_constraint_check(self):
        phases = list(H264_PHASES)
        limit = rispp_area(phases, 1.25)
        assert meets_constraint(phases, 1.25, limit)
        assert not meets_constraint(phases, 1.3, limit)
        assert max_alpha_for_constraint(phases, limit) == pytest.approx(1.25)

    def test_comparison_bundle(self):
        cmp = AreaComparison.build(list(H264_PHASES), 1.25)
        assert cmp.extensible_ge > cmp.rispp_ge
        assert cmp.saving_pct > 40

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseProfile("X", 120.0, 100)
        with pytest.raises(ValueError):
            PhaseProfile("X", 10.0, 0)
        with pytest.raises(ValueError):
            rispp_area(list(H264_PHASES), 0)
        with pytest.raises(ValueError):
            extensible_processor_area([])
