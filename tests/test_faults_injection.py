"""Fault delivery and recovery through the runtime manager.

The synthetic library's first plan is fully deterministic — ``SI0``'s
big molecule rotates Syn0/Syn1/Syn2/Syn2 into containers 0..3 — so the
tests schedule faults at hand-picked cycles and assert the exact
detection, quarantine, repair and retry behaviour, plus the two
satellite bugfixes (``fail_container`` validation/idempotence and the
port's mid-write drop/abort resequencing).
"""

import pytest

from repro.bench.suites import build_synthetic_library, run_si_stream
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.faults.injector import _Episode
from repro.hardware import Fabric, ReconfigurationPort
from repro.runtime import RisppRuntime
from repro.sim import EventKind


@pytest.fixture()
def library():
    return build_synthetic_library()


def make_runtime(library, events, **injector_kwargs):
    injector = FaultInjector(FaultSchedule(events), **injector_kwargs)
    rt = RisppRuntime(library, 5, core_mhz=100.0, faults=injector)
    return rt, injector


def prime(rt):
    """Fire the SI0 forecast and land its four rotations (finish 260093)."""
    rt.forecast("SI0", 0, expected=64.0)
    finish = max(j.finish_at for j in rt.port.jobs)
    rt.advance(finish)
    return finish


class TestTransientLifecycle:
    """Inject at 300000 into container 0 (Syn0); scrub period 10000."""

    SCHEDULE = [FaultEvent(300_000, FaultKind.TRANSIENT, container=0)]

    def test_silent_window_then_detect_quarantine_repair(self, library):
        rt, injector = make_runtime(
            library, self.SCHEDULE, scrub_period=10_000
        )
        finish = prime(rt)
        assert rt.execute_si("SI0", finish + 1) == 12  # hardware

        # Inside the silent window the corrupted container still serves:
        # the planner and the execution path have no idea (timing-wise the
        # functional model stays correct by construction).
        assert rt.execute_si("SI0", 305_000) == 12
        container = rt.fabric.container(0)
        assert container.corrupted and container.is_available()
        injected = rt.trace.of_kind(EventKind.FAULT_INJECTED)
        assert injected and injected[0].detail["effect"] == "corrupted"
        assert injected[0].cycle == 300_000

        # The next scrubber pass (310000) detects, quarantines, and
        # queues the repair rotation through the normal port.
        rt.advance(310_001)
        container = rt.fabric.container(0)
        assert container.quarantined and not container.is_available()
        detected = rt.trace.of_kind(EventKind.FAULT_DETECTED)
        assert detected[0].cycle == 310_000
        assert detected[0].detail["latency"] == 10_000
        quarantined = rt.trace.of_kind(EventKind.CONTAINER_QUARANTINED)
        assert quarantined[0].detail == {"container": 0, "atom": "Syn0"}
        # While quarantined, SI0 has no full molecule: software fallback,
        # attributed to the fault.
        assert rt.execute_si("SI0", 311_000) == 300
        assert injector.stats.sw_fallback_executions == 1

        # The repair lands one Syn0 rotation later; the container is
        # released and execution returns to hardware.
        repair = [j for j in rt.port.jobs if j.repair]
        assert len(repair) == 1 and repair[0].container_id == 0
        rt.advance(repair[0].finish_at + 1)
        container = rt.fabric.container(0)
        assert not container.quarantined and container.atom == "Syn0"
        assert rt.execute_si("SI0", repair[0].finish_at + 2) == 12
        repaired = rt.trace.of_kind(EventKind.CONTAINER_REPAIRED)
        assert repaired[0].detail["mttr"] == repair[0].finish_at - 300_000
        assert injector.stats.containers_repaired == 1
        assert injector.stats.mttr_cycles_max == repaired[0].detail["mttr"]
        assert injector.open_episodes() == 0

    def test_degraded_cycles_cover_the_episode(self, library):
        rt, injector = make_runtime(
            library, self.SCHEDULE, scrub_period=10_000
        )
        prime(rt)
        rt.advance(500_000)
        injector.finalize(500_000)
        repaired = rt.trace.of_kind(EventKind.CONTAINER_REPAIRED)
        assert repaired, "repair must complete by cycle 500000"
        # Degraded from injection to repair completion, and only then.
        assert injector.stats.degraded_cycles == (
            repaired[0].cycle - 300_000
        )

    def test_transient_on_empty_container_is_no_effect(self, library):
        rt, injector = make_runtime(
            library, [FaultEvent(100, FaultKind.TRANSIENT, container=4)]
        )
        prime(rt)
        assert injector.stats.faults_no_effect == 1
        assert injector.stats.faults_detected == 0
        injected = rt.trace.of_kind(EventKind.FAULT_INJECTED)
        assert injected[0].detail["effect"] == "none"
        assert injector.open_episodes() == 0

    def test_overwrite_heals_before_scrub(self, library):
        # Scrub period so long the scrubber never visits: an ordinary
        # rotation overwrites the corrupted configuration first.
        rt, injector = make_runtime(
            library, self.SCHEDULE, scrub_period=1_000_000_000
        )
        prime(rt)
        rt.advance(300_001)
        assert rt.fabric.container(0).corrupted
        job = rt.port.request(rt.fabric, "Syn3", 0, 301_000)
        rt._record_rotation_request(job, 301_000)
        rt.advance(job.finish_at + 1)
        assert injector.stats.faults_overwritten == 1
        assert injector.stats.faults_detected == 0
        assert not rt.fabric.container(0).corrupted
        assert injector.open_episodes() == 0

    def test_pending_rotation_adopted_as_repair(self, library):
        rt, injector = make_runtime(library, [], scrub_period=10_000)
        prime(rt)
        # White-box: corrupt container 0 by hand, then queue an ordinary
        # rotation into it before the scrubber detects.  The detection
        # must adopt the pending job instead of double-booking the port.
        rt.fabric.container(0).mark_corrupted()
        injector._corrupted[0] = _Episode(0, "Syn0", 300_000)
        job = rt.port.request(rt.fabric, "Syn0", 0, 301_000)
        rt._record_rotation_request(job, 301_000)
        injector._detect(rt, 0, 310_000)
        assert job.repair is True
        assert rt.fabric.container(0).quarantined
        rt.advance(job.finish_at + 1)
        assert not rt.fabric.container(0).quarantined
        assert injector.stats.containers_repaired == 1


class TestWriteErrors:
    """Mid-write fault at 30000, inside the Syn0 write (0..57799)."""

    SCHEDULE = [FaultEvent(30_000, FaultKind.WRITE_ERROR)]

    def test_abort_retry_backoff_and_reload(self, library):
        rt, injector = make_runtime(
            library, self.SCHEDULE, backoff_cycles=1_000
        )
        rt.forecast("SI0", 0, expected=64.0)
        rt.advance(30_001)
        aborted = [j for j in rt.port.jobs if j.aborted]
        assert len(aborted) == 1 and aborted[0].atom == "Syn0"
        assert rt.fabric.container(0).atom is None
        retried = rt.trace.of_kind(EventKind.ROTATION_RETRIED)
        assert retried[0].detail["attempt"] == 1
        assert retried[0].detail["retry_at"] == 31_000  # backoff * 2^0
        assert injector.stats.rotation_retries == 1
        injected = rt.trace.of_kind(EventKind.FAULT_INJECTED)
        assert injected[0].detail["effect"] == "write_aborted"

        # The retried write goes back through the port and lands.
        rt.advance(1_000_000)
        assert rt.fabric.container(0).atom == "Syn0"
        assert rt.execute_si("SI0", 1_000_001) == 12
        assert injector.stats.jobs_abandoned == 0

    def test_retries_exhausted_abandons_job_and_replans(self, library):
        rt, injector = make_runtime(
            library, self.SCHEDULE, max_retries=0
        )
        rt.forecast("SI0", 0, expected=64.0)
        replans_before = rt.stats.replans
        rt.advance(30_001)
        assert injector.stats.jobs_abandoned == 1
        assert injector.stats.rotation_retries == 0
        assert not rt.trace.of_kind(EventKind.ROTATION_RETRIED)
        assert rt.stats.replans > replans_before

    def test_write_error_on_idle_port_is_no_effect(self, library):
        rt, injector = make_runtime(
            library, [FaultEvent(100, FaultKind.WRITE_ERROR)]
        )
        rt.advance(200)  # no forecast: nothing in flight
        assert injector.stats.faults_no_effect == 1
        injected = rt.trace.of_kind(EventKind.FAULT_INJECTED)
        assert injected[0].detail["effect"] == "none"

    def test_repair_write_exhaustion_retires_container(self, library):
        rt, injector = make_runtime(library, [], max_retries=0)
        prime(rt)
        # A quarantined container whose repair write keeps failing is
        # retired for good (the alternative is retrying forever).
        rt.fabric.container(0).mark_corrupted()
        injector._corrupted[0] = _Episode(0, "Syn0", 300_000)
        injector._detect(rt, 0, 310_000)
        repair = [j for j in rt.port.jobs if j.repair][0]
        mid = (repair.started_at + repair.finish_at) // 2
        rt.advance(mid)
        injector._inject_write_error(rt, mid)
        assert rt.fabric.container(0).failed
        assert injector.stats.containers_retired == 1
        assert injector.open_episodes() == 0


class TestPermanentDefects:
    def test_permanent_retires_and_repeat_is_no_effect(self, library):
        rt, injector = make_runtime(
            library,
            [
                FaultEvent(300_000, FaultKind.PERMANENT, container=1),
                FaultEvent(300_500, FaultKind.PERMANENT, container=1),
            ],
        )
        prime(rt)
        rt.advance(301_000)
        assert rt.fabric.container(1).failed
        assert injector.stats.permanents == 2
        assert injector.stats.containers_retired == 1
        assert injector.stats.faults_no_effect == 1
        failed = rt.trace.of_kind(EventKind.CONTAINER_FAILED)
        assert len(failed) == 1 and failed[0].detail["lost_atom"] == "Syn1"

    def test_permanent_closes_open_corruption_episode(self, library):
        rt, injector = make_runtime(
            library,
            [
                FaultEvent(300_000, FaultKind.TRANSIENT, container=0),
                FaultEvent(300_100, FaultKind.PERMANENT, container=0),
            ],
            scrub_period=1_000_000_000,
        )
        prime(rt)
        rt.advance(301_000)
        assert rt.fabric.container(0).failed
        assert injector.open_episodes() == 0


class TestScheduleValidation:
    def test_out_of_range_target_rejected_on_attach(self, library):
        events = [FaultEvent(10, FaultKind.TRANSIENT, container=7)]
        with pytest.raises(ValueError, match="container 7"):
            make_runtime(library, events)

    def test_injector_config_validation(self):
        schedule = FaultSchedule([])
        with pytest.raises(ValueError):
            FaultInjector(schedule, scrub_period=0)
        with pytest.raises(ValueError):
            FaultInjector(schedule, max_retries=-1)
        with pytest.raises(ValueError):
            FaultInjector(schedule, backoff_cycles=0)


class TestOptimizeEquivalence:
    def test_same_schedule_same_trace_either_optimize_mode(self, library):
        from repro.bench.harness import trace_signature

        schedule = FaultSchedule.generate(
            seed=11, horizon=852_370, containers=5, rate=20.0
        )

        def run(optimize):
            injector = FaultInjector(FaultSchedule(list(schedule)))
            return run_si_stream(
                library,
                [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)],
                [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)],
                containers=5,
                block_rounds=6,
                optimize=optimize,
                fault_injector=injector,
            )

        assert trace_signature(run(False).trace) == trace_signature(
            run(True).trace
        )


# -- satellite 1: fail_container hardening -----------------------------------


class TestFailContainerBugfixes:
    def test_out_of_range_raises(self, library):
        rt = RisppRuntime(library, 5, core_mhz=100.0)
        with pytest.raises(ValueError, match="out of range"):
            rt.fail_container(5, 0)
        with pytest.raises(ValueError, match="out of range"):
            rt.fail_container(-1, 0)
        with pytest.raises(ValueError):
            rt.fabric.fail_container(-1)

    def test_repeat_failure_is_idempotent_no_op(self, library):
        rt = RisppRuntime(library, 5, core_mhz=100.0)
        finish = prime(rt)
        rt.fail_container(2, finish + 10)
        events = rt.trace.of_kind(EventKind.CONTAINER_FAILED)
        replans = rt.stats.replans
        trace_len = len(rt.trace)
        assert len(events) == 1

        rt.fail_container(2, finish + 20)  # no duplicate event, no replan
        assert len(rt.trace.of_kind(EventKind.CONTAINER_FAILED)) == 1
        assert rt.stats.replans == replans
        assert len(rt.trace) == trace_len

    def test_container_mark_failed_idempotent(self, library):
        container = Fabric(library.catalogue, 1).container(0)
        container.mark_failed()
        generation = container.generation
        assert container.mark_failed() is None
        assert container.generation == generation


# -- satellite 2: mid-write drops and aborts on the port ----------------------


class TestPortMidWriteRecovery:
    def test_active_write_dropped_when_container_fails(self, library):
        fabric = Fabric(library.catalogue, 5)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        j0 = port.request(fabric, "Syn0", 0, now=0)
        j1 = port.request(fabric, "Syn1", 1, now=0)
        port.advance(fabric, 10_000)  # j0's write is in flight
        assert fabric.container(0).is_busy()

        fabric.fail_container(0)
        done = port.advance(fabric, 10_500)
        assert done == []
        assert not port.is_reserved(0)
        # The gap closes: j1 is pulled forward to the drop cycle, and
        # the port never re-leases time it already spent.
        assert j1.started_at == 10_500
        assert j1.finish_at == 10_500 + (j1.finish_at - j1.started_at)
        assert port.busy_until == j1.finish_at
        assert port.busy_until >= 10_500
        port.advance(fabric, j1.finish_at)
        assert fabric.container(1).atom == "Syn1"
        assert j0.completed is False

    def test_drop_with_empty_queue_pins_busy_until_to_now(self, library):
        fabric = Fabric(library.catalogue, 2)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        port.request(fabric, "Syn0", 0, now=0)
        port.advance(fabric, 10_000)
        fabric.fail_container(0)
        port.advance(fabric, 12_000)
        assert port.is_idle()
        assert port.busy_until == 12_000  # never backwards from ``now``

    def test_abort_active_mid_write(self, library):
        fabric = Fabric(library.catalogue, 5)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        j0 = port.request(fabric, "Syn0", 0, now=0)
        j1 = port.request(fabric, "Syn1", 1, now=0)
        port.advance(fabric, 10_000)

        aborted = port.abort_active(fabric, 10_000)
        assert aborted is j0 and j0.aborted
        container = fabric.container(0)
        assert container.atom is None and not container.is_busy()
        assert not port.is_reserved(0)
        assert j1.started_at == 10_000
        assert port.busy_until == j1.finish_at >= 10_000

    def test_abort_active_idle_port_returns_none(self, library):
        fabric = Fabric(library.catalogue, 2)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        assert port.abort_active(fabric, 100) is None

    def test_abort_active_misses_completed_write(self, library):
        fabric = Fabric(library.catalogue, 2)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        job = port.request(fabric, "Syn0", 0, now=0)
        port.advance(fabric, job.finish_at)
        # The write finished exactly at ``now``: nothing is in flight.
        assert port.abort_active(fabric, job.finish_at) is None
        assert fabric.container(0).atom == "Syn0"


# -- satellite: backoff-ladder configuration ----------------------------------


class TestBackoffLadder:
    """Explicit per-attempt retry delays, validated at construction."""

    def test_ladder_must_fit_the_retry_budget(self):
        schedule = FaultSchedule([])
        with pytest.raises(ValueError, match="positive retry budget"):
            FaultInjector(
                schedule, max_retries=0, backoff_ladder=(1_000,)
            )
        with pytest.raises(ValueError, match="one delay per retry"):
            FaultInjector(
                schedule, max_retries=3, backoff_ladder=(1_000, 2_000)
            )

    def test_ladder_steps_must_be_positive(self):
        schedule = FaultSchedule([])
        with pytest.raises(ValueError, match="must be positive"):
            FaultInjector(
                schedule, max_retries=2, backoff_ladder=(0, 1_000)
            )
        with pytest.raises(ValueError, match="must be positive"):
            FaultInjector(
                schedule, max_retries=2, backoff_ladder=(500, -1)
            )

    def test_ladder_steps_must_be_non_decreasing(self):
        schedule = FaultSchedule([])
        with pytest.raises(ValueError, match="non-decreasing"):
            FaultInjector(
                schedule, max_retries=3, backoff_ladder=(2_000, 1_000, 3_000)
            )

    def test_valid_ladder_is_normalized_to_a_tuple(self):
        injector = FaultInjector(
            FaultSchedule([]),
            max_retries=3,
            backoff_ladder=[500, 500, 2_000],
        )
        assert injector.backoff_ladder == (500, 500, 2_000)
        assert injector._backoff_for(0) == 500
        assert injector._backoff_for(2) == 2_000

    def test_without_ladder_backoff_doubles(self):
        injector = FaultInjector(FaultSchedule([]), backoff_cycles=1_000)
        assert injector.backoff_ladder is None
        assert [injector._backoff_for(i) for i in range(3)] == [
            1_000,
            2_000,
            4_000,
        ]

    def test_first_retry_uses_the_ladder_delay(self, library):
        # Same mid-write fault as TestWriteErrors, but the first retry
        # must wait the ladder's first step, not backoff_cycles * 2^0.
        rt, injector = make_runtime(
            library,
            [FaultEvent(30_000, FaultKind.WRITE_ERROR)],
            backoff_cycles=1_000,
            max_retries=3,
            backoff_ladder=(500, 500, 9_000),
        )
        rt.forecast("SI0", 0, expected=64.0)
        rt.advance(30_001)
        retried = rt.trace.of_kind(EventKind.ROTATION_RETRIED)
        assert retried[0].detail["attempt"] == 1
        assert retried[0].detail["retry_at"] == 30_500

    def test_static_repair_bound_sums_the_ladder(self, library):
        from repro.faults import static_repair_bound

        exponential = static_repair_bound(
            library, 5, scrub_period=10_000, max_retries=3,
            backoff_cycles=1_000,
        )
        laddered = static_repair_bound(
            library, 5, scrub_period=10_000, max_retries=3,
            backoff_cycles=1_000, backoff_ladder=(500, 500, 1_000),
        )
        # 1000 + 2000 + 4000 exponential vs 2000 laddered.
        assert exponential - laddered == 5_000
