"""Tests for the H.264 reference transforms and behavioural atoms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264 import (
    AtomExecutionCounter,
    add_atom,
    dc_coefficients,
    dct_4x4,
    hadamard_2x2,
    hadamard_4x4,
    load_atom,
    pack_atom,
    pack_words,
    quadsub_atom,
    residual,
    sad_4x4,
    satd_4x4,
    satd_atom,
    store_atom,
    transform_atom,
    unpack_words,
)
from repro.apps.h264.transforms import CF4, H4

blocks_4x4 = arrays(np.int64, (4, 4), elements=st.integers(-255, 255))
pixels_4x4 = arrays(np.int64, (4, 4), elements=st.integers(0, 255))
vec4_int16 = arrays(np.int64, (4,), elements=st.integers(-(2**15), 2**15 - 1))


class TestReferenceTransforms:
    def test_dct_dc_of_flat_block(self):
        # A constant block concentrates all energy in DC: 16 * value.
        y = dct_4x4(np.full((4, 4), 7))
        assert y[0, 0] == 16 * 7
        assert (y.ravel()[1:] == 0).all()

    def test_hadamard_4x4_flat_block(self):
        y = hadamard_4x4(np.full((4, 4), 6))
        assert y[0, 0] == (16 * 6) >> 1
        assert (y.ravel()[1:] == 0).all()

    def test_hadamard_2x2_known_value(self):
        y = hadamard_2x2([[1, 2], [3, 4]])
        assert y[0, 0] == 10
        assert y[0, 1] == -2
        assert y[1, 0] == -4
        assert y[1, 1] == 0

    @given(blocks_4x4)
    def test_dct_is_linear_matrix_product(self, x):
        assert (dct_4x4(x) == CF4 @ x @ CF4.T).all()

    @given(blocks_4x4, blocks_4x4)
    def test_dct_linearity(self, a, b):
        assert (dct_4x4(a + b) == dct_4x4(a) + dct_4x4(b)).all()

    @given(pixels_4x4, pixels_4x4)
    def test_satd_non_negative_and_zero_iff_equal(self, a, b):
        s = satd_4x4(a, b)
        assert s >= 0
        assert satd_4x4(a, a) == 0

    @given(pixels_4x4, pixels_4x4)
    def test_satd_symmetric(self, a, b):
        assert satd_4x4(a, b) == satd_4x4(b, a)

    @given(pixels_4x4, pixels_4x4)
    def test_sad_matches_manual(self, a, b):
        assert sad_4x4(a, b) == int(np.abs(a - b).sum())

    def test_residual_shape_mismatch(self):
        with pytest.raises(ValueError):
            residual(np.zeros((4, 4)), np.zeros((2, 2)))

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            dct_4x4(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            hadamard_2x2(np.zeros((4, 4)))

    def test_dc_coefficients(self):
        grid = [[np.full((4, 4), i * 4 + j) for j in range(4)] for i in range(4)]
        dc = dc_coefficients(grid)
        assert dc[2, 3] == 11

    def test_dc_grid_must_be_square(self):
        with pytest.raises(ValueError):
            dc_coefficients([[np.zeros((4, 4))], [np.zeros((4, 4))] * 2])


class TestTransformAtom:
    @given(vec4_int16)
    def test_dct_mode_matches_matrix_rows(self, x):
        y = transform_atom(x, mode="DCT")
        assert (y == CF4 @ x).all()

    @given(vec4_int16)
    def test_ht_mode_matches_hadamard_rows(self, x):
        y = transform_atom(x, mode="HT")
        assert (y == H4 @ x).all()

    @given(vec4_int16)
    def test_ht_shift_halves(self, x):
        assert (
            transform_atom(x, mode="HT", ht_shift=True)
            == (H4 @ x) >> 1
        ).all()

    def test_dct_with_shift_rejected(self):
        with pytest.raises(ValueError):
            transform_atom([1, 2, 3, 4], mode="DCT", ht_shift=True)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            transform_atom([1, 2, 3, 4], mode="FFT")

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            transform_atom([1, 2, 3], mode="HT")


class TestOtherAtoms:
    @given(vec4_int16)
    def test_satd_atom_abs_sum(self, x):
        assert satd_atom(x) == int(np.abs(x).sum())

    @given(vec4_int16, vec4_int16)
    def test_quadsub(self, a, b):
        assert (quadsub_atom(a, b) == a - b).all()

    @given(vec4_int16, vec4_int16)
    def test_pack_unpack_roundtrip(self, lsb, msb):
        packed = pack_words(lsb, msb)
        lo, hi = unpack_words(packed)
        assert (lo == lsb).all()
        assert (hi == msb).all()

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_words([2**15, 0, 0, 0], [0, 0, 0, 0])

    @given(blocks_4x4.filter(lambda b: (np.abs(b) < 2**15).all()))
    def test_pack_atom_extracts_columns(self, block):
        rows = [block[i, :] for i in range(4)]
        for j in range(4):
            assert (pack_atom(rows, j) == block[:, j]).all()

    def test_pack_atom_validation(self):
        rows = [np.zeros(4, dtype=np.int64)] * 4
        with pytest.raises(ValueError):
            pack_atom(rows[:3], 0)
        with pytest.raises(ValueError):
            pack_atom(rows, 4)

    def test_load_add_store(self):
        mem = np.arange(8, dtype=np.int64)
        v = load_atom(mem, 2)
        assert (v == [2, 3, 4, 5]).all()
        w = add_atom(v, [1, 1, 1, 1])
        store_atom(mem, 0, w)
        assert (mem[:4] == [3, 4, 5, 6]).all()
        with pytest.raises(ValueError):
            load_atom(mem, 6)
        with pytest.raises(ValueError):
            store_atom(mem, 7, v)


class TestExecutionCounter:
    def test_counts_all_kinds(self):
        c = AtomExecutionCounter()
        c.transform([1, 2, 3, 4], mode="HT")
        c.satd([1, -2, 3, -4])
        c.quadsub([4, 4, 4, 4], [1, 1, 1, 1])
        c.pack([np.zeros(4, dtype=np.int64)] * 4, 0)
        mem = np.zeros(4, dtype=np.int64)
        c.load(mem, 0)
        c.add([1, 2, 3, 4], [1, 1, 1, 1])
        c.store(mem, 0, [9, 9, 9, 9])
        assert c.counts == {
            "Transform": 1,
            "SATD": 1,
            "QuadSub": 1,
            "Pack": 1,
            "Load": 1,
            "Add": 1,
            "Store": 1,
        }
        c.reset()
        assert c.counts == {}
