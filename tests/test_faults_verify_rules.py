"""rispp-verify rules for the fault lifecycle: TRC014/TRC015 and FEA005.

A chaos trace produced by the real injector must replay clean; hand
mutations of the fault/quarantine/repair events must trip the lifecycle
rule (TRC014), and work landing on a quarantined container must trip
TRC015.  The static prover's degraded-mode rule (FEA005) fires exactly
when ``containers - k`` can no longer hold the largest loadable
molecule of a forecast SI.
"""

import pytest

from repro.analysis import verify_runtime, verify_trace
from repro.analysis.feasibility import prove_feasibility
from repro.bench.suites import build_synthetic_library
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.runtime import RisppRuntime
from repro.sim import Event, EventKind


@pytest.fixture(scope="module")
def library():
    return build_synthetic_library()


def _chaos_runtime(library):
    """Deterministic full lifecycle: inject, detect, quarantine, repair."""
    injector = FaultInjector(
        FaultSchedule([FaultEvent(300_000, FaultKind.TRANSIENT, container=0)]),
        scrub_period=10_000,
    )
    rt = RisppRuntime(library, 5, core_mhz=100.0, faults=injector)
    rt.forecast("SI0", 0, expected=64.0)
    now = max(j.finish_at for j in rt.port.jobs) + 1
    for _ in range(8):
        now += rt.execute_si("SI0", now)
        now += 10_000
    rt.forecast_end("SI0", 500_000)
    rt.advance(2_000_000)
    injector.finalize(2_000_000)
    assert injector.stats.containers_repaired == 1
    return rt


@pytest.fixture(scope="module")
def chaos_runtime(library):
    return _chaos_runtime(library)


@pytest.fixture(scope="module")
def chaos_events(chaos_runtime):
    return [
        Event(e.cycle, e.kind, e.task, e.si, dict(e.detail))
        for e in chaos_runtime.trace.events
    ]


def _materialize(events):
    return [
        Event(e.cycle, e.kind, e.task, e.si, dict(e.detail)) for e in events
    ]


def _verify(rt, events):
    # No totals: mutations would otherwise also unbalance the TRC007
    # accounting cross-check and blur which rule the mutation trips.
    return verify_trace(
        events,
        rt.library,
        containers=len(rt.fabric),
        core_mhz=rt.port.core_mhz,
        bytes_per_us=rt.port.bytes_per_us,
        static_multiplicity=rt.fabric.static_multiplicity,
    )


def _index_of(events, kind):
    return next(i for i, e in enumerate(events) if e.kind is kind)


class TestCleanChaosTrace:
    def test_full_lifecycle_replays_clean(self, chaos_runtime):
        report = verify_runtime(chaos_runtime, subject="chaos-lifecycle")
        assert report.clean(), report.render_text()

    def test_lifecycle_events_present(self, chaos_events):
        kinds = {e.kind for e in chaos_events}
        assert EventKind.FAULT_INJECTED in kinds
        assert EventKind.FAULT_DETECTED in kinds
        assert EventKind.CONTAINER_QUARANTINED in kinds
        assert EventKind.CONTAINER_REPAIRED in kinds


class TestLifecycleCorruptions:
    def test_missing_repair_trips_trc014(self, chaos_runtime, chaos_events):
        events = [
            e
            for e in _materialize(chaos_events)
            if e.kind is not EventKind.CONTAINER_REPAIRED
        ]
        report = _verify(chaos_runtime, events)
        ids = {d.rule_id for d in report}
        assert "TRC014" in ids, report.render_text()
        dangling = [
            d for d in report.by_rule("TRC014") if "never repaired" in d.message
        ]
        assert dangling, report.render_text()

    def test_non_repair_rotation_into_quarantine_trips_trc015(
        self, chaos_runtime, chaos_events
    ):
        events = _materialize(chaos_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
            and e.detail.get("repair")
        )
        del events[idx].detail["repair"]
        report = _verify(chaos_runtime, events)
        assert "TRC015" in {d.rule_id for d in report}, report.render_text()

    def test_quarantine_without_detection_trips_trc014(
        self, chaos_runtime, chaos_events
    ):
        events = _materialize(chaos_events)
        idx = _index_of(events, EventKind.CONTAINER_QUARANTINED)
        # Redirect the quarantine at a healthy container: no detection
        # ever happened there.
        events[idx].detail["container"] = 4
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("without a preceding fault detection" in m for m in messages)

    def test_detection_without_corruption_trips_trc014(
        self, chaos_runtime, chaos_events
    ):
        events = _materialize(chaos_events)
        idx = _index_of(events, EventKind.FAULT_DETECTED)
        events[idx].detail["container"] = 1
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("no silent corruption is open" in m for m in messages)

    def test_wrong_claimed_atom_trips_trc014(
        self, chaos_runtime, chaos_events
    ):
        events = _materialize(chaos_events)
        idx = _index_of(events, EventKind.FAULT_INJECTED)
        events[idx].detail["atom"] = "Syn5"
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("claims atom" in m for m in messages)

    def test_unknown_effect_trips_trc014(self, chaos_runtime, chaos_events):
        events = _materialize(chaos_events)
        idx = _index_of(events, EventKind.FAULT_INJECTED)
        events[idx].detail["effect"] = "melted"
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("unknown effect" in m for m in messages)

    def test_malformed_retry_trips_trc014(self, chaos_runtime, chaos_events):
        events = _materialize(chaos_events)
        last = events[-1].cycle
        events.append(Event(
            last + 1,
            EventKind.ROTATION_RETRIED,
            "main",
            "",
            {"container": 0, "atom": "Syn0", "attempt": 0, "retry_at": last + 2},
        ))
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("malformed attempt" in m for m in messages)

    def test_retry_due_in_the_past_trips_trc014(
        self, chaos_runtime, chaos_events
    ):
        events = _materialize(chaos_events)
        last = events[-1].cycle
        events.append(Event(
            last + 10,
            EventKind.ROTATION_RETRIED,
            "main",
            "",
            {"container": 0, "atom": "Syn0", "attempt": 1, "retry_at": last},
        ))
        report = _verify(chaos_runtime, events)
        messages = [d.message for d in report.by_rule("TRC014")]
        assert any("strictly in the future" in m for m in messages)


class TestDegradedFeasibility:
    """FEA005: the largest molecule must survive k container failures."""

    def test_no_budget_no_rule(self, library):
        result = prove_feasibility(library, 5, subject="fea")
        assert not result.report.by_rule("FEA005")

    def test_sufficient_margin_is_silent(self, library):
        # The largest synthetic molecule needs 4 containers; 5 - 1 = 4
        # still holds it.
        result = prove_feasibility(
            library, 5, survivable_failures=1, subject="fea"
        )
        assert not result.report.by_rule("FEA005")

    def test_insufficient_margin_warns_per_si(self, library):
        # 5 - 2 = 3 containers cannot hold any SI's 4-atom molecule.
        result = prove_feasibility(
            library, 5, survivable_failures=2, subject="fea"
        )
        findings = result.report.by_rule("FEA005")
        assert len(findings) == 4  # every synthetic SI has a 4-atom peak
        assert all(d.severity.name == "WARNING" for d in findings)
        assert findings[0].context["degraded_containers"] == 3

    def test_forecast_restriction(self, library):
        class Point:
            si_name = "SI0"
            block_id = "b0"
            distance = 1e9

        result = prove_feasibility(
            library, 5, placements=[Point()], survivable_failures=2,
            subject="fea",
        )
        findings = result.report.by_rule("FEA005")
        assert [d.context["si"] for d in findings] == ["SI0"]

    def test_negative_budget_rejected(self, library):
        with pytest.raises(ValueError):
            prove_feasibility(library, 5, survivable_failures=-1)
