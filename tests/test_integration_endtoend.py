"""End-to-end integration: profile -> forecast insertion -> rotated execution.

The complete RISPP flow on real programs: the hotspot toy program and the
AES application, compiled (FC insertion) and executed on the run-time
manager with actual rotations.
"""

import pytest

from repro.apps.aes import (
    build_aes_library,
    build_aes_program,
    default_aes_fdfs,
    encrypt_block,
)
from repro.forecast import ForecastAnnotation, ForecastDecisionFunction
from repro.forecast.placement import ForecastPoint
from repro.runtime import RisppRuntime
from repro.sim import Jump, Program
from repro.sim.integration import compile_and_run, run_annotated_program
from repro.sim.ir import Branch


def hotspot_program(iterations: int = 200) -> Program:
    """warmup -> hot loop of SATD calls -> done (rotation-friendly shape)."""
    p = Program("init")
    p.block("init", cycles=100,
            action=lambda env: env.setdefault("i", 0),
            terminator=Jump("warmup"))
    # Warm-up long enough for the minimal-molecule rotations to land.
    p.block("warmup", cycles=600_000, terminator=Jump("loop"))

    def bump(env):
        env["i"] += 1

    p.block(
        "loop",
        cycles=40,
        si_calls={"HT": 1},
        action=bump,
        terminator=Branch(lambda env: env["i"] < iterations, "loop", "done"),
    )
    p.block("done", cycles=10)
    return p


def ht_fdf() -> ForecastDecisionFunction:
    return ForecastDecisionFunction(
        t_rot=200_000.0, t_sw=298.0, t_hw=8.0, rotation_energy=290.0
    )


class TestRunAnnotatedProgram:
    def test_manual_annotation_executes_in_hardware(self, mini_library):
        program = hotspot_program()
        annotation = ForecastAnnotation.from_points(
            [ForecastPoint("init", "HT", 1.0, 600_000.0, 200.0)]
        )
        runtime = RisppRuntime(mini_library, 6, core_mhz=100.0)
        result = run_annotated_program(program, annotation, runtime)
        assert result.forecasts_fired == 1
        assert result.si_executions == {"HT": 200}
        # The warm-up covers the rotations: the loop runs in hardware.
        assert runtime.stats.hw_executions == 200
        assert result.si_cycles < 200 * 298

    def test_unannotated_program_stays_in_software(self, mini_library):
        program = hotspot_program()
        runtime = RisppRuntime(mini_library, 6, core_mhz=100.0)
        result = run_annotated_program(
            program, ForecastAnnotation(), runtime
        )
        assert result.forecasts_fired == 0
        assert runtime.stats.sw_executions == 200
        assert result.si_cycles == 200 * 298

    def test_annotation_must_match_program(self, mini_library):
        program = hotspot_program()
        bad = ForecastAnnotation.from_points(
            [ForecastPoint("ghost", "HT", 1.0, 10.0, 5.0)]
        )
        runtime = RisppRuntime(mini_library, 6)
        with pytest.raises(ValueError):
            run_annotated_program(program, bad, runtime)

    def test_accounting_consistent(self, mini_library):
        program = hotspot_program()
        runtime = RisppRuntime(mini_library, 6)
        result = run_annotated_program(program, ForecastAnnotation(), runtime)
        assert result.total_cycles == result.core_cycles + result.si_cycles
        assert result.si_share() == pytest.approx(
            result.si_cycles / result.total_cycles
        )


class TestCompileAndRun:
    def test_hotspot_flow_beats_software(self, mini_library):
        program = hotspot_program()
        flow = compile_and_run(
            program,
            mini_library,
            {"HT": ht_fdf()},
            containers=6,
            profile_runs=2,
        )
        # The pipeline placed at least one forecast upstream of the loop.
        assert flow.annotation.all_points()
        assert flow.result.forecasts_fired >= 1
        # And the run benefited: mostly hardware executions.
        assert flow.runtime.stats.hw_fraction() > 0.9
        assert flow.result.si_cycles < 200 * 298 / 10

    def test_aes_flow_functional_and_accelerated(self):
        program = build_aes_program()
        library = build_aes_library()
        env = {"plaintext": b"\x21" * 16, "key": b"\x42" * 16}

        def env_factory(i):
            return {
                "plaintext": bytes([i] * 16),
                "key": bytes([255 - i] * 16),
            }

        flow = compile_and_run(
            program,
            library,
            default_aes_fdfs(),
            containers=6,
            profile_env_factory=env_factory,
            run_env=env,
        )
        # Functional: the annotated run still encrypts correctly.
        assert flow.result.env["ciphertext"] == encrypt_block(
            env["plaintext"], env["key"]
        )
        # The SI calls all happened.
        assert flow.result.si_executions == {
            "KEYEXP": 10,
            "SUBBYTES": 10,
            "MIXCOL": 9,
        }
        # Forecasts fired (the AES FDFs are scaled to program scope).
        assert flow.result.forecasts_fired >= 1

    def test_more_containers_never_slower(self, mini_library):
        program = hotspot_program()
        cycles = []
        for containers in (0, 2, 6):
            flow = compile_and_run(
                program,
                mini_library,
                {"HT": ht_fdf()},
                containers=containers,
                profile_runs=2,
            )
            cycles.append(flow.result.si_cycles)
        assert cycles == sorted(cycles, reverse=True)
