"""Reference/numpy backend equivalence: fuzzed, bit-for-bit.

The numpy backend is only a fast path — it must reproduce the reference
backend's ``SelectionResult``s *exactly* (same chosen implementations,
same float benefits, same tie-breaks, same ``considered`` counters), and
a runtime driven by either backend must emit identical traces.  These
properties are the contract the ``selection_backend`` bench stage and
the CI backend matrix enforce on fixed suites; here hypothesis hunts for
libraries and workloads where the two disagree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import trace_signature
from repro.bench.suites import run_si_stream
from repro.core import (
    AtomCatalogue,
    AtomKind,
    ForecastedSI,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    select_exhaustive,
    select_greedy,
    upgrade_path,
)

KINDS = ["A", "B", "C", "D"]


@st.composite
def random_library(draw, static_first_kind=False):
    kinds = []
    for k in KINDS:
        if static_first_kind and k == "A":
            kinds.append(AtomKind(k, reconfigurable=False))
        else:
            kinds.append(AtomKind(k, bitstream_bytes=50_000))
    catalogue = AtomCatalogue.of(kinds)
    space = catalogue.space
    sis = []
    for i in range(draw(st.integers(1, 3))):
        sw = draw(st.integers(50, 600))
        impls = []
        for _ in range(draw(st.integers(1, 4))):
            counts = {k: draw(st.integers(0, 3)) for k in KINDS}
            if not any(counts.values()):
                counts["A"] = 1
            cycles = draw(st.integers(1, max(2, sw - 1)))
            impls.append(MoleculeImpl(space.molecule(counts), cycles))
        sis.append(SpecialInstruction(f"SI{i}", space, sw, impls))
    return SILibrary(catalogue, sis)


@st.composite
def library_and_workload(draw, static_first_kind=False):
    library = draw(random_library(static_first_kind=static_first_kind))
    requests = [
        ForecastedSI(library.get(name), draw(st.floats(0.0, 100.0)))
        for name in library.names()
    ]
    budget = draw(st.integers(0, 10))
    return library, requests, budget


@st.composite
def loaded_molecule(draw, library):
    space = library.catalogue.space
    counts = {k: draw(st.integers(0, 2)) for k in KINDS}
    return space.molecule(counts)


@settings(max_examples=80, deadline=None)
@given(library_and_workload())
def test_greedy_backends_agree_exactly(bundle):
    library, requests, budget = bundle
    ref = select_greedy(library, requests, budget, backend="reference")
    fast = select_greedy(library, requests, budget, backend="numpy")
    # Full dataclass equality: chosen impls (identity through ==), float
    # benefit, demand molecule, containers and the considered counter.
    assert ref == fast


@settings(max_examples=60, deadline=None)
@given(library_and_workload())
def test_exhaustive_backends_agree_exactly(bundle):
    library, requests, budget = bundle
    ref = select_exhaustive(library, requests, budget, backend="reference")
    fast = select_exhaustive(library, requests, budget, backend="numpy")
    assert ref == fast


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_greedy_backends_agree_with_loaded_atoms(data):
    library, requests, budget = data.draw(library_and_workload())
    loaded = data.draw(loaded_molecule(library))
    ref = select_greedy(
        library, requests, budget, loaded=loaded, backend="reference"
    )
    fast = select_greedy(
        library, requests, budget, loaded=loaded, backend="numpy"
    )
    assert ref == fast


@settings(max_examples=40, deadline=None)
@given(library_and_workload(static_first_kind=True))
def test_backends_agree_with_static_kinds(bundle):
    # A non-reconfigurable kind exercises the rc-projection masking in
    # the vectorized candidate staging.
    library, requests, budget = bundle
    assert select_greedy(
        library, requests, budget, backend="reference"
    ) == select_greedy(library, requests, budget, backend="numpy")
    assert select_exhaustive(
        library, requests, budget, backend="reference"
    ) == select_exhaustive(library, requests, budget, backend="numpy")


@settings(max_examples=30, deadline=None)
@given(library_and_workload())
def test_upgrade_path_backends_agree(bundle):
    library, requests, budget = bundle
    ref = upgrade_path(library, requests, budget, backend="reference")
    fast = upgrade_path(library, requests, budget, backend="numpy")
    assert ref == fast


@settings(max_examples=30, deadline=None)
@given(library_and_workload())
def test_staging_cache_survives_weight_changes(bundle):
    # The numpy backend caches per-library candidate matrices keyed on
    # the request-name tuple; benefits depend on weights and must never
    # be cached.  Re-run the same library with scaled weights and check
    # the cached staging still matches the reference.
    library, requests, budget = bundle
    for scale in (1.0, 3.5, 0.0):
        scaled = [
            ForecastedSI(r.si, r.expected_executions * scale)
            for r in requests
        ]
        assert select_greedy(
            library, scaled, budget, backend="reference"
        ) == select_greedy(library, scaled, budget, backend="numpy")


class TestRuntimeTraceEquality:
    """A runtime on the numpy backend emits the reference trace, byte for byte."""

    def run(self, mini_library, backend):
        forecasts = [("SATD", 40.0), ("HT", 12.0)]
        blocks = [("SATD", 5), ("HT", 3)]
        # The long inter-block gaps let the requested rotations land, so
        # later rounds really execute in hardware (Fig. 6's SW->HW ramp).
        return run_si_stream(
            mini_library, forecasts, blocks,
            containers=4, block_rounds=3, inter_block_cycles=200_000,
            optimize=True, backend=backend,
        )

    def test_traces_identical(self, mini_library):
        ref = self.run(mini_library, "reference")
        fast = self.run(mini_library, "numpy")
        assert trace_signature(ref.trace) == trace_signature(fast.trace)
        # Sanity: the scenario actually upgraded SIs to hardware, so the
        # equality above compares selections that did real work.
        from repro.sim import EventKind

        assert any(
            e.kind is EventKind.SI_EXECUTED and e.detail.get("mode") == "HW"
            for e in ref.trace
        )

    def test_backend_default_matches_explicit(self, mini_library, monkeypatch):
        from repro.core import backend as backend_mod

        monkeypatch.setattr(backend_mod, "_default_spec", None)
        monkeypatch.setenv(backend_mod.DEFAULT_BACKEND_ENV, "numpy")
        via_env = self.run(mini_library, None)
        explicit = self.run(mini_library, "numpy")
        assert trace_signature(via_env.trace) == trace_signature(explicit.trace)
