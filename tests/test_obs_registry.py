"""repro.obs core: the catalogue contract, instruments, the NULL path."""

import math

import pytest

from repro.obs import (
    CYCLE_BUCKETS,
    DISABLED,
    METRICS,
    NULL,
    MetricRegistry,
)
from repro.obs.catalogue import COUNTER, GAUGE, HISTOGRAM, spec_of


class TestCatalogue:
    def test_names_follow_prometheus_conventions(self):
        for spec in METRICS.values():
            assert spec.full_name == f"rispp_{spec.name}"
            if spec.type == COUNTER:
                assert spec.name.endswith("_total"), spec.name
            else:
                assert not spec.name.endswith("_total"), spec.name

    def test_buckets_iff_histogram(self):
        for spec in METRICS.values():
            assert (spec.buckets is not None) == (spec.type == HISTOGRAM)

    def test_every_spec_names_source_and_paper(self):
        for spec in METRICS.values():
            assert spec.source.startswith("src/repro/")
            assert spec.paper
            assert spec.unit
            assert spec.help

    def test_label_values_cover_declared_labels(self):
        for spec in METRICS.values():
            for label in spec.label_values:
                assert label in spec.labels

    def test_cycle_buckets_are_increasing_powers_of_four(self):
        assert list(CYCLE_BUCKETS) == sorted(CYCLE_BUCKETS)
        assert CYCLE_BUCKETS[0] == 1.0
        assert CYCLE_BUCKETS[-1] == 4.0**10

    def test_spec_of_rejects_undeclared_names(self):
        with pytest.raises(ValueError, match="unknown metric"):
            spec_of("made_up_series_total")


class TestRegistry:
    def test_undeclared_metric_is_refused(self):
        with pytest.raises(ValueError, match="unknown metric"):
            MetricRegistry().counter("made_up_series_total")

    def test_type_mismatch_is_refused(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="declared as a gauge"):
            reg.counter("port_queue_depth")
        with pytest.raises(ValueError, match="declared as a counter"):
            reg.histogram("si_executions_total")

    def test_same_name_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("mode_switches_total") is reg.counter(
            "mode_switches_total"
        )

    def test_instruments_come_back_in_catalogue_order(self):
        reg = MetricRegistry()
        reg.gauge("quarantine_depth")
        reg.counter("si_executions_total")
        names = [m.spec.name for m in reg.instruments()]
        assert names == ["si_executions_total", "quarantine_depth"]

    def test_disabled_registry_hands_out_null(self):
        reg = MetricRegistry(enabled=False)
        assert reg.counter("si_executions_total") is NULL
        assert reg.gauge("port_queue_depth") is NULL
        assert reg.histogram("si_latency_cycles") is NULL
        assert DISABLED.counter("mode_switches_total") is NULL


class TestLabels:
    def test_declared_children_are_preregistered(self):
        family = MetricRegistry().counter("si_executions_total")
        keys = [key for key, _ in family.children()]
        assert keys == [("hw",), ("sw",)]
        assert all(child.current() == 0 for _, child in family.children())

    def test_wrong_label_names_raise(self):
        family = MetricRegistry().counter("si_executions_total")
        with pytest.raises(ValueError, match="declares labels"):
            family.labels(kind="hw")

    def test_unbound_parent_refuses_samples(self):
        family = MetricRegistry().counter("si_executions_total")
        with pytest.raises(ValueError, match="bind a child"):
            family.inc()

    def test_child_refuses_further_labels(self):
        child = MetricRegistry().counter("si_executions_total").labels(
            mode="hw"
        )
        with pytest.raises(ValueError, match="already-bound"):
            child.labels(mode="sw")

    def test_child_is_cached(self):
        family = MetricRegistry().counter("replans_total")
        assert family.labels(outcome="planned") is family.labels(
            outcome="planned"
        )


class TestInstruments:
    def test_counter_counts_and_rejects_negatives(self):
        c = MetricRegistry().counter("mode_switches_total")
        c.inc()
        c.inc(2.0)
        assert c.current() == 3.0
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_counter_callback_wins_over_value(self):
        c = MetricRegistry().counter("container_churn_total")
        c.set_callback(lambda: 17.0)
        assert c.current() == 17.0

    def test_gauge_moves_both_ways(self):
        g = MetricRegistry().gauge("port_queue_depth")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.current() == 3.0

    def test_gauge_callback_resolves_at_collection(self):
        state = {"v": 0.0}
        g = MetricRegistry().gauge("fabric_utilisation_ratio")
        g.set_callback(lambda: state["v"])
        state["v"] = 0.75
        assert g.current() == 0.75

    def test_histogram_buckets_by_bisect_left(self):
        h = MetricRegistry().histogram("si_latency_cycles")
        h.observe(1.0)   # exactly the first bound
        h.observe(5.0)   # between 4 and 16
        h.observe(1e9)   # beyond the ladder: +Inf overflow
        assert h.count == 3
        assert h.sum == pytest.approx(1.0 + 5.0 + 1e9)
        cumulative = dict(h.cumulative())
        assert cumulative[1.0] == 1
        assert cumulative[4.0] == 1
        assert cumulative[16.0] == 2
        assert cumulative[math.inf] == 3

    def test_histogram_cumulative_is_monotone(self):
        h = MetricRegistry().histogram("rotation_latency_cycles")
        for v in (3, 3000, 300000, 10**8):
            h.observe(v)
        counts = [c for _, c in h.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == h.count

    def test_span_timer_records_seconds(self):
        h = MetricRegistry().histogram("replan_duration_seconds")
        with h.time():
            pass
        assert h.count == 1
        assert h.sum >= 0


class TestNull:
    def test_null_swallows_everything(self):
        assert NULL.enabled is False
        assert NULL.labels(mode="hw") is NULL
        NULL.inc()
        NULL.dec()
        NULL.set(3.0)
        NULL.observe(42.0)
        with NULL.time():
            pass
