"""Tests for the H.264 SIs, the Table 2 catalogue, and the Fig. 7 encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264 import (
    AtomExecutionCounter,
    EncoderPipeline,
    REFERENCE_CONFIGS,
    SOFTWARE_CYCLES,
    TABLE2,
    available_atoms_for_config,
    build_h264_catalogue,
    build_h264_library,
    build_macroblock,
    dct_4x4,
    hadamard_2x2,
    hadamard_4x4,
    macroblock_cycles,
    macroblock_stream,
    satd_4x4,
    si_cycles_for_config,
    si_dct_4x4,
    si_ht_2x2,
    si_ht_4x4,
    si_sad_4x4,
    si_satd_4x4,
    synthetic_frame,
)

blocks_4x4 = arrays(np.int64, (4, 4), elements=st.integers(-255, 255))
pixels_4x4 = arrays(np.int64, (4, 4), elements=st.integers(0, 255))


class TestFunctionalSIs:
    @given(blocks_4x4)
    @settings(max_examples=30)
    def test_dct_si_bit_exact(self, x):
        assert (si_dct_4x4(x) == dct_4x4(x)).all()

    @given(blocks_4x4)
    @settings(max_examples=30)
    def test_ht_si_bit_exact(self, x):
        assert (si_ht_4x4(x) == hadamard_4x4(x)).all()

    @given(pixels_4x4, pixels_4x4)
    @settings(max_examples=30)
    def test_satd_si_bit_exact(self, a, b):
        assert si_satd_4x4(a, b) == satd_4x4(a, b)

    @given(pixels_4x4, pixels_4x4)
    @settings(max_examples=30)
    def test_sad_si_bit_exact(self, a, b):
        assert si_sad_4x4(a, b) == int(np.abs(a - b).sum())

    def test_ht_2x2_bit_exact(self):
        x = np.array([[10, -3], [7, 2]])
        assert (si_ht_2x2(x) == hadamard_2x2(x)).all()

    def test_ht_4x4_atom_requirements(self):
        # "each HT_4x4 requires 4 Transform- and 4 Pack-executions" (§3).
        c = AtomExecutionCounter()
        si_ht_4x4(np.zeros((4, 4), dtype=np.int64), c)
        assert c.counts == {"Transform": 4, "Pack": 4}

    def test_satd_atom_requirements(self):
        # Fig. 8: QuadSub -> Transform -> Pack -> Transform -> SATD.
        c = AtomExecutionCounter()
        si_satd_4x4(
            np.zeros((4, 4), dtype=np.int64), np.zeros((4, 4), dtype=np.int64), c
        )
        assert c.counts == {"QuadSub": 4, "Transform": 4, "Pack": 4, "SATD": 4}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            si_dct_4x4(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            si_ht_2x2(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            si_satd_4x4(np.zeros((4, 4)), np.zeros((2, 2)))


class TestCatalogue:
    def test_atom_kinds(self):
        cat = build_h264_catalogue()
        assert set(k.name for k in cat) == {
            "Load",
            "QuadSub",
            "Pack",
            "Transform",
            "SATD",
            "Add",
            "Store",
        }
        assert cat.get("Load").baseline == 1
        assert not cat.get("Add").reconfigurable
        assert cat.get("Transform").bitstream_bytes == 59_353

    def test_table2_column_counts(self):
        # 1 HT_2x2 + 6 HT_4x4 + 8 DCT_4x4 + 15 SATD_4x4 = 30 molecules.
        assert sum(len(v) for v in TABLE2.values()) == 30

    def test_table2_cycles_row_verbatim(self):
        assert [c for _, c in TABLE2["HT_2x2"]] == [5]
        assert [c for _, c in TABLE2["HT_4x4"]] == [22, 17, 17, 12, 11, 8]
        assert [c for _, c in TABLE2["DCT_4x4"]] == [24, 23, 19, 15, 18, 12, 12, 9]
        assert [c for _, c in TABLE2["SATD_4x4"]] == [
            24, 22, 22, 20, 18, 18, 17, 15, 14, 15, 14, 14, 13, 13, 12,
        ]

    def test_load_and_transform_rows_verbatim(self):
        # The two Table 2 rows that survived OCR intact.
        ht = TABLE2["HT_4x4"]
        assert [m[0][0] for m in ht] == [1, 1, 2, 2, 4, 4]
        assert [m[0][3] for m in ht] == [1, 2, 1, 2, 2, 4]
        dct = TABLE2["DCT_4x4"]
        assert [m[0][0] for m in dct] == [1, 1, 2, 2, 4, 4, 4, 4]
        assert [m[0][3] for m in dct] == [1, 2, 1, 2, 1, 2, 2, 4]
        satd = TABLE2["SATD_4x4"]
        assert [m[0][0] for m in satd] == [1, 1, 1, 2, 2, 2] + [4] * 9

    def test_largest_satd_molecule_is_18_atoms(self):
        # Fig. 13's x-axis tops out at 18 RISPP resources.
        lib = build_h264_library()
        satd = lib.get("SATD_4x4")
        assert max(abs(m) for m in satd.molecules()) == 18

    def test_monotone_more_atoms_never_slower(self):
        # Within one SI, a molecule dominating another must not be slower.
        lib = build_h264_library()
        for si in lib:
            for a in si.implementations:
                for b in si.implementations:
                    if a.molecule <= b.molecule:
                        assert b.cycles <= a.cycles

    def test_sad_extension_optional(self):
        assert "SAD_4x4" not in build_h264_library()
        lib = build_h264_library(include_sad=True)
        assert "SAD_4x4" in lib
        sad = lib.get("SAD_4x4")
        used = set()
        for m in sad.molecules():
            used.update(m.kinds_used())
        assert used == {"Load", "QuadSub", "SATD"}

    def test_atom_sharing_across_sis(self):
        # Fig. 2: Transform serves all four transform SIs.
        lib = build_h264_library()
        shared = lib.shared_atom_kinds()
        assert set(shared["Transform"]) == {
            "HT_2x2",
            "HT_4x4",
            "DCT_4x4",
            "SATD_4x4",
        }

    def test_speedup_over_22x(self):
        # §6: SIs are "more than 22 times faster" than optimised software.
        lib = build_h264_library()
        assert lib.get("SATD_4x4").max_expected_speedup() > 22
        assert lib.get("DCT_4x4").max_expected_speedup() > 22


class TestFig11Configs:
    @pytest.mark.parametrize(
        "config,expected",
        [
            ("Opt. SW", {"SATD_4x4": 544, "DCT_4x4": 488, "HT_4x4": 298}),
            ("4 Atoms", {"SATD_4x4": 24, "DCT_4x4": 24, "HT_4x4": 22}),
            ("5 Atoms", {"SATD_4x4": 20, "DCT_4x4": 19, "HT_4x4": 22}),
            ("6 Atoms", {"SATD_4x4": 18, "DCT_4x4": 15, "HT_4x4": 17}),
        ],
    )
    def test_fig11_points_exact(self, config, expected):
        lib = build_h264_library()
        for si_name, cycles in expected.items():
            assert si_cycles_for_config(lib, si_name, config) == cycles

    def test_config_atom_budgets(self):
        # "N Atoms" loads exactly N atoms into containers.
        for name, counts in REFERENCE_CONFIGS.items():
            loaded = sum(counts.values())
            if name != "Opt. SW":
                assert loaded == int(name.split()[0])

    def test_unknown_config_rejected(self):
        lib = build_h264_library()
        with pytest.raises(ValueError):
            available_atoms_for_config(lib, "7 Atoms")


class TestEncoderPipeline:
    @pytest.fixture(scope="class")
    def encoded(self):
        mbs = macroblock_stream(1, seed=3)
        pipe = EncoderPipeline(count_atoms=True)
        return pipe, pipe.encode_macroblock(mbs[0])

    def test_si_counts_match_fig7(self, encoded):
        _, out = encoded
        assert out.si_counts == {
            "SATD_4x4": 256,
            "DCT_4x4": 24,
            "HT_4x4": 1,
            "HT_2x2": 2,
        }

    def test_luma_only_counts(self):
        pipe = EncoderPipeline(include_chroma=False)
        assert pipe.si_invocations_per_macroblock() == {
            "SATD_4x4": 256,
            "DCT_4x4": 16,
            "HT_4x4": 1,
        }

    def test_best_candidates_minimise_satd(self, encoded):
        pipe, out = encoded
        mbs = macroblock_stream(1, seed=3)
        mb = mbs[0]
        from repro.apps.h264.blocks import split_into_4x4

        grid = split_into_4x4(mb.luma)
        for sub in range(16):
            sy, sx = divmod(sub, 4)
            satds = [satd_4x4(grid[sy][sx], c) for c in mb.candidates[sub]]
            assert out.best_satd[sub] == min(satds)
            assert satds[out.best_candidate_index[sub]] == min(satds)

    def test_coefficients_are_dct_of_best_residual(self, encoded):
        _, out = encoded
        mbs = macroblock_stream(1, seed=3)
        mb = mbs[0]
        from repro.apps.h264.blocks import split_into_4x4

        grid = split_into_4x4(mb.luma)
        sy, sx = 0, 0
        best = mb.candidates[0][out.best_candidate_index[0]]
        assert (out.luma_coefficients[0][0] == dct_4x4(grid[0][0] - best)).all()

    def test_dc_block_is_ht_of_dcs(self, encoded):
        _, out = encoded
        from repro.apps.h264.transforms import dc_coefficients

        dc = dc_coefficients(out.luma_coefficients)
        assert (out.dc_block == hadamard_4x4(dc)).all()

    def test_intra_injection_threshold(self):
        mbs = macroblock_stream(1, seed=3)
        eager = EncoderPipeline(intra_threshold=0)
        assert eager.encode_macroblock(mbs[0]).intra_injected

    def test_atom_counter_accumulates(self, encoded):
        pipe, _ = encoded
        # 260 SATD/DCT-ish SIs each run 4 Transform+: counter must be busy.
        assert pipe.atom_counter.counts["Transform"] > 1000
        assert pipe.atom_counter.counts["QuadSub"] == 4 * 256


class TestCycleModel:
    def test_software_calibration_exact(self):
        # 256*544 + 16*488 + 298 + 53_695 == 201_065 (the paper's Opt. SW).
        total = macroblock_cycles(SOFTWARE_CYCLES)
        assert total == 201_065

    def test_fig12_shape(self):
        lib = build_h264_library()
        totals = {}
        for config in ("Opt. SW", "4 Atoms", "5 Atoms", "6 Atoms"):
            cyc = {
                n: si_cycles_for_config(lib, n, config)
                for n in ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")
            }
            totals[config] = macroblock_cycles(cyc)
        # >3x speed-up SW -> 4 Atoms ("more than 300% faster", §6) ...
        assert totals["Opt. SW"] / totals["4 Atoms"] > 3.0
        # ... then Amdahl-limited marginal gains.
        assert totals["4 Atoms"] > totals["5 Atoms"] > totals["6 Atoms"]
        assert (totals["4 Atoms"] - totals["6 Atoms"]) / totals["4 Atoms"] < 0.05

    def test_fig12_values_close_to_paper(self):
        lib = build_h264_library()
        paper = {
            "Opt. SW": 201_065,
            "4 Atoms": 60_244,
            "5 Atoms": 59_135,
            "6 Atoms": 58_287,
        }
        for config, expected in paper.items():
            cyc = {
                n: si_cycles_for_config(lib, n, config)
                for n in ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")
            }
            measured = macroblock_cycles(cyc)
            assert abs(measured - expected) / expected < 0.005

    def test_missing_si_latency_rejected(self):
        with pytest.raises(ValueError):
            macroblock_cycles({"SATD_4x4": 24})

    def test_macroblocks_scale_linearly(self):
        one = macroblock_cycles(SOFTWARE_CYCLES)
        ten = macroblock_cycles(SOFTWARE_CYCLES, macroblocks=10)
        assert ten == 10 * one


class TestWorkload:
    def test_frames_are_valid_pixels(self):
        f = synthetic_frame(48, 64, seed=2)
        assert f.shape == (48, 64)
        assert f.min() >= 0 and f.max() <= 255

    def test_motion_makes_reference_predictive(self):
        # The best candidate from the shifted reference must beat a flat
        # 128 prediction on average (the motion search finds real matches).
        ref = synthetic_frame(64, 64, seed=5, shift=0)
        cur = synthetic_frame(64, 64, seed=6, shift=1)
        mb = build_macroblock(cur, ref, 16, 16)
        from repro.apps.h264.blocks import split_into_4x4

        grid = split_into_4x4(mb.luma)
        flat = np.full((4, 4), 128, dtype=np.int64)
        best = [
            min(satd_4x4(grid[s // 4][s % 4], c) for c in mb.candidates[s])
            for s in range(16)
        ]
        flat_cost = [satd_4x4(grid[s // 4][s % 4], flat) for s in range(16)]
        assert sum(best) < sum(flat_cost)

    def test_stream_length(self):
        assert len(macroblock_stream(5, seed=0)) == 5
        with pytest.raises(ValueError):
            macroblock_stream(0)

    def test_macroblock_validation(self):
        ref = synthetic_frame(48, 48)
        with pytest.raises(ValueError):
            build_macroblock(ref, ref, 40, 40)  # chroma out of bounds
