"""Tests for rispp-lint: the diagnostic framework and all checker families.

Two halves: the shipped artifacts must lint clean (zero ERRORs), and a
seeded mutation of each invariant must trigger exactly its rule ID.
"""

import json

import pytest

from repro.analysis import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    LintError,
    RotationLog,
    Severity,
    checkers,
    lint_builtin,
    lint_cfg,
    lint_forecast,
    lint_library,
    lint_rotations,
    lint_schedule,
    rules_of_family,
)
from repro.cfg import ControlFlowGraph
from repro.core import (
    AtomCatalogue,
    AtomKind,
    AtomOp,
    Dataflow,
    MoleculeImpl,
    Schedule,
    ScheduledOp,
    SpecialInstruction,
    list_schedule,
)
from repro.forecast import ForecastDecisionFunction
from repro.forecast.placement import ForecastPoint
from repro.hardware.reconfig import RotationJob


def ids_of(report: DiagnosticReport) -> set[str]:
    return set(report.rule_ids())


def error_ids(report: DiagnosticReport) -> set[str]:
    return {d.rule_id for d in report.errors()}


# ---------------------------------------------------------------------------
# Framework primitives
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_severity_orders_and_parses(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(Severity.WARNING) is Severity.WARNING
        assert Severity.parse(int(Severity.INFO)) is Severity.INFO

    def test_render_contains_rule_and_location(self):
        d = Diagnostic("LIB001", Severity.ERROR, "boom", subject="lib", location="SI X")
        assert "LIB001" in d.render()
        assert "lib SI X" in d.render()

    def test_report_aggregation(self):
        report = DiagnosticReport()
        assert report.clean() and report.ok() and report.exit_code() == 0
        report.append(Diagnostic("LIB003", Severity.WARNING, "w"))
        assert report.ok() and report.exit_code() == 0 and not report.clean()
        report.append(Diagnostic("LIB001", Severity.ERROR, "e"))
        assert not report.ok()
        assert report.exit_code() == 1
        assert report.max_severity() is Severity.ERROR
        assert report.rule_ids() == ["LIB003", "LIB001"]
        assert len(report.by_rule("LIB001")) == 1

    def test_raise_on_error_is_a_value_error(self):
        report = DiagnosticReport([Diagnostic("CFG001", Severity.ERROR, "no entry")])
        with pytest.raises(ValueError) as exc:
            report.raise_on_error()
        assert isinstance(exc.value, LintError)
        assert "CFG001" in str(exc.value)
        assert exc.value.report is report

    def test_json_round_trip(self):
        report = DiagnosticReport(
            [
                Diagnostic("LAT001", Severity.ERROR, "a", subject="s",
                           location="l", context={"pair": ["x", "y"]}),
                Diagnostic("LIB008", Severity.WARNING, "b"),
            ]
        )
        payload = json.loads(report.to_json())
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["exit_code"] == 1
        back = DiagnosticReport.from_json(report.to_json())
        assert back.diagnostics == report.diagnostics

    def test_render_text_has_summary_tail(self):
        empty = DiagnosticReport()
        assert "all checks passed" in empty.render_text()
        report = DiagnosticReport([Diagnostic("SCH001", Severity.ERROR, "x")])
        assert "1 error(s)" in report.render_text()


class TestRuleCatalogue:
    def test_every_rule_has_family_and_severity(self):
        families = {
            "lattice", "library", "cfg", "forecast", "schedule",
            "trace", "feasibility", "explore", "audit", "events",
        }
        for rule in RULES.values():
            assert rule.family in families
            assert rule.severity in (Severity.INFO, Severity.WARNING, Severity.ERROR)
            assert rule.title

    def test_all_four_checker_families_are_registered(self):
        assert {c.family for c in checkers()} >= {
            "lattice", "library", "cfg", "forecast", "schedule",
        }
        assert rules_of_family("lattice")


# ---------------------------------------------------------------------------
# Clean artifacts produce zero ERRORs
# ---------------------------------------------------------------------------


class TestCleanArtifacts:
    def test_mini_library_has_no_errors(self, mini_library):
        report = lint_library(mini_library, containers=6)
        assert report.ok(), report.render_text()

    def test_hotspot_cfg_is_well_formed(self, hotspot_cfg):
        report = lint_cfg(hotspot_cfg)
        assert report.ok(), report.render_text()
        assert not report.by_rule("CFG007")  # trace-derived profile conserves flow

    def test_pipeline_forecast_lints_clean(self, hotspot_cfg, mini_library):
        from repro.forecast import run_forecast_pipeline

        fdfs = {
            "SATD": ForecastDecisionFunction(
                t_rot=50.0, t_sw=544.0, t_hw=24.0, rotation_energy=100.0
            ),
            "HT": ForecastDecisionFunction(
                t_rot=50.0, t_sw=298.0, t_hw=8.0, rotation_energy=100.0
            ),
        }
        annotation = run_forecast_pipeline(hotspot_cfg, mini_library, fdfs, 6)
        report = lint_forecast(
            hotspot_cfg, annotation, library=mini_library, fdfs=fdfs
        )
        assert report.ok(), report.render_text()

    def test_list_scheduler_output_lints_clean(self, mini_library):
        from repro.core import layered_dataflow

        dataflow = layered_dataflow([("Pack", 4, 1), ("Transform", 4, 2)])
        molecule = mini_library.space.molecule({"Pack": 2, "Transform": 2})
        schedule = list_schedule(dataflow, molecule)
        report = lint_schedule(dataflow, molecule, schedule)
        assert report.clean(), report.render_text()

    def test_builtin_subjects_exit_zero(self):
        report = lint_builtin()
        assert report.exit_code() == 0, report.render_text()

    def test_builtin_rejects_unknown_subject(self):
        with pytest.raises(ValueError, match="unknown lint subject"):
            lint_builtin(["mpeg"])


# ---------------------------------------------------------------------------
# Seeded violations: each mutation triggers exactly its rule
# ---------------------------------------------------------------------------


def foreign_space():
    return AtomCatalogue.of([AtomKind("Alien"), AtomKind("Weird")]).space


class TestLatticeViolations:
    def test_foreign_space_molecule_is_lat004(self, mini_library):
        si = mini_library.get("HT")
        si.implementations = (
            *si.implementations,
            MoleculeImpl(foreign_space().molecule({"Alien": 1}), 5),
        )
        report = lint_library(mini_library)
        assert "LAT004" in error_ids(report)
        assert report.exit_code() == 1

    def test_broken_rep_override_is_lat003(self, mini_catalogue):
        space = mini_catalogue.space

        class BrokenRep(SpecialInstruction):
            def rep(self):
                return self.space.molecule({"Pack": 99, "Transform": 99})

        si = BrokenRep(
            "BROKEN", space, 100,
            [MoleculeImpl(space.molecule({"Pack": 1}), 10)],
        )
        from repro.core import SILibrary

        report = lint_library(SILibrary(mini_catalogue, [si]))
        assert "LAT003" in error_ids(report)


class TestLibraryViolations:
    def test_zero_software_cycles_is_lib001(self, mini_library):
        mini_library.get("HT").software_cycles = 0
        report = lint_library(mini_library)
        assert "LIB001" in error_ids(report)

    def test_foreign_si_space_is_lib002(self, mini_library):
        mini_library.get("SATD").space = foreign_space()
        report = lint_library(mini_library)
        assert "LIB002" in error_ids(report)

    def test_no_hardware_molecules_is_lib007(self, mini_library):
        mini_library.get("HT").implementations = ()
        report = lint_library(mini_library)
        assert "LIB007" in error_ids(report)

    def test_undersized_platform_is_lib004(self, mini_library):
        # The smallest HT molecule needs 2 reconfigurable atoms (Pack +
        # Transform); on a 1-container platform it can never leave SW.
        report = lint_library(mini_library, containers=1)
        assert "LIB004" in error_ids(report)

    def test_dominated_molecule_is_lib003_warning(self, mini_library):
        si = mini_library.get("HT")
        dominated = MoleculeImpl(si.implementations[1].molecule, 30)
        si.implementations = (*si.implementations, dominated)
        report = lint_library(mini_library)
        assert "LIB003" in ids_of(report)
        assert report.ok()  # dead weight, not an invariant violation

    def test_capacity_rules_skipped_without_containers(self, mini_library):
        report = lint_library(mini_library)  # no containers in context
        assert not report.by_rule("LIB004")
        assert not report.by_rule("LIB005")


class TestCfgViolations:
    def test_negative_edge_count_is_cfg006(self, hotspot_cfg):
        hotspot_cfg.edge("loopA", "loopA").count = -5
        report = lint_cfg(hotspot_cfg)
        assert "CFG006" in error_ids(report)

    def test_missing_entry_is_cfg001(self):
        cfg = ControlFlowGraph("ghost")
        cfg.block("a")
        cfg.entry = "ghost"  # add_block never saw a None entry
        report = lint_cfg(cfg)
        assert "CFG001" in error_ids(report)

    def test_broken_probability_override_is_cfg002(self, hotspot_cfg):
        class HalfTrue(ControlFlowGraph):
            def edge_probability(self, src, dst):
                return 0.4

        broken = HalfTrue()
        for block in hotspot_cfg.blocks():
            broken.add_block(block)
        for edge in hotspot_cfg.edges():
            broken.add_edge(edge.src, edge.dst, edge.count)
        report = lint_cfg(broken)
        assert "CFG002" in error_ids(report)

    def test_unreachable_block_is_cfg004_warning(self, hotspot_cfg):
        hotspot_cfg.block("orphan", cycles=5)
        report = lint_cfg(hotspot_cfg)
        assert "CFG004" in ids_of(report)
        assert report.ok()

    def test_edited_profile_breaks_flow_conservation(self, hotspot_cfg):
        hotspot_cfg.get("loopA").exec_count = 170  # edges still say 100
        report = lint_cfg(hotspot_cfg)
        assert "CFG007" in ids_of(report)


class TestForecastViolations:
    def fdfs(self, rotation_energy=100.0):
        return {
            "SATD": ForecastDecisionFunction(
                t_rot=50.0, t_sw=544.0, t_hw=24.0, rotation_energy=rotation_energy
            )
        }

    def test_unknown_block_is_fc001(self, hotspot_cfg):
        point = ForecastPoint("ghost", "SATD", 1.0, 10.0, 100.0)
        report = lint_forecast(hotspot_cfg, [point])
        assert "FC001" in error_ids(report)

    def test_unknown_si_is_fc002(self, hotspot_cfg, mini_library):
        point = ForecastPoint("init", "NOPE", 1.0, 10.0, 100.0)
        report = lint_forecast(hotspot_cfg, [point], library=mini_library)
        assert "FC002" in error_ids(report)

    def test_unreachable_use_is_fc003(self, hotspot_cfg):
        # HT runs only in loopB; "end" is after it on every path.
        point = ForecastPoint("end", "HT", 1.0, 10.0, 50.0)
        report = lint_forecast(hotspot_cfg, [point])
        assert "FC003" in error_ids(report)

    def test_out_of_range_probability_is_fc004(self, hotspot_cfg):
        point = ForecastPoint("init", "SATD", 1.5, 10.0, 100.0)
        report = lint_forecast(hotspot_cfg, [point])
        assert "FC004" in error_ids(report)

    def test_below_break_even_offset_is_fc005(self, hotspot_cfg):
        fdfs = self.fdfs(rotation_energy=1e6)  # offset >> 1 execution
        point = ForecastPoint("init", "SATD", 1.0, 120.0, 1.0)
        report = lint_forecast(hotspot_cfg, [point], fdfs=fdfs)
        assert "FC005" in error_ids(report)
        assert fdfs["SATD"].offset > 1.0

    def test_duplicate_pair_is_fc007(self, hotspot_cfg):
        point = ForecastPoint("init", "SATD", 1.0, 120.0, 100.0)
        report = lint_forecast(hotspot_cfg, [point, point])
        assert "FC007" in error_ids(report)

    def test_non_dominating_forecast_is_fc006_warning(self, mini_library):
        # diamond: entry -> (left | right) -> use; "left" does not
        # dominate the use block, so its forecast may be skipped.
        cfg = ControlFlowGraph()
        cfg.block("entry")
        cfg.block("left")
        cfg.block("right")
        cfg.block("use", si_usages={"SATD": 1})
        cfg.add_edge("entry", "left", count=1)
        cfg.add_edge("entry", "right", count=1)
        cfg.add_edge("left", "use", count=1)
        cfg.add_edge("right", "use", count=1)
        point = ForecastPoint("left", "SATD", 0.5, 1.0, 10.0)
        report = lint_forecast(cfg, [point], library=mini_library)
        assert "FC006" in ids_of(report)
        assert report.ok()


class TestScheduleViolations:
    def two_op_dataflow(self):
        return Dataflow(
            [
                AtomOp("a", "Pack", (), 2),
                AtomOp("b", "Pack", ("a",), 2),
            ]
        )

    def molecule(self, mini_library, counts):
        return mini_library.space.molecule(counts)

    def test_instance_overlap_is_sch001(self, mini_library):
        dataflow = Dataflow([AtomOp("a", "Pack", (), 2), AtomOp("b", "Pack", (), 2)])
        molecule = self.molecule(mini_library, {"Pack": 1})
        schedule = Schedule(
            makespan=2,
            placements=[
                ScheduledOp("a", "Pack", 0, 0, 2),
                ScheduledOp("b", "Pack", 0, 1, 3),
            ],
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert "SCH001" in error_ids(report)

    def test_nonexistent_instance_is_sch002(self, mini_library):
        dataflow = Dataflow([AtomOp("a", "Pack", (), 2)])
        molecule = self.molecule(mini_library, {"Pack": 1})
        schedule = Schedule(
            makespan=2, placements=[ScheduledOp("a", "Pack", 3, 0, 2)]
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert "SCH002" in error_ids(report)

    def test_dependency_violation_is_sch003(self, mini_library):
        dataflow = self.two_op_dataflow()
        molecule = self.molecule(mini_library, {"Pack": 2})
        schedule = Schedule(
            makespan=3,
            placements=[
                ScheduledOp("a", "Pack", 0, 0, 2),
                ScheduledOp("b", "Pack", 1, 1, 3),  # starts before a finishes
            ],
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert "SCH003" in error_ids(report)

    def test_short_makespan_is_sch004(self, mini_library):
        dataflow = Dataflow([AtomOp("a", "Pack", (), 2)])
        molecule = self.molecule(mini_library, {"Pack": 1})
        schedule = Schedule(
            makespan=1, placements=[ScheduledOp("a", "Pack", 0, 0, 2)]
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert "SCH004" in error_ids(report)

    def test_missing_operation_is_sch005(self, mini_library):
        dataflow = self.two_op_dataflow()
        molecule = self.molecule(mini_library, {"Pack": 2})
        schedule = Schedule(
            makespan=2, placements=[ScheduledOp("a", "Pack", 0, 0, 2)]
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert "SCH005" in error_ids(report)


class TestRotationViolations:
    def test_port_overlap_is_rot001(self):
        jobs = [
            RotationJob("Pack", 0, 0, 0, 10),
            RotationJob("SATD", 1, 0, 5, 15),  # port busy until 10
        ]
        report = lint_rotations(jobs)
        assert "ROT001" in error_ids(report)

    def test_container_double_reservation_is_rot002(self):
        jobs = [
            RotationJob("Pack", 0, 0, 0, 10),
            RotationJob("SATD", 0, 5, 10, 20),  # AC0 reserved from 5 < 10
        ]
        report = lint_rotations(jobs)
        assert "ROT002" in error_ids(report)
        assert "ROT001" not in ids_of(report)  # the port itself serialised

    def test_inconsistent_timing_is_rot003(self):
        jobs = [RotationJob("Pack", 0, 10, 5, 4)]  # starts before request
        report = lint_rotations(jobs)
        assert "ROT003" in error_ids(report)

    def test_static_atom_rotation_is_rot004(self, mini_catalogue):
        log = RotationLog(
            jobs=[RotationJob("Load", 0, 0, 0, 10)], catalogue=mini_catalogue
        )
        from repro.analysis import run_checks

        report = run_checks(log)
        assert "ROT004" in error_ids(report)

    def test_wrong_duration_is_rot003(self, mini_catalogue):
        from repro.hardware.reconfig import ReconfigurationPort

        port = ReconfigurationPort(mini_catalogue)
        expected = port.rotation_cycles("Pack")
        log = RotationLog(
            jobs=[RotationJob("Pack", 0, 0, 0, expected + 7)],
            catalogue=mini_catalogue,
            rotation_cycles={"Pack": expected},
        )
        from repro.analysis import run_checks

        report = run_checks(log)
        assert "ROT003" in error_ids(report)


# ---------------------------------------------------------------------------
# Acceptance sweep: >= 8 seeded ERROR violations across all four families
# ---------------------------------------------------------------------------


def test_seeded_violations_cover_all_families(mini_library, hotspot_cfg):
    mini_library.get("HT").software_cycles = 0  # LIB001
    satd = mini_library.get("SATD")
    satd.implementations = (  # LAT004
        *satd.implementations,
        MoleculeImpl(foreign_space().molecule({"Alien": 1}), 5),
    )
    hotspot_cfg.edge("loopA", "loopA").count = -5  # CFG006

    report = lint_library(mini_library)
    report.merge(lint_cfg(hotspot_cfg))
    report.merge(
        lint_forecast(
            hotspot_cfg,
            [
                ForecastPoint("ghost", "SATD", 1.0, 10.0, 100.0),  # FC001
                ForecastPoint("init", "SATD", 1.5, 10.0, 100.0),  # FC004
            ],
        )
    )
    report.merge(
        lint_rotations(
            [
                RotationJob("Pack", 0, 0, 0, 10),
                RotationJob("SATD", 1, 0, 5, 15),  # ROT001
            ]
        )
    )
    dataflow = Dataflow([AtomOp("a", "Pack", (), 2)])
    molecule = mini_library.space.molecule({"Pack": 1})
    report.merge(
        lint_schedule(
            dataflow,
            molecule,
            Schedule(makespan=1, placements=[ScheduledOp("a", "Pack", 3, 0, 2)]),
        )
    )  # SCH002 + SCH004

    triggered = error_ids(report)
    assert triggered >= {
        "LIB001", "LAT004", "CFG006", "FC001", "FC004",
        "ROT001", "SCH002", "SCH004",
    }
    families = {RULES[rid].family for rid in triggered}
    assert families == {"lattice", "library", "cfg", "forecast", "schedule"}
    assert report.exit_code() == 1


# ---------------------------------------------------------------------------
# Integration layer wiring
# ---------------------------------------------------------------------------


class TestIntegrationWiring:
    def test_compile_and_run_fails_fast_on_broken_library(self, mini_library):
        from repro.sim.integration import compile_and_run
        from tests.test_integration_endtoend import hotspot_program, ht_fdf

        mini_library.get("HT").software_cycles = 0  # LIB001
        with pytest.raises(LintError, match="LIB001"):
            compile_and_run(
                hotspot_program(), mini_library, {"HT": ht_fdf()}, containers=4
            )

    def test_compile_and_run_lint_opt_out(self, mini_library):
        from repro.sim.integration import compile_and_run
        from tests.test_integration_endtoend import hotspot_program, ht_fdf

        mini_library.get("HT").software_cycles = 0
        outcome = compile_and_run(
            hotspot_program(), mini_library, {"HT": ht_fdf()},
            containers=4, lint=False,
        )
        assert outcome.result.total_cycles > 0

    def test_run_annotated_program_lints_forecasts(self, mini_library):
        from repro.forecast import ForecastAnnotation
        from repro.runtime import RisppRuntime
        from repro.sim.integration import run_annotated_program
        from tests.test_integration_endtoend import hotspot_program

        annotation = ForecastAnnotation.from_points(
            [ForecastPoint("init", "HT", 1.5, 600_000.0, 200.0)]  # FC004
        )
        runtime = RisppRuntime(mini_library, 6, core_mhz=100.0)
        with pytest.raises(LintError, match="FC004"):
            run_annotated_program(hotspot_program(), annotation, runtime)
