"""Tests for candidate determination, trimming (Fig. 5), placement and FC blocks."""

import pytest

from repro.forecast import (
    FCBlock,
    ForecastAnnotation,
    ForecastDecisionFunction,
    ForecastPoint,
    build_fc_blocks,
    candidates_by_block,
    choose_forecast_points,
    determine_candidates,
    run_forecast_pipeline,
    trim_block_candidates,
)
from repro.forecast.candidates import FCCandidate


def make_fdf(t_rot=50.0, t_sw=544.0, t_hw=24.0, **kw) -> ForecastDecisionFunction:
    return ForecastDecisionFunction(t_rot=t_rot, t_sw=t_sw, t_hw=t_hw, **kw)


class TestDetermineCandidates:
    def test_hot_loop_predecessor_is_candidate(self, hotspot_cfg):
        # init precedes 100 SATD executions at distance 120 cycles
        # (2.4 rotation times: the sweet spot) with probability 1.
        fdf = make_fdf(t_rot=50.0)
        cands = determine_candidates(hotspot_cfg, "SATD", fdf)
        assert "init" in {c.block_id for c in cands}

    def test_too_close_predecessor_not_candidate(self, hotspot_cfg):
        # warmA directly precedes loopA (distance 0): the rotation could
        # never finish in time, so the FDF demand exceeds 100 executions.
        fdf = make_fdf(t_rot=50.0)
        cands = determine_candidates(hotspot_cfg, "SATD", fdf)
        assert "warmA" not in {c.block_id for c in cands}

    def test_too_far_block_not_candidate(self, hotspot_cfg):
        # init is thousands of cycles (>> 10 T_rot) ahead of the HT loop:
        # it would block Atom Containers far too long.
        fdf = make_fdf(t_rot=50.0, t_sw=298.0)
        cands = determine_candidates(hotspot_cfg, "HT", fdf)
        ids = {c.block_id for c in cands}
        assert "init" not in ids
        assert "mid" in ids

    def test_usage_blocks_excluded_by_default(self, hotspot_cfg):
        cands = determine_candidates(hotspot_cfg, "SATD", make_fdf())
        assert "loopA" not in {c.block_id for c in cands}

    def test_usage_blocks_can_be_included(self, hotspot_cfg):
        cands = determine_candidates(
            hotspot_cfg, "HT", make_fdf(t_sw=298.0), exclude_usage_blocks=False
        )
        ids = {c.block_id for c in cands}
        # loopB uses HT itself; with distance 0 the FDF demand explodes,
        # but the block is at least evaluated (may or may not qualify).
        assert "mid" in ids

    def test_too_close_block_rejected(self, hotspot_cfg):
        # With an enormous rotation time nothing is far enough ahead.
        fdf = make_fdf(t_rot=1e9, k_near=1e9)
        cands = determine_candidates(hotspot_cfg, "HT", fdf, distance="min")
        assert cands == []

    def test_unreachable_blocks_never_candidates(self, hotspot_cfg):
        cands = determine_candidates(hotspot_cfg, "SATD", make_fdf())
        # end and loopB cannot reach SATD.
        assert {c.block_id for c in cands}.isdisjoint({"end", "loopB"})

    def test_distance_selector(self, hotspot_cfg):
        for mode in ("min", "expected", "max"):
            cands = determine_candidates(hotspot_cfg, "SATD", make_fdf(), distance=mode)
            assert isinstance(cands, list)

    def test_margin_positive(self, hotspot_cfg):
        for c in determine_candidates(hotspot_cfg, "SATD", make_fdf()):
            assert c.margin >= 0

    def test_candidates_by_block_groups(self):
        c1 = FCCandidate("b1", "A", 1.0, 10.0, 5.0, 1.0)
        c2 = FCCandidate("b1", "B", 1.0, 10.0, 5.0, 1.0)
        c3 = FCCandidate("b2", "A", 1.0, 10.0, 5.0, 1.0)
        grouped = candidates_by_block([c1, c2, c3])
        assert set(grouped) == {"b1", "b2"}
        assert len(grouped["b1"]) == 2


class TestTrimming:
    def cand(self, si, block="b"):
        return FCCandidate(block, si, 1.0, 100.0, 50.0, 1.0)

    def test_fitting_set_untouched(self, mini_library):
        result = trim_block_candidates(
            mini_library, [self.cand("HT"), self.cand("SATD")], 20
        )
        assert len(result.kept) == 2
        assert not result.removed
        assert result.rounds == 0

    def test_trims_to_container_budget(self, mini_library):
        # Combined demand sup(Rep(HT), Rep(SATD)) = 7 containers; HT's rep
        # is covered by SATD's, so only removing SATD frees containers.
        result = trim_block_candidates(
            mini_library, [self.cand("HT"), self.cand("SATD")], 6
        )
        assert result.containers_needed <= 6
        assert {c.si_name for c in result.kept} == {"HT"}
        assert {c.si_name for c in result.removed} == {"SATD"}

    def test_only_reducing_removals_considered(self, mini_library):
        # Removing HT frees nothing (its rep is dominated by SATD's), so
        # the algorithm must never pick it — even though HT has the worse
        # speed-up per resource at equal freed counts.
        result = trim_block_candidates(
            mini_library, [self.cand("HT"), self.cand("SATD")], 6
        )
        assert all(c.si_name != "HT" for c in result.removed)

    def test_zero_budget_keeps_last_cluster(self, mini_library):
        result = trim_block_candidates(
            mini_library, [self.cand("HT"), self.cand("SATD")], 0
        )
        # The abort guard keeps at least one SI rather than deleting the
        # whole cluster (§4.2 prose), flagging the abort.
        assert len(result.kept) == 1
        assert result.aborted_on_cluster

    def test_duplicate_si_in_block_rejected(self, mini_library):
        with pytest.raises(ValueError):
            trim_block_candidates(
                mini_library, [self.cand("HT"), self.cand("HT")], 4
            )

    def test_negative_budget_rejected(self, mini_library):
        with pytest.raises(ValueError):
            trim_block_candidates(mini_library, [self.cand("HT")], -1)

    def test_empty_block_is_noop(self, mini_library):
        result = trim_block_candidates(mini_library, [], 4)
        assert result.kept == [] and result.removed == []


class TestPlacement:
    def test_single_candidate_becomes_fc(self, hotspot_cfg):
        c = FCCandidate("init", "SATD", 1.0, 100.0, 100.0, 2.0)
        points = choose_forecast_points(hotspot_cfg, [c])
        assert len(points) == 1
        assert points[0].block_id == "init"

    def test_adjacent_candidates_collapse(self, hotspot_cfg):
        # init and mid both forecast HT; init -> loopA -> mid are connected
        # only through loopA (not a candidate), so with no gap budget they
        # stay separate; with a generous budget they collapse to one FC.
        c1 = FCCandidate("init", "HT", 1.0, 500.0, 50.0, 2.0)
        c2 = FCCandidate("mid", "HT", 1.0, 80.0, 50.0, 2.0)
        separate = choose_forecast_points(hotspot_cfg, [c1, c2], far_threshold=0.0)
        assert len(separate) == 2
        merged = choose_forecast_points(hotspot_cfg, [c1, c2], far_threshold=1000.0)
        assert len(merged) == 1
        # The surviving FC is the one with the larger temporal lead.
        assert merged[0].block_id == "init"

    def test_mixed_si_types_rejected(self, hotspot_cfg):
        c1 = FCCandidate("init", "HT", 1.0, 10.0, 5.0, 1.0)
        c2 = FCCandidate("mid", "SATD", 1.0, 10.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            choose_forecast_points(hotspot_cfg, [c1, c2])

    def test_empty_candidates(self, hotspot_cfg):
        assert choose_forecast_points(hotspot_cfg, []) == []


class TestFCBlocks:
    def point(self, block, si):
        return ForecastPoint(block, si, 1.0, 10.0, 5.0)

    def test_grouping(self):
        blocks = build_fc_blocks(
            [self.point("b1", "A"), self.point("b1", "B"), self.point("b2", "A")]
        )
        assert [b.block_id for b in blocks] == ["b1", "b2"]
        assert blocks[0].si_names() == ("A", "B")

    def test_fc_block_validation(self):
        with pytest.raises(ValueError):
            FCBlock("b", ())
        with pytest.raises(ValueError):
            FCBlock("b", (self.point("other", "A"),))
        with pytest.raises(ValueError):
            FCBlock("b", (self.point("b", "A"), self.point("b", "A")))

    def test_annotation_lookup(self):
        ann = ForecastAnnotation.from_points(
            [self.point("b1", "A"), self.point("b2", "B")]
        )
        assert ann.forecasts_at("b1")[0].si_name == "A"
        assert ann.forecasts_at("nope") == ()
        assert len(ann.all_points()) == 2


class TestPipeline:
    def test_end_to_end(self, hotspot_cfg, mini_library):
        fdfs = {
            "SATD": make_fdf(t_rot=60.0),
            "HT": make_fdf(t_rot=60.0, t_sw=298.0),
        }
        ann = run_forecast_pipeline(hotspot_cfg, mini_library, fdfs, 6)
        assert isinstance(ann, ForecastAnnotation)
        points = ann.all_points()
        assert points, "the hotspot program must yield at least one FC"
        # Every forecast lands on an existing block and a known SI.
        for p in points:
            assert p.block_id in hotspot_cfg
            assert p.si_name in ("SATD", "HT")

    def test_forecast_precedes_usage(self, hotspot_cfg, mini_library):
        fdfs = {"HT": make_fdf(t_rot=60.0, t_sw=298.0)}
        ann = run_forecast_pipeline(hotspot_cfg, mini_library, fdfs, 6)
        # HT is used in loopB; a useful forecast sits upstream of it.
        points = ann.all_points()
        assert points
        for p in points:
            assert p.block_id in ("init", "warmA", "loopA", "mid", "warmB")

    def test_unknown_si_rejected(self, hotspot_cfg, mini_library):
        with pytest.raises(ValueError):
            run_forecast_pipeline(
                hotspot_cfg, mini_library, {"NOPE": make_fdf()}, 6
            )
