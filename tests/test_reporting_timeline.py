"""Tests for the container-occupancy timeline renderer."""

import pytest

from repro.reporting import container_occupancy, render_container_timeline
from repro.sim import EventKind, Trace


def sample_trace() -> Trace:
    t = Trace()
    t.record(
        0,
        EventKind.ROTATION_REQUESTED,
        detail_atom="Pack",
        container=0,
        starts=0,
        finishes=100,
    )
    t.record(
        0,
        EventKind.ROTATION_REQUESTED,
        detail_atom="SATD",
        container=1,
        starts=100,
        finishes=200,
    )
    # Container 0 later re-rotated to Transform.
    t.record(
        300,
        EventKind.ROTATION_REQUESTED,
        detail_atom="Transform",
        container=0,
        starts=300,
        finishes=400,
    )
    t.record(500, EventKind.SI_EXECUTED, si="X", mode="HW", cycles=5)
    return t


class TestOccupancy:
    def test_intervals_reconstructed(self):
        spans = container_occupancy(sample_trace(), 2)
        # AC0: Pack loading 0..100, loaded 100..300, Transform 300..400
        # loading, loaded 400..horizon.
        assert spans[0][0] == (0, 100, "Pack", True)
        assert spans[0][1] == (100, 300, "Pack", False)
        assert spans[0][2][2] == "Transform"
        assert spans[0][3][3] is False
        # AC1: SATD.
        assert spans[1][0][2] == "SATD"

    def test_containers_validated(self):
        with pytest.raises(ValueError):
            container_occupancy(Trace(), 0)

    def test_unknown_containers_ignored(self):
        spans = container_occupancy(sample_trace(), 1)
        assert 1 not in spans


class TestRenderTimeline:
    def test_rows_and_legend(self):
        text = render_container_timeline(sample_trace(), 2, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("AC0 |")
        assert lines[1].startswith("AC1 |")
        assert "cycles/column" in lines[-1]
        # Upper-case letters for loaded atoms, lower for rotations.
        assert "P" in lines[0] and "p" in lines[0]
        assert "T" in lines[0]
        assert "S" in lines[1]

    def test_markers_rendered(self):
        text = render_container_timeline(
            sample_trace(), 2, width=40, markers={"T1": 250}
        )
        assert "^" in text
        assert "T1@250" in text

    def test_empty_trace(self):
        assert "empty" in render_container_timeline(Trace(), 2)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_container_timeline(sample_trace(), 2, width=2)
