"""CLI surface of the recovery subsystem: validation, crash, resume.

Satellite contract: every malformed argument exits 2 through argparse
(shared exit-2 contract), a seeded crash exits 3 with a resume hint on
stderr, and a resumed campaign's report is byte-identical to the
uninterrupted one.
"""

import json

import pytest

from repro.cli import CHAOS_RUN_KIND, CHAOS_RUN_META, main

CHAOS = ["chaos", "--suite", "synthetic", "--quick", "--fault-rate", "50"]


class TestArgumentValidation:
    """Bad arguments must exit 2, not crash or run (satellite contract)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["chaos", "--fault-rate", "nan"],
            ["chaos", "--fault-rate", "inf"],
            ["chaos", "--fault-rate", "-0.5"],
            ["chaos", "--seed", "0"],
            ["chaos", "--seed", "-3"],
            ["chaos", "--checkpoint-every", "5"],  # needs a store
            ["chaos", "--crash-at", "100"],  # needs a store
            ["chaos", "--checkpoint-dir", "x", "--checkpoint-every", "0"],
            ["chaos", "--checkpoint-dir", "x", "--checkpoint-every", "-2"],
            ["chaos", "--checkpoint-dir", "x", "--crash-at", "-1"],
            ["chaos", "--resume", "/nonexistent/recovery/store"],
            ["chaos", "--resume", "x", "--checkpoint-dir", "y"],
            ["chaos", "--resume", "x", "--suite", "synthetic"],
            ["chaos", "--resume", "x", "--seed", "3"],
            ["chaos", "--resume", "x", "--quick"],
            ["bench", "--checkpoint-every", "0"],
            ["bench", "--checkpoint-every", "-4"],
        ],
    )
    def test_bad_arguments_exit_two(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert capsys.readouterr().err

    def test_resume_store_without_journal_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "store"
        empty.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--resume", str(empty)])
        assert excinfo.value.code == 2
        assert "journal" in capsys.readouterr().err

    def test_resume_store_with_broken_metadata_exits_two(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        store.mkdir()
        (store / "journal.jsonl").write_text("")
        (store / CHAOS_RUN_META).write_text('{"kind": "something-else"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--resume", str(store)])
        assert excinfo.value.code == 2
        assert "run-metadata" in capsys.readouterr().err


class TestCrashResumeRoundTrip:
    def test_crash_exits_three_then_resume_matches_reference(
        self, tmp_path, capsys
    ):
        ref_path = tmp_path / "ref.json"
        assert main([*CHAOS, "--seed", "3", "--json", str(ref_path)]) == 0
        capsys.readouterr()

        store = tmp_path / "store"
        code = main(
            [
                *CHAOS,
                "--seed",
                "3",
                "--checkpoint-dir",
                str(store),
                "--checkpoint-every",
                "32",
                "--crash-at",
                "1000000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "simulated crash" in captured.err
        assert f"--resume {store}" in captured.err

        meta = json.loads((store / CHAOS_RUN_META).read_text())
        assert meta["kind"] == CHAOS_RUN_KIND
        assert meta["suite"] == "synthetic"
        assert meta["seed"] == 3
        assert meta["quick"] is True

        resumed_path = tmp_path / "resumed.json"
        assert (
            main(
                [
                    "chaos",
                    "--resume",
                    str(store),
                    "--json",
                    str(resumed_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert ref_path.read_bytes() == resumed_path.read_bytes()

    def test_checkpointed_uninterrupted_run_matches_reference(
        self, tmp_path, capsys
    ):
        ref_path = tmp_path / "ref.json"
        assert main([*CHAOS, "--seed", "7", "--json", str(ref_path)]) == 0
        store = tmp_path / "store"
        chk_path = tmp_path / "chk.json"
        assert (
            main(
                [
                    *CHAOS,
                    "--seed",
                    "7",
                    "--checkpoint-dir",
                    str(store),
                    "--json",
                    str(chk_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert ref_path.read_bytes() == chk_path.read_bytes()
        assert (store / "journal.jsonl").is_file()
