"""Unit tests for the dataflow list scheduler."""

import pytest

from repro.core import (
    AtomOp,
    AtomSpace,
    Dataflow,
    estimate_cycles,
    layered_dataflow,
    list_schedule,
)

SPACE = AtomSpace(["Load", "Pack", "Transform", "SATD"])


def chain(*kinds):
    ops = []
    prev = None
    for i, kind in enumerate(kinds):
        ops.append(AtomOp(f"op{i}", kind, (f"op{i-1}",) if prev is not None else ()))
        prev = i
    return Dataflow(ops)


class TestDataflow:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Dataflow([AtomOp("a", "Pack"), AtomOp("a", "Pack")])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError):
            Dataflow([AtomOp("a", "Pack", deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            Dataflow(
                [AtomOp("a", "Pack", deps=("b",)), AtomOp("b", "Pack", deps=("a",))]
            )

    def test_executions_per_kind(self):
        df = chain("Load", "Pack", "Pack", "Transform")
        assert df.executions_per_kind() == {"Load": 1, "Pack": 2, "Transform": 1}

    def test_critical_path_of_chain(self):
        df = chain("Load", "Pack", "Transform")
        assert df.critical_path_cycles() == 3

    def test_critical_path_respects_latency(self):
        df = Dataflow(
            [AtomOp("a", "Load", latency=3), AtomOp("b", "Pack", deps=("a",), latency=2)]
        )
        assert df.critical_path_cycles() == 5

    def test_empty_dataflow(self):
        df = Dataflow([])
        assert df.critical_path_cycles() == 0
        assert estimate_cycles(df, SPACE.zero()) == 0


class TestListSchedule:
    def test_serialises_on_single_instance(self):
        # 4 independent Pack ops on 1 Pack instance -> 4 cycles.
        df = Dataflow([AtomOp(f"p{i}", "Pack") for i in range(4)])
        assert estimate_cycles(df, SPACE.molecule({"Pack": 1})) == 4

    def test_parallelises_with_more_instances(self):
        df = Dataflow([AtomOp(f"p{i}", "Pack") for i in range(4)])
        assert estimate_cycles(df, SPACE.molecule({"Pack": 2})) == 2
        assert estimate_cycles(df, SPACE.molecule({"Pack": 4})) == 1

    def test_extra_instances_beyond_parallelism_do_not_help(self):
        df = chain("Pack", "Pack", "Pack")
        assert estimate_cycles(df, SPACE.molecule({"Pack": 1})) == 3
        assert estimate_cycles(df, SPACE.molecule({"Pack": 3})) == 3

    def test_missing_instance_raises(self):
        df = chain("Pack", "Transform")
        with pytest.raises(ValueError):
            estimate_cycles(df, SPACE.molecule({"Pack": 1}))

    def test_unconstrained_kinds_are_unlimited(self):
        df = Dataflow(
            [AtomOp(f"l{i}", "Load") for i in range(8)]
            + [AtomOp("p", "Pack", deps=tuple(f"l{i}" for i in range(8)))]
        )
        cycles = estimate_cycles(
            df, SPACE.molecule({"Pack": 1}), unconstrained_kinds=["Load"]
        )
        assert cycles == 2  # all loads in parallel, then the pack

    def test_issue_overhead_added(self):
        df = chain("Pack")
        assert (
            estimate_cycles(df, SPACE.molecule({"Pack": 1}), issue_overhead=3) == 4
        )

    def test_monotone_in_resources(self):
        # More atoms never hurt: fundamental to the Pareto fronts of Fig.13.
        df = layered_dataflow([("Transform", 4, 2), ("Pack", 4, 1)])
        prev = None
        for t in (1, 2, 4):
            for p in (1, 2, 4):
                c = estimate_cycles(df, SPACE.molecule({"Transform": t, "Pack": p}))
                if prev is not None and t >= prev[0] and p >= prev[1]:
                    assert c <= prev[2]
                prev = (t, p, c)

    def test_schedule_respects_dependencies(self):
        df = layered_dataflow([("Transform", 4, 1), ("Pack", 2, 1)])
        sched = list_schedule(df, SPACE.molecule({"Transform": 2, "Pack": 2}))
        finish = {p.op_id: p.finish for p in sched.placements}
        start = {p.op_id: p.start for p in sched.placements}
        for op in df:
            for dep in op.deps:
                assert start[op.op_id] >= finish[dep]

    def test_schedule_no_instance_overlap(self):
        df = Dataflow([AtomOp(f"p{i}", "Pack") for i in range(6)])
        sched = list_schedule(df, SPACE.molecule({"Pack": 2}))
        for lane in sched.by_instance().values():
            for earlier, later in zip(lane, lane[1:]):
                assert later.start >= earlier.finish


class TestLayeredDataflow:
    def test_ht4x4_shape(self):
        # Paper: each HT_4x4 needs 4 Transform and 4 Pack executions.
        df = layered_dataflow([("Transform", 4, 1), ("Pack", 4, 1)])
        assert df.executions_per_kind() == {"Transform": 4, "Pack": 4}

    def test_fan_in_balanced(self):
        df = layered_dataflow([("Transform", 4, 1), ("SATD", 1, 1)])
        satd_ops = [op for op in df if op.kind == "SATD"]
        assert len(satd_ops) == 1
        assert len(satd_ops[0].deps) == 4

    def test_rejects_zero_executions(self):
        with pytest.raises(ValueError):
            layered_dataflow([("Pack", 0, 1)])

    def test_spatial_vs_temporal_tradeoff(self):
        # The Fig. 2 story: same dataflow, molecule size trades latency.
        df = layered_dataflow([("Transform", 4, 1), ("Pack", 4, 1)])
        seq = estimate_cycles(df, SPACE.molecule({"Transform": 1, "Pack": 1}))
        par = estimate_cycles(df, SPACE.molecule({"Transform": 4, "Pack": 4}))
        assert par < seq
