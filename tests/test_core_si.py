"""Unit tests for Special Instructions, Rep(S), and the SI library."""

import pytest

from repro.core import (
    AtomCatalogue,
    AtomKind,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
)


@pytest.fixture()
def catalogue():
    return AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713, slices=406, luts=812),
            AtomKind("Transform", bitstream_bytes=59_353, slices=517, luts=1034),
            AtomKind("SATD", bitstream_bytes=58_141, slices=407, luts=808),
        ]
    )


@pytest.fixture()
def space(catalogue):
    return catalogue.space


def make_si(space, name="HT", sw=298, impls=None):
    impls = impls or [
        MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
        MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
        MoleculeImpl(space.molecule({"Load": 4, "Pack": 4, "Transform": 4}), 8),
    ]
    return SpecialInstruction(name, space, sw, impls)


class TestAtomKind:
    def test_valid(self):
        k = AtomKind("Transform", bitstream_bytes=100, latency_cycles=2)
        assert k.reconfigurable

    def test_static_atom_has_no_bitstream(self):
        with pytest.raises(ValueError):
            AtomKind("Load", reconfigurable=False, bitstream_bytes=10)

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            AtomKind("X", latency_cycles=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            AtomKind("")

    def test_rejects_negative_hw(self):
        with pytest.raises(ValueError):
            AtomKind("X", slices=-1)


class TestAtomCatalogue:
    def test_space_matches_kinds(self, catalogue):
        assert catalogue.space.kinds == ("Load", "Pack", "Transform", "SATD")

    def test_reconfigurable_partition(self, catalogue):
        assert [k.name for k in catalogue.static_kinds()] == ["Load"]
        assert catalogue.reconfigurable_names() == ("Pack", "Transform", "SATD")

    def test_lookup(self, catalogue):
        assert catalogue.get("Pack").slices == 406
        assert "Pack" in catalogue
        with pytest.raises(KeyError):
            catalogue.get("nope")

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError):
            AtomCatalogue.of([AtomKind("A"), AtomKind("A")])


class TestMoleculeImpl:
    def test_atoms_is_determinant(self, space):
        impl = MoleculeImpl(space.molecule({"Pack": 2, "Transform": 1}), 10)
        assert impl.atoms() == 3

    def test_rejects_zero_molecule(self, space):
        with pytest.raises(ValueError):
            MoleculeImpl(space.zero(), 10)

    def test_rejects_zero_cycles(self, space):
        with pytest.raises(ValueError):
            MoleculeImpl(space.unit("Pack"), 0)


class TestSpecialInstruction:
    def test_minimal_and_fastest(self, space):
        si = make_si(space)
        assert si.minimal_molecule().cycles == 22
        assert si.fastest_molecule().cycles == 8

    def test_supremum_covers_all(self, space):
        si = make_si(space)
        sup = si.supremum()
        assert all(m <= sup for m in si.molecules())

    def test_rep_is_ceil_of_average(self, space):
        si = make_si(space)
        rep = si.rep()
        # Load: (1+1+4)/3 = 2 -> 2; Pack: 2 -> 2; Transform: (1+2+4)/3 -> ceil(2.33)=3
        assert rep.as_dict() == {"Load": 2, "Pack": 2, "Transform": 3}

    def test_rep_between_inf_and_sup(self, space):
        si = make_si(space)
        from repro.core import infimum, supremum

        assert infimum(si.molecules()) <= si.rep() <= supremum(si.molecules())

    def test_best_available_none_when_insufficient(self, space):
        si = make_si(space)
        assert si.best_available(space.unit("Pack")) is None

    def test_best_available_picks_fastest_fitting(self, space):
        si = make_si(space)
        avail = space.molecule({"Load": 2, "Pack": 2, "Transform": 2})
        assert si.best_available(avail).cycles == 17

    def test_cycles_with_falls_back_to_software(self, space):
        si = make_si(space)
        assert si.cycles_with(space.zero()) == 298
        avail = space.molecule({"Load": 4, "Pack": 4, "Transform": 4, "SATD": 1})
        assert si.cycles_with(avail) == 8

    def test_expected_speedup(self, space):
        si = make_si(space)
        assert si.expected_speedup(si.fastest_molecule()) == pytest.approx(298 / 8)
        assert si.max_expected_speedup() >= si.expected_speedup(si.minimal_molecule())

    def test_needs_at_least_one_molecule(self, space):
        with pytest.raises(ValueError):
            SpecialInstruction("empty", space, 100, [])

    def test_rejects_foreign_space_molecule(self, space):
        from repro.core import AtomSpace

        foreign = AtomSpace(["X"])
        with pytest.raises(ValueError):
            SpecialInstruction(
                "bad", space, 100, [MoleculeImpl(foreign.unit("X"), 5)]
            )


class TestSILibrary:
    def test_lookup_and_iteration(self, catalogue, space):
        lib = SILibrary(catalogue, [make_si(space, "HT"), make_si(space, "DCT", sw=488)])
        assert len(lib) == 2
        assert lib.get("DCT").software_cycles == 488
        assert set(lib.names()) == {"HT", "DCT"}
        assert "HT" in lib

    def test_duplicate_si_rejected(self, catalogue, space):
        with pytest.raises(ValueError):
            SILibrary(catalogue, [make_si(space), make_si(space)])

    def test_shared_atom_kinds(self, catalogue, space):
        lib = SILibrary(catalogue, [make_si(space, "HT"), make_si(space, "DCT")])
        shared = lib.shared_atom_kinds()
        assert set(shared["Transform"]) == {"HT", "DCT"}
        assert shared["SATD"] == ()

    def test_container_demand_ignores_static_atoms(self, catalogue, space):
        lib = SILibrary(catalogue, [make_si(space)])
        m = space.molecule({"Load": 4, "Pack": 1, "Transform": 2})
        assert lib.container_demand(m) == 3

    def test_library_supremum(self, catalogue, space):
        lib = SILibrary(catalogue, [make_si(space)])
        assert lib.supremum() == space.molecule(
            {"Load": 4, "Pack": 4, "Transform": 4}
        )
