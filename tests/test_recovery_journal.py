"""The write-ahead journal: durability semantics of ``repro.recovery``.

The contract under test is the WAL invariant: a record is either absent
(the command never happened) or present and replayable.  A torn tail —
a partial last line, or a corrupt *final* complete line — is discarded
silently because it was never acknowledged; damage anywhere earlier is
an integrity failure and must raise the typed :class:`RecoveryError`,
never a bare ``KeyError``/``ValueError`` a driver might swallow.
"""

import json

import pytest

from repro.recovery import (
    JOURNAL_OPS,
    JournalRecord,
    JournalWriter,
    RecoveryError,
    read_journal,
)
from repro.recovery.journal import decode_line, encode_record


def write_records(path, count, *, op="advance"):
    writer = JournalWriter(path)
    records = [writer.append(100 * i, op, {}) for i in range(1, count + 1)]
    writer.close()
    return records


class TestRecordCodec:
    def test_round_trip(self):
        record = JournalRecord(
            seq=3, cycle=70, op="execute_si", args={"si": "SI0", "task": "main"}
        )
        assert decode_line(encode_record(record)) == record

    def test_crc_detects_tampering(self):
        line = encode_record(JournalRecord(seq=1, cycle=5, op="advance", args={}))
        tampered = line.replace('"cycle":5', '"cycle":6')
        with pytest.raises(ValueError, match="CRC"):
            decode_line(tampered)

    def test_unknown_op_rejected(self):
        body = {"seq": 1, "cycle": 0, "op": "reboot", "args": {}}
        from repro.recovery.journal import _crc

        body["crc"] = _crc(dict(body))
        with pytest.raises(ValueError, match="unknown journal op"):
            decode_line(json.dumps(body))

    def test_op_surface_is_the_documented_six(self):
        assert JOURNAL_OPS == (
            "advance",
            "execute_si",
            "fail_container",
            "forecast",
            "forecast_end",
            "query",
        )


class TestReadJournal:
    def test_clean_journal_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        written = write_records(path, 5)
        read = read_journal(path)
        assert read.records == written
        assert not read.discarded_tail
        assert read.valid_bytes == path.stat().st_size

    def test_missing_journal_is_a_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="not found"):
            read_journal(tmp_path / "journal.jsonl")

    def test_partial_last_line_discarded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 3)
        whole = path.stat().st_size
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq":4,"cycle":400,"op":"adv')  # no newline: torn
        read = read_journal(path)
        assert [r.seq for r in read.records] == [1, 2, 3]
        assert read.discarded_tail
        assert read.valid_bytes == whole

    def test_corrupt_final_complete_line_discarded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 3)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2] + "garbage"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        read = read_journal(path)
        assert [r.seq for r in read.records] == [1, 2]
        assert read.discarded_tail

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 4)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "not json at all"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(RecoveryError, match="corrupted at line 2"):
            read_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 2)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(
                encode_record(
                    JournalRecord(seq=9, cycle=900, op="advance", args={})
                )
                + "\n"
            )
        with pytest.raises(RecoveryError, match="sequence gap"):
            read_journal(path)

    def test_recovery_error_is_not_a_value_error(self):
        # Drivers guard artifact parsing with ``except ValueError``; a
        # broken recovery store must never be swallowed by that.
        assert not issubclass(RecoveryError, ValueError)
        assert not issubclass(RecoveryError, KeyError)


class TestJournalWriter:
    def test_truncate_cuts_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 2)
        read_before = read_journal(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq":3,"cyc')
        writer = JournalWriter(
            path, start_seq=2, truncate_to=read_before.valid_bytes
        )
        writer.append(300, "advance", {})
        writer.close()
        read = read_journal(path)
        assert [r.seq for r in read.records] == [1, 2, 3]
        assert not read.discarded_tail

    def test_next_seq_continues_from_start_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, 3)
        writer = JournalWriter(path, start_seq=3)
        assert writer.next_seq == 4
        assert writer.append(400, "forecast_end", {"si": "SI0", "task": "main"}).seq == 4
        writer.close()
        assert [r.seq for r in read_journal(path).records] == [1, 2, 3, 4]
