"""Unit tests for reach probability, temporal distance and SI statistics."""

import math

import pytest

from repro.cfg import (
    ControlFlowGraph,
    collect_si_stats,
    expected_distance,
    expected_si_executions,
    max_distance,
    min_distance,
    reach_probability_markov,
    reach_probability_scc,
)


def branchy() -> ControlFlowGraph:
    """entry -(0.3)-> hit -> exit ; entry -(0.7)-> miss -> exit."""
    cfg = ControlFlowGraph()
    cfg.block("entry", cycles=1)
    cfg.block("hit", cycles=10, si_usages={"S": 2})
    cfg.block("miss", cycles=4)
    cfg.block("exit", cycles=1)
    cfg.add_edge("entry", "hit", count=30)
    cfg.add_edge("entry", "miss", count=70)
    cfg.add_edge("hit", "exit", count=30)
    cfg.add_edge("miss", "exit", count=70)
    return cfg


def loopy() -> ControlFlowGraph:
    """entry -> head ; head -(0.9)-> body(SI) -> head ; head -(0.1)-> exit."""
    cfg = ControlFlowGraph()
    cfg.block("entry", cycles=1)
    cfg.block("head", cycles=2)
    cfg.block("body", cycles=20, si_usages={"S": 1})
    cfg.block("exit", cycles=1)
    cfg.add_edge("entry", "head", count=10)
    cfg.add_edge("head", "body", count=90)
    cfg.add_edge("body", "head", count=90)
    cfg.add_edge("head", "exit", count=10)
    return cfg


class TestReachProbability:
    def test_branch_probability_markov(self):
        p = reach_probability_markov(branchy(), ["hit"])
        assert p["entry"] == pytest.approx(0.3)
        assert p["hit"] == 1.0
        assert p["miss"] == 0.0
        assert p["exit"] == 0.0

    def test_branch_probability_scc(self):
        p = reach_probability_scc(branchy(), ["hit"])
        assert p["entry"] == pytest.approx(0.3)
        assert p["miss"] == 0.0

    def test_loop_probability(self):
        # From head: reach body with prob 0.9 on first try, else exit -> 0.9.
        p = reach_probability_markov(loopy(), ["body"])
        assert p["head"] == pytest.approx(0.9)
        assert p["entry"] == pytest.approx(0.9)

    def test_scc_matches_markov_on_loop(self):
        cfg = loopy()
        pm = reach_probability_markov(cfg, ["body"])
        ps = reach_probability_scc(cfg, ["body"])
        for b in cfg.block_ids():
            assert ps[b] == pytest.approx(pm[b], abs=1e-12)

    def test_scc_matches_markov_on_nested_loops(self):
        cfg = ControlFlowGraph()
        for b, cyc in [("e", 1), ("h1", 1), ("h2", 1), ("t", 3), ("x", 1)]:
            cfg.block(b, cycles=cyc, si_usages={"S": 1} if b == "t" else None)
        cfg.add_edge("e", "h1", count=5)
        cfg.add_edge("h1", "h2", count=40)
        cfg.add_edge("h2", "t", count=10)
        cfg.add_edge("h2", "h1", count=25)  # inner back edge
        cfg.add_edge("t", "h1", count=10)
        cfg.add_edge("h2", "x", count=5)
        pm = reach_probability_markov(cfg, ["t"])
        ps = reach_probability_scc(cfg, ["t"])
        for b in cfg.block_ids():
            assert ps[b] == pytest.approx(pm[b], abs=1e-9)

    def test_target_is_absorbing(self):
        p = reach_probability_markov(loopy(), ["body"])
        assert p["body"] == 1.0

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            reach_probability_markov(branchy(), ["ghost"])
        with pytest.raises(ValueError):
            reach_probability_scc(branchy(), ["ghost"])

    def test_multiple_targets(self):
        p = reach_probability_markov(branchy(), ["hit", "miss"])
        assert p["entry"] == pytest.approx(1.0)


class TestDistances:
    def test_min_distance_straight_line(self):
        cfg = ControlFlowGraph()
        cfg.block("a", cycles=1)
        cfg.block("b", cycles=7)
        cfg.block("c", cycles=3, si_usages={"S": 1})
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "c")
        d = min_distance(cfg, ["c"])
        assert d["c"] == 0.0
        assert d["b"] == 0.0  # directly precedes the target
        assert d["a"] == 7.0  # must execute b first

    def test_min_distance_picks_shortest_branch(self):
        cfg = branchy()
        cfg.block("far", cycles=100, si_usages={"S": 1})
        cfg.add_edge("miss", "far", count=1)
        d = min_distance(cfg, ["hit", "far"])
        assert d["entry"] == 0.0  # straight into hit
        assert d["miss"] == 0.0  # directly precedes far

    def test_min_distance_unreachable_is_inf(self):
        d = min_distance(branchy(), ["hit"])
        assert math.isinf(d["miss"]) or d["miss"] >= 0
        # miss cannot reach hit:
        assert math.isinf(d["miss"])

    def test_expected_distance_conditioned(self):
        # From entry, the only path reaching 'hit' goes straight there: the
        # conditional expected distance must be 0 (no intermediate blocks),
        # not diluted by the 70% of walks that go to 'miss'.
        d = expected_distance(branchy(), ["hit"])
        assert d["entry"] == pytest.approx(0.0)
        assert d["hit"] == 0.0
        assert math.isinf(d["miss"])

    def test_expected_distance_with_intermediate(self):
        cfg = ControlFlowGraph()
        cfg.block("a", cycles=1)
        cfg.block("m", cycles=9)
        cfg.block("t", cycles=2, si_usages={"S": 1})
        cfg.add_edge("a", "m")
        cfg.add_edge("m", "t")
        d = expected_distance(cfg, ["t"])
        assert d["a"] == pytest.approx(9.0)

    def test_expected_distance_loop(self):
        # From head: with prob 0.9 next is body (0 intermediate cycles).
        # Conditioned on eventually hitting body, distance is 0 from head.
        d = expected_distance(loopy(), ["body"])
        assert d["head"] == pytest.approx(0.0)
        assert d["entry"] == pytest.approx(2.0)  # must run head first

    def test_max_distance_dag(self):
        cfg = ControlFlowGraph()
        cfg.block("a", cycles=1)
        cfg.block("short", cycles=2)
        cfg.block("long", cycles=50)
        cfg.block("t", cycles=1, si_usages={"S": 1})
        cfg.add_edge("a", "short")
        cfg.add_edge("a", "long")
        cfg.add_edge("short", "t")
        cfg.add_edge("long", "t")
        d = max_distance(cfg, ["t"])
        assert d["a"] == pytest.approx(50.0)

    def test_max_distance_loop_scaled_by_trip_count(self):
        cfg = loopy()
        d = max_distance(cfg, ["body"])
        assert d["body"] == 0.0
        # entry goes through the loop SCC; cost is finite and positive.
        assert 0 < d["entry"] < math.inf

    def test_max_distance_unreachable_inf(self):
        d = max_distance(branchy(), ["hit"])
        assert math.isinf(d["miss"])


class TestExpectedExecutions:
    def test_straight_line(self):
        cfg = branchy()
        e = expected_si_executions(cfg, "S")
        # hit uses S twice, reached with prob 0.3
        assert e["entry"] == pytest.approx(0.6)
        assert e["hit"] == pytest.approx(2.0)
        assert e["miss"] == 0.0

    def test_loop_multiplies_usage(self):
        e = expected_si_executions(loopy(), "S")
        # Expected trips: geometric with continue prob 0.9 -> 9 executions.
        assert e["entry"] == pytest.approx(9.0, rel=1e-9)

    def test_never_exiting_loop_raises(self):
        cfg = ControlFlowGraph()
        cfg.block("a", si_usages={"S": 1})
        cfg.add_edge("a", "a", count=5)
        with pytest.raises(ValueError):
            expected_si_executions(cfg, "S")


class TestCollectSIStats:
    def test_bundles_all_measurements(self):
        stats = collect_si_stats(loopy(), "S")
        s = stats["entry"]
        assert s.probability == pytest.approx(0.9)
        assert s.expected_executions == pytest.approx(9.0, rel=1e-9)
        assert s.min_distance == pytest.approx(2.0)
        assert s.reachable()

    def test_unreachable_block_flagged(self):
        stats = collect_si_stats(branchy(), "S")
        assert not stats["miss"].reachable()

    def test_unknown_si_rejected(self):
        with pytest.raises(ValueError):
            collect_si_stats(branchy(), "NOPE")
