"""Whole-world snapshots: capture/restore fidelity and forward compat.

A snapshot taken after command ``seq`` must restore a *freshly built*
identical scenario to a state from which the run continues exactly as
the original did.  Unknown schema versions, foreign files and truncated
payloads must surface as the typed :class:`RecoveryError` — never a
``KeyError`` leaking from dict access.
"""

import json

import pytest

from repro.bench.harness import trace_signature
from repro.bench.suites import build_synthetic_library
from repro.recovery import (
    RECOVERY_KIND,
    RECOVERY_SCHEMA_VERSION,
    RecoveryError,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    restore_runtime,
    snapshot_runtime,
    write_snapshot,
)
from repro.runtime import RisppRuntime


@pytest.fixture()
def library():
    return build_synthetic_library()


def fresh_runtime(library, *, containers=5):
    return RisppRuntime(library, containers, core_mhz=100.0, optimize=True)


def run_prefix(rt, commands):
    """Drive a deterministic little scenario for ``commands`` steps."""
    plan = []
    now = 1_000
    plan.append(("forecast", ("SI0",), {"expected": 16.0}))
    for _ in range(30):
        plan.append(("execute_si", ("SI0",), {}))
    done = 0
    for op, args, kwargs in plan:
        if done >= commands:
            break
        if op == "forecast":
            rt.forecast(*args, now, **kwargs)
        else:
            now += rt.execute_si(*args, now, **kwargs)
        done += 1
    return now


class TestRoundTrip:
    def test_mid_run_state_restores_and_continues_identically(
        self, library, tmp_path
    ):
        reference = fresh_runtime(library)
        run_prefix(reference, 31)

        original = fresh_runtime(library)
        now = run_prefix(original, 12)
        snap = snapshot_runtime(original, seq=12, cycle=0, results=[None] * 12)
        path = write_snapshot(tmp_path, snap)

        restored = fresh_runtime(library)
        restore_runtime(restored, load_snapshot(path))
        assert trace_signature(restored.trace) == trace_signature(
            original.trace
        )
        # The restored world keeps evolving exactly like the original:
        # the driver clock resumes at the same point in both.
        for rt in (original, restored):
            t = now
            for _ in range(19):
                t += rt.execute_si("SI0", t)
        assert trace_signature(restored.trace) == trace_signature(
            original.trace
        )
        assert trace_signature(restored.trace) == trace_signature(
            reference.trace
        )

    def test_snapshot_is_versioned_and_kinded(self, library, tmp_path):
        rt = fresh_runtime(library)
        snap = snapshot_runtime(rt, seq=0, cycle=0, results=[])
        assert snap["schema_version"] == RECOVERY_SCHEMA_VERSION
        assert snap["kind"] == RECOVERY_KIND
        path = write_snapshot(tmp_path, snap)
        assert load_snapshot(path) == json.loads(path.read_text())

    def test_results_length_must_match_seq(self, library):
        rt = fresh_runtime(library)
        with pytest.raises(RecoveryError, match="results"):
            snapshot_runtime(rt, seq=3, cycle=0, results=[None])


class TestStoreListing:
    def test_list_and_latest_ordering(self, library, tmp_path):
        rt = fresh_runtime(library)
        for seq in (4, 2, 8):
            write_snapshot(
                tmp_path,
                snapshot_runtime(rt, seq=seq, cycle=0, results=[None] * seq),
            )
        assert [seq for seq, _ in list_snapshots(tmp_path)] == [2, 4, 8]
        assert latest_snapshot(tmp_path)[0] == 8
        # max_seq bounds the pick to snapshots the journal can replay onto.
        assert latest_snapshot(tmp_path, max_seq=7)[0] == 4
        assert latest_snapshot(tmp_path, max_seq=1) is None

    def test_empty_store_has_no_latest(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        assert list_snapshots(tmp_path) == []


class TestForwardCompatibility:
    """Unknown or damaged artifacts raise RecoveryError, not KeyError."""

    def make_store(self, library, tmp_path):
        rt = fresh_runtime(library)
        run_prefix(rt, 5)
        snap = snapshot_runtime(rt, seq=5, cycle=0, results=[None] * 5)
        return write_snapshot(tmp_path, snap)

    def test_unknown_schema_version(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = RECOVERY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(RecoveryError, match="schema"):
            load_snapshot(path)

    def test_foreign_kind(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        data = json.loads(path.read_text())
        data["kind"] = "some-other-artifact"
        path.write_text(json.dumps(data))
        with pytest.raises(RecoveryError):
            load_snapshot(path)

    def test_truncated_payload(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with pytest.raises(RecoveryError):
            load_snapshot(path)

    def test_missing_section(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        data = json.loads(path.read_text())
        del data["state"]
        path.write_text(json.dumps(data))
        with pytest.raises(RecoveryError):
            load_snapshot(path)

    def test_not_json_at_all(self, library, tmp_path):
        path = tmp_path / "snapshot-00000001.json"
        path.write_text("definitely not json")
        with pytest.raises(RecoveryError):
            load_snapshot(path)

    def test_config_mismatch_refuses_restore(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        other = fresh_runtime(library, containers=4)
        with pytest.raises(RecoveryError, match="containers"):
            restore_runtime(other, load_snapshot(path))

    def test_mangled_state_is_wrapped_not_leaked(self, library, tmp_path):
        path = self.make_store(library, tmp_path)
        data = json.loads(path.read_text())
        data["state"]["port"]["jobs"] = [{"bogus": True}]
        path.write_text(json.dumps(data))
        rt = fresh_runtime(library)
        with pytest.raises(RecoveryError, match="malformed"):
            restore_runtime(rt, load_snapshot(path))
