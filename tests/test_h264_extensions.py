"""Tests for the future-work MC/LF extension SIs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264 import SOFTWARE_CYCLES
from repro.apps.h264.extensions import (
    EXTENSION_SI_COUNTS,
    EXTENSION_SOFTWARE_CYCLES,
    EXTENSION_SW_CYCLES_PER_MB,
    RESIDUAL_CORE_OVERHEAD,
    build_extended_catalogue,
    build_extended_library,
    clip_pixel,
    deblock_block_edge,
    deblock_edge,
    extended_macroblock_cycles,
    interpolate_half_pel_row,
    mc_half_pel_block,
    sixtap_half_pel,
)

pixels = st.integers(0, 255)


class TestSixTap:
    def test_flat_region_is_preserved(self):
        assert sixtap_half_pel([80] * 6) == 80

    def test_linear_ramp_interpolates_midpoint(self):
        # On linear data the 6-tap filter returns the exact midpoint.
        assert sixtap_half_pel([0, 10, 20, 30, 40, 50]) == 25

    def test_clipping(self):
        assert sixtap_half_pel([255] * 6) == 255
        assert sixtap_half_pel([0, 255, 0, 0, 255, 0]) >= 0

    @given(arrays(np.int64, (6,), elements=pixels))
    def test_output_in_pixel_range(self, samples):
        assert 0 <= sixtap_half_pel(samples) <= 255

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            sixtap_half_pel([1, 2, 3])

    def test_row_interpolation_length(self):
        row = np.arange(13)
        assert interpolate_half_pel_row(row).shape == (8,)
        with pytest.raises(ValueError):
            interpolate_half_pel_row([1, 2, 3])

    def test_block_interpolation(self):
        block = np.tile(np.arange(9) * 20, (4, 1))
        out = mc_half_pel_block(block)
        assert out.shape == (4, 4)
        assert (out == out[0]).all()  # identical rows stay identical
        with pytest.raises(ValueError):
            mc_half_pel_block(np.zeros((3, 9)))


class TestDeblocking:
    def test_smooths_small_step(self):
        p, q = deblock_edge([100, 100, 100, 100], [120, 120, 120, 120])
        # Boundary samples move towards each other.
        assert p[3] > 100 and q[0] < 120
        assert abs(int(p[3]) - int(q[0])) < 20

    def test_real_edges_untouched(self):
        p, q = deblock_edge([0, 0, 0, 0], [255, 255, 255, 255])
        assert (p == 0).all() and (q == 255).all()

    def test_flat_region_unchanged(self):
        p, q = deblock_edge([90] * 4, [90] * 4)
        assert (p == 90).all() and (q == 90).all()

    @given(
        arrays(np.int64, (4,), elements=pixels),
        arrays(np.int64, (4,), elements=pixels),
    )
    @settings(max_examples=60)
    def test_output_stays_in_pixel_range(self, p, q):
        fp, fq = deblock_edge(p, q)
        assert fp.min() >= 0 and fp.max() <= 255
        assert fq.min() >= 0 and fq.max() <= 255

    @given(
        arrays(np.int64, (4,), elements=pixels),
        arrays(np.int64, (4,), elements=pixels),
    )
    @settings(max_examples=60)
    def test_boundary_step_change_is_bounded(self, p, q):
        # The delta term is clamped to +-6, so the boundary step can move
        # by at most 12 (both samples shift by delta); large steps (real
        # edges) are rejected before filtering and never move at all.
        fp, fq = deblock_edge(p, q)
        before = abs(int(p[3]) - int(q[0]))
        after = abs(int(fp[3]) - int(fq[0]))
        assert after <= before + 12
        if before >= 40:  # alpha threshold: a real edge stays untouched
            assert after == before

    def test_block_edge_filters_rowwise(self):
        p = np.full((4, 4), 100)
        q = np.full((4, 4), 118)
        fp, fq = deblock_block_edge(p, q)
        assert (fp[:, 3] > 100).all()
        with pytest.raises(ValueError):
            deblock_block_edge(np.zeros((2, 4)), q)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            deblock_edge([0] * 4, [0] * 4, alpha=0)

    def test_clip_pixel(self):
        assert clip_pixel(-5) == 0
        assert clip_pixel(260) == 255
        assert clip_pixel(128) == 128


class TestExtendedLibrary:
    def test_catalogue_adds_two_atoms(self):
        cat = build_extended_catalogue()
        assert "SixTap" in cat and "Clip" in cat
        assert cat.get("SixTap").reconfigurable

    def test_library_contains_generated_sis(self):
        lib = build_extended_library()
        assert {"MC_HPEL", "LF_EDGE"} <= set(lib.names())
        for name in ("MC_HPEL", "LF_EDGE"):
            si = lib.get(name)
            assert len(si.implementations) >= 3
            assert si.max_expected_speedup() > 20
            # Auto-generated catalogue uses only the extension atoms.
            for m in si.molecules():
                assert set(m.kinds_used()) <= {"SixTap", "Clip"}

    def test_table2_sis_unchanged(self):
        lib = build_extended_library()
        assert lib.get("SATD_4x4").software_cycles == 544
        assert len(lib.get("SATD_4x4").implementations) == 15

    def test_carve_out_is_latency_neutral(self):
        # All extension SIs in software == the original Fig. 12 Opt. SW.
        sw = {
            "SATD_4x4": SOFTWARE_CYCLES["SATD_4x4"],
            "DCT_4x4": SOFTWARE_CYCLES["DCT_4x4"],
            "HT_4x4": SOFTWARE_CYCLES["HT_4x4"],
            **EXTENSION_SOFTWARE_CYCLES,
        }
        assert extended_macroblock_cycles(sw) == 201_065

    def test_overhead_accounting(self):
        assert EXTENSION_SW_CYCLES_PER_MB == sum(
            EXTENSION_SI_COUNTS[n] * EXTENSION_SOFTWARE_CYCLES[n]
            for n in EXTENSION_SI_COUNTS
        )
        assert RESIDUAL_CORE_OVERHEAD + EXTENSION_SW_CYCLES_PER_MB == 53_695
        assert RESIDUAL_CORE_OVERHEAD > 0

    def test_accelerating_extensions_lifts_amdahl_ceiling(self):
        lib = build_extended_library()
        base = {
            "SATD_4x4": 18,
            "DCT_4x4": 15,
            "HT_4x4": 17,
            **EXTENSION_SOFTWARE_CYCLES,
        }
        ceiling = extended_macroblock_cycles(base)
        accelerated = dict(base)
        accelerated["MC_HPEL"] = lib.get("MC_HPEL").fastest_molecule().cycles
        accelerated["LF_EDGE"] = lib.get("LF_EDGE").fastest_molecule().cycles
        lifted = extended_macroblock_cycles(accelerated)
        # The new hot spots unlock a large further gain.
        assert lifted < ceiling - 20_000
