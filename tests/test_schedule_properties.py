"""Property tests for the dataflow list scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AtomSpace, layered_dataflow, list_schedule

KINDS = ["A", "B", "C"]
SPACE = AtomSpace(KINDS)


@st.composite
def random_layered(draw):
    n_stages = draw(st.integers(1, 4))
    stages = []
    for i in range(n_stages):
        kind = KINDS[draw(st.integers(0, len(KINDS) - 1))]
        executions = draw(st.integers(1, 6))
        latency = draw(st.integers(1, 3))
        stages.append((kind, executions, latency))
    return layered_dataflow(stages)


@st.composite
def dataflow_and_molecule(draw):
    df = draw(random_layered())
    needed = df.executions_per_kind()
    counts = {
        kind: draw(st.integers(1, max(needed[kind], 1)))
        for kind in needed
    }
    return df, SPACE.molecule(counts)


@settings(max_examples=80, deadline=None)
@given(dataflow_and_molecule())
def test_makespan_bounds(bundle):
    """critical path <= makespan <= serial execution."""
    df, molecule = bundle
    schedule = list_schedule(df, molecule)
    serial = sum(op.latency for op in df)
    assert df.critical_path_cycles() <= schedule.makespan <= serial


@settings(max_examples=80, deadline=None)
@given(dataflow_and_molecule())
def test_dependencies_and_capacity_respected(bundle):
    df, molecule = bundle
    schedule = list_schedule(df, molecule)
    start = {p.op_id: p.start for p in schedule.placements}
    finish = {p.op_id: p.finish for p in schedule.placements}
    # Every operation scheduled exactly once.
    assert set(start) == {op.op_id for op in df}
    # Dependencies never violated.
    for op in df:
        for dep in op.deps:
            assert start[op.op_id] >= finish[dep]
    # No two operations overlap on one atom instance.
    for lane in schedule.by_instance().values():
        for earlier, later in zip(lane, lane[1:]):
            assert later.start >= earlier.finish
    # No op runs on an instance index beyond the molecule's count.
    for p in schedule.placements:
        assert 0 <= p.instance < molecule.count(p.kind)


@settings(max_examples=60, deadline=None)
@given(random_layered())
def test_more_atoms_never_slower(df):
    needed = df.executions_per_kind()
    small = SPACE.molecule({k: 1 for k in needed})
    big = SPACE.molecule(dict(needed))
    small_span = list_schedule(df, small).makespan
    big_span = list_schedule(df, big).makespan
    assert big_span <= small_span
    # Full parallelism reaches the critical path exactly.
    assert big_span == df.critical_path_cycles()


@settings(max_examples=60, deadline=None)
@given(dataflow_and_molecule(), st.integers(0, 5))
def test_issue_overhead_is_additive(bundle, overhead):
    df, molecule = bundle
    base = list_schedule(df, molecule).makespan
    shifted = list_schedule(df, molecule, issue_overhead=overhead).makespan
    assert shifted == base + overhead
