"""Unit tests for the Forecast Decision Function (Fig. 4)."""

import math

import pytest

from repro.forecast import ForecastDecisionFunction, rotation_offset


@pytest.fixture()
def fdf() -> ForecastDecisionFunction:
    return ForecastDecisionFunction(
        t_rot=1000.0,
        t_sw=544.0,
        t_hw=24.0,
        rotation_energy=5200.0,
        alpha=1.0,
    )


class TestRotationOffset:
    def test_break_even_formula(self):
        # offset = alpha * E_rot / (T_sw - T_hw)
        assert rotation_offset(1.0, 520.0, 544.0, 24.0) == pytest.approx(1.0)
        assert rotation_offset(2.0, 520.0, 544.0, 24.0) == pytest.approx(2.0)

    def test_alpha_scales_linearly(self):
        base = rotation_offset(1.0, 1000.0, 100.0, 10.0)
        assert rotation_offset(3.0, 1000.0, 100.0, 10.0) == pytest.approx(3 * base)

    def test_rejects_hw_not_faster(self):
        with pytest.raises(ValueError):
            rotation_offset(1.0, 100.0, 10.0, 10.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            rotation_offset(-1.0, 100.0, 20.0, 10.0)
        with pytest.raises(ValueError):
            rotation_offset(1.0, -100.0, 20.0, 10.0)


class TestFDFShape:
    def test_sweet_spot_demands_only_offset(self, fdf):
        lo, hi = fdf.sweet_spot()
        assert fdf(1.0, lo) == pytest.approx(fdf.offset)
        assert fdf(1.0, (lo + hi) / 2) == pytest.approx(fdf.offset)
        assert fdf(1.0, hi) == pytest.approx(fdf.offset)

    def test_wall_below_rotation_time(self, fdf):
        # Closer than one rotation time the demand explodes (Fig. 4 left wall).
        assert fdf(1.0, 0.1 * fdf.t_rot) > fdf(1.0, 0.5 * fdf.t_rot) > fdf.offset

    def test_rise_beyond_far_horizon(self, fdf):
        far = fdf.far_horizon * fdf.t_rot
        assert fdf(1.0, 100 * fdf.t_rot) > fdf(1.0, 20 * fdf.t_rot) > fdf.offset

    def test_bathtub_monotonicity(self, fdf):
        # decreasing up to T_rot, flat to 10 T_rot, increasing after.
        ts = [0.1, 0.3, 0.6, 1.0]
        values = [fdf(1.0, t * fdf.t_rot) for t in ts]
        assert values == sorted(values, reverse=True)
        ts = [10.0, 25.1, 63.1, 100.0]
        values = [fdf(1.0, t * fdf.t_rot) for t in ts]
        assert values == sorted(values)

    def test_lower_probability_demands_more(self, fdf):
        t = 0.5 * fdf.t_rot
        assert fdf(0.4, t) > fdf(0.7, t) > fdf(1.0, t)

    def test_probability_scaling_inverse(self, fdf):
        t = 0.5 * fdf.t_rot
        extra_full = fdf(1.0, t) - fdf.offset
        extra_40 = fdf(0.4, t) - fdf.offset
        assert extra_40 == pytest.approx(extra_full / 0.4)

    def test_infinite_distance_is_never_candidate(self, fdf):
        assert math.isinf(fdf(1.0, math.inf))

    def test_invalid_inputs(self, fdf):
        with pytest.raises(ValueError):
            fdf(0.0, 100.0)
        with pytest.raises(ValueError):
            fdf(1.5, 100.0)
        with pytest.raises(ValueError):
            fdf(0.5, -1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ForecastDecisionFunction(t_rot=0, t_sw=10, t_hw=1)
        with pytest.raises(ValueError):
            ForecastDecisionFunction(t_rot=10, t_sw=1, t_hw=1)
        with pytest.raises(ValueError):
            ForecastDecisionFunction(t_rot=10, t_sw=10, t_hw=1, far_horizon=0)


class TestSurface:
    def test_grid_shape_matches_fig4_axes(self, fdf):
        # Fig. 4: log-spaced t/T_rot in [0.1, 100], p in {100, 70, 40}%.
        distances = [fdf.t_rot * (0.1 * (10 ** (i / 5))) for i in range(16)]
        probs = [1.0, 0.7, 0.4]
        surface = fdf.surface(distances, probs)
        assert len(surface) == 3
        assert all(len(row) == 16 for row in surface)

    def test_surface_rows_ordered_by_probability(self, fdf):
        distances = [fdf.t_rot * x for x in (0.2, 1.5, 50.0)]
        s = fdf.surface(distances, [1.0, 0.4])
        assert all(lo >= hi for hi, lo in zip(s[0], s[1]))

    def test_fig4_value_range(self, fdf):
        # The plotted demand tops out around 500 executions near t=0.1 T_rot.
        worst = fdf(0.4, 0.1 * fdf.t_rot)
        assert 200 <= worst <= 2000
