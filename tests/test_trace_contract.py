"""The trace time-ordering contract and lazy detail construction.

The trace is the ground truth every bench and figure reads, so its
invariants are enforced at append time: cycles are non-negative and
non-decreasing.  The second half fuzzes the run-time manager with
arbitrary interleavings of ``forecast`` / ``execute_si`` /
``fail_container`` and asserts the recorded trace always honours the
contract — and that the optimized runtime produces the exact same event
sequence as the ``optimize=False`` baseline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import trace_signature
from repro.core import AtomCatalogue, AtomKind, MoleculeImpl, SILibrary, SpecialInstruction
from repro.runtime import RisppRuntime
from repro.sim import Event, EventKind, Trace


class TestTraceContract:
    def test_negative_cycle_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="negative"):
            trace.record(-1, EventKind.FORECAST)
        # The failed append must not corrupt the log.
        assert len(trace) == 0
        assert trace.last_cycle == 0

    def test_negative_cycle_rejected_even_as_first_event(self):
        # Regression: the old guard only fired when the trace already had
        # events, so a leading negative timestamp slipped through.
        trace = Trace()
        with pytest.raises(ValueError):
            trace.record(-7, EventKind.SI_EXECUTED, si="HT")

    def test_out_of_order_append_rejected(self):
        trace = Trace()
        trace.record(100, EventKind.FORECAST, si="HT")
        with pytest.raises(ValueError, match="out-of-order"):
            trace.record(99, EventKind.SI_EXECUTED, si="HT")
        assert len(trace) == 1
        assert trace.last_cycle == 100

    def test_equal_cycles_allowed(self):
        trace = Trace()
        trace.record(10, EventKind.FORECAST, si="HT")
        trace.record(10, EventKind.ROTATION_REQUESTED)
        trace.record(10, EventKind.SI_EXECUTED, si="HT")
        assert [e.cycle for e in trace] == [10, 10, 10]

    def test_record_lazy_defers_and_caches(self):
        trace = Trace()
        calls = []

        def factory():
            calls.append(1)
            return {"mode": "HW", "cycles": 12}

        event = trace.record_lazy(5, EventKind.SI_EXECUTED, factory, si="HT")
        assert calls == []  # nothing resolved yet
        assert event.detail == {"mode": "HW", "cycles": 12}
        assert event.detail is event.detail  # cached, not rebuilt
        assert calls == [1]

    def test_lazy_event_equals_eager_event(self):
        eager = Event(5, EventKind.SI_EXECUTED, "t", "HT", {"cycles": 12})
        lazy = Event(5, EventKind.SI_EXECUTED, "t", "HT", lambda: {"cycles": 12})
        assert lazy == eager
        assert eager == lazy

    def test_lazy_contract_still_enforced(self):
        trace = Trace()
        trace.record(50, EventKind.FORECAST)
        with pytest.raises(ValueError, match="out-of-order"):
            trace.record_lazy(49, EventKind.SI_EXECUTED, dict)

    def test_queries_without_detail_filter_never_materialize(self):
        # Regression: accessor scans must stay on the slot attributes so
        # PR 2's lazy-detail win survives analysis workloads — a kind- or
        # si-keyed query has no business resolving detail factories.
        trace = Trace()
        constructions = []

        def factory(i):
            def build():
                constructions.append(i)
                return {"mode": "HW", "cycles": 12, "container": i % 3}

            return build

        for i in range(20):
            trace.record_lazy(
                i, EventKind.SI_EXECUTED, factory(i), task="t", si="HT"
            )
            trace.record_lazy(
                i, EventKind.ROTATION_REQUESTED, factory(100 + i), task="t"
            )
        assert len(trace.of_kind(EventKind.SI_EXECUTED)) == 20
        assert len(trace.for_task("t")) == 40
        assert len(trace.for_si("HT")) == 20
        found = trace.first(EventKind.ROTATION_REQUESTED)
        assert found is not None and found.cycle == 0
        assert trace.first(EventKind.CONTAINER_FAILED) is None
        assert constructions == []  # nothing materialized
        # A detail filter materializes only same-kind events up to the
        # first match — never the other kind's details.
        match = trace.first(EventKind.ROTATION_REQUESTED, container=2)
        assert match is not None and match.cycle == 1  # 101 % 3 == 2
        assert constructions == [100, 101]

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    def test_monotone_sequences_always_accepted(self, deltas):
        trace = Trace()
        now = 0
        for delta in deltas:
            now += delta
            trace.record(now, EventKind.TASK_STEP, task="fuzz")
        assert [e.cycle for e in trace] == sorted(e.cycle for e in trace)
        assert trace.last_cycle == now


def _fuzz_library() -> SILibrary:
    """Two-SI library with overlapping atom demand (competition included)."""
    catalogue = AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713),
            AtomKind("Transform", bitstream_bytes=59_353),
            AtomKind("SATD", bitstream_bytes=58_141),
        ]
    )
    space = catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
        ],
    )
    return SILibrary(catalogue, [ht, satd])


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["forecast", "execute", "fail", "advance"]),
        st.sampled_from(["HT", "SATD"]),
        st.integers(min_value=0, max_value=200_000),  # time delta
        st.integers(min_value=0, max_value=2),  # container / expected scale
    ),
    min_size=1,
    max_size=25,
)


class TestRuntimeInterleavings:
    """Any interleaving yields a monotone, non-negative, cache-equal trace."""

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_interleavings_keep_trace_monotone_and_caches_sound(self, ops):
        library = _fuzz_library()
        optimized = RisppRuntime(library, 3, core_mhz=100.0, optimize=True)
        baseline = RisppRuntime(library, 3, core_mhz=100.0, optimize=False)
        now = 0
        for op, si, delta, scale in ops:
            now += delta
            for rt in (optimized, baseline):
                if op == "forecast":
                    rt.forecast(si, now, expected=float(scale * 50))
                elif op == "execute":
                    rt.execute_si(si, now)
                elif op == "advance":
                    rt.advance(now)
                else:  # fail one of the three containers (idempotent)
                    rt.fail_container(scale, now)

        for rt in (optimized, baseline):
            cycles = [e.cycle for e in rt.trace]
            assert all(c >= 0 for c in cycles)
            assert cycles == sorted(cycles)
            # The runtime stays functional whatever happened to the fabric.
            assert rt.execute_si("HT", now + 1) > 0

        # The hot-path caches must never change the event semantics.
        assert trace_signature(optimized.trace) == trace_signature(
            baseline.trace
        )
        assert optimized.stats.si_cycles == baseline.stats.si_cycles
        assert optimized.stats.rotations_requested == (
            baseline.stats.rotations_requested
        )
