"""Chaos campaigns: ``run_chaos_suite`` and ``python -m repro chaos``.

Acceptance contract: a chaos run is deterministic in its seed (the JSON
report is byte-identical across invocations), its trace replays clean
through rispp-verify including the quarantine/repair rules, its MTTR
never exceeds the static repair bound, and the run stays functionally
identical to the fault-free baseline.
"""

import json

import pytest

from repro.cli import main
from repro.faults import CHAOS_SUITES, chaos_ok, run_chaos_suite
from repro.faults.chaos import render_chaos_report


@pytest.fixture(scope="module")
def synthetic_report():
    return run_chaos_suite("synthetic", seed=7, quick=True)


class TestChaosDriver:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos suite"):
            run_chaos_suite("mp3", seed=0)

    def test_suite_list_matches_verifier(self):
        assert CHAOS_SUITES == ("aes", "h264", "synthetic")

    def test_report_schema(self, synthetic_report):
        report = synthetic_report
        assert report["kind"] == "rispp-chaos-report"
        assert report["suite"] == "synthetic"
        assert report["seed"] == 7
        for key in (
            "horizon_cycles", "schedule", "resilience",
            "repair_bound_cycles", "mttr_within_bound", "trace",
            "feasibility", "functional", "totals",
        ):
            assert key in report, key
        # Determinism demands a timestamp-free report.
        assert "timestamp_utc" not in json.dumps(report)

    def test_report_is_deterministic(self, synthetic_report):
        again = run_chaos_suite("synthetic", seed=7, quick=True)
        a = json.dumps(synthetic_report, indent=2, sort_keys=True)
        b = json.dumps(again, indent=2, sort_keys=True)
        assert a == b

    def test_seed_changes_the_campaign(self, synthetic_report):
        other = run_chaos_suite("synthetic", seed=8, quick=True)
        assert other["schedule"] != synthetic_report["schedule"]

    def test_trace_verifies_and_passes(self, synthetic_report):
        assert synthetic_report["trace"]["verified"] is True
        assert synthetic_report["trace"]["findings"] == []
        assert synthetic_report["mttr_within_bound"] is True
        assert synthetic_report["functional"]["match"] is True
        assert synthetic_report["open_episodes"] == 0
        assert chaos_ok(synthetic_report)

    def test_h264_campaign_repairs_within_bound(self):
        # Seed 5 lands a transient on a loaded container: full
        # detect -> quarantine -> repair cycle, MTTR inside the bound.
        report = run_chaos_suite("h264", seed=5, quick=True)
        res = report["resilience"]
        assert res["faults_detected"] >= 1
        assert res["containers_repaired"] >= 1
        assert 0 < res["mttr_cycles_max"] <= report["repair_bound_cycles"]
        assert res["degraded_cycles"] > 0
        assert report["trace"]["verified"] is True
        assert chaos_ok(report)

    def test_aes_campaign_functionally_clean_under_high_rate(self):
        # The AES program is short; a high rate forces faults into it.
        # Whatever happens to the fabric, the ciphertext must not change.
        report = run_chaos_suite("aes", seed=3, quick=True, fault_rate=200.0)
        assert report["resilience"]["faults_injected"] >= 1
        assert report["functional"]["checked"] is True
        assert report["functional"]["match"] is True
        assert report["trace"]["verified"] is True
        assert chaos_ok(report)

    def test_render_text_report(self, synthetic_report):
        text = render_chaos_report(synthetic_report)
        assert "chaos suite 'synthetic'" in text
        assert "MTTR" in text
        assert "verdict: PASS" in text


class TestChaosCli:
    def test_json_output_byte_identical_across_runs(self, capsys):
        argv = [
            "chaos", "--suite", "synthetic", "--seed", "7",
            "--quick", "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["suite"] == "synthetic"
        assert payload["resilience"]["faults_injected"] >= 1

    def test_text_output_and_exit_zero(self, capsys):
        assert main([
            "chaos", "--suite", "synthetic", "--seed", "3", "--quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_json_file_emission(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main([
            "chaos", "--suite", "synthetic", "--seed", "7", "--quick",
            "--json", str(path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["kind"] == "rispp-chaos-report"
        assert payload["seed"] == 7

    def test_bad_fault_rate_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--fault-rate", "-1"])
        assert exc.value.code == 2

    def test_unknown_suite_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--suite", "mp3"])
        assert exc.value.code == 2

    def test_chaos_listed_in_usage(self, capsys):
        assert main([]) == 0
        assert "chaos" in capsys.readouterr().out
