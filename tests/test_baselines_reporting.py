"""Tests for the ASIP/software baselines and the text renderers."""

import pytest

from repro.baselines import ExtensibleProcessor, SoftwareProcessor
from repro.core import ForecastedSI
from repro.reporting import render_bars, render_series, render_surface, render_table


@pytest.fixture()
def workload(mini_library):
    return [
        ForecastedSI(mini_library.get("HT"), 100),
        ForecastedSI(mini_library.get("SATD"), 400),
    ]


class TestSoftwareProcessor:
    def test_always_software(self, mini_library):
        sw = SoftwareProcessor(mini_library)
        assert sw.si_cycles("HT") == 298
        assert sw.execute_workload({"HT": 2, "SATD": 1}) == 2 * 298 + 544

    def test_negative_counts_rejected(self, mini_library):
        with pytest.raises(ValueError):
            SoftwareProcessor(mini_library).execute_workload({"HT": -1})


class TestExtensibleProcessor:
    def test_zero_budget_equals_software(self, mini_library, workload):
        asip = ExtensibleProcessor.design(mini_library, workload, 0)
        sw = SoftwareProcessor(mini_library)
        profile = {"HT": 100, "SATD": 400}
        assert asip.execute_workload(profile) == sw.execute_workload(profile)

    def test_large_budget_accelerates_everything(self, mini_library, workload):
        asip = ExtensibleProcessor.design(mini_library, workload, 100)
        assert asip.si_cycles("HT") < 298
        assert asip.si_cycles("SATD") < 544

    def test_tight_budget_prioritises_hot_si(self, mini_library, workload):
        # SATD dominates the workload; a tight budget goes to it first.
        asip = ExtensibleProcessor.design(mini_library, workload, 4)
        assert asip.si_cycles("SATD") < 544

    def test_dedicated_area_is_sum_not_supremum(self, mini_library, workload):
        asip = ExtensibleProcessor.design(mini_library, workload, 100)
        per_si = sum(
            abs(mini_library.restricted_to_reconfigurable(i.molecule))
            for i in asip.chosen.values()
            if i is not None
        )
        assert asip.dedicated_atoms == per_si
        # The shared-area supremum is never larger than dedicated area.
        assert abs(asip.area_molecule) <= asip.dedicated_atoms

    def test_share_atoms_mode_selects_at_least_as_much(self, mini_library, workload):
        dedicated = ExtensibleProcessor.design(mini_library, workload, 6)
        shared = ExtensibleProcessor.design(
            mini_library, workload, 6, share_atoms=True
        )
        profile = {"HT": 100, "SATD": 400}
        assert shared.execute_workload(profile) <= dedicated.execute_workload(profile)

    def test_unselected_si_runs_software(self, mini_library, workload):
        asip = ExtensibleProcessor.design(mini_library, workload, 4)
        # Whatever was not selected must fall back to software cycles.
        for name, impl in asip.chosen.items():
            if impl is None:
                assert asip.si_cycles(name) == mini_library.get(name).software_cycles

    def test_invalid_budget(self, mini_library, workload):
        with pytest.raises(ValueError):
            ExtensibleProcessor.design(mini_library, workload, -1)


class TestRenderers:
    def test_table_alignment_and_content(self):
        text = render_table(
            ["SI", "cycles"], [["SATD_4x4", 544], ["HT_4x4", 298]], title="t"
        )
        assert "SATD_4x4" in text and "544" in text and text.startswith("t")
        assert text.count("+-") >= 3

    def test_table_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])
        with pytest.raises(ValueError):
            render_table([], [])

    def test_bars_log_scale(self):
        text = render_bars(
            {"Opt. SW": 544, "4 Atoms": 24}, log_scale=True, title="fig11"
        )
        assert "fig11" in text
        # log scale keeps the small bar visible
        lines = text.splitlines()
        assert all("#" in line for line in lines[1:])

    def test_bars_validation(self):
        with pytest.raises(ValueError):
            render_bars({})
        with pytest.raises(ValueError):
            render_bars({"x": -1})
        with pytest.raises(ValueError):
            render_bars({"x": 1}, width=0)

    def test_series(self):
        text = render_series(
            {"SATD_4x4": [(5, 24), (18, 12)]}, title="fig13", x_label="atoms"
        )
        assert "SATD_4x4" in text and "(5, 24)" in text

    def test_surface_shading(self):
        grid = [[0.0, 5.0, 10.0], [1.0, 2.0, 3.0]]
        text = render_surface(grid, ["p=1.0", "p=0.4"], ["a", "b", "c"])
        assert "p=1.0" in text
        assert "@" in text  # the max cell uses the densest character

    def test_surface_validation(self):
        with pytest.raises(ValueError):
            render_surface([], [], [])
        with pytest.raises(ValueError):
            render_surface([[1.0]], ["a", "b"], ["c"])
