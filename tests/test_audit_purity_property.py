"""rispp-audit's backend-purity verdict cross-checked against runtime.

AUD009/AUD010 statically claim that every ``ComputeBackend`` kernel of
``repro.core.backend`` treats its arguments as immutable and touches no
undeclared state.  A static claim that quietly diverged from runtime
behaviour would be worse than no claim, so hypothesis drives the real
kernels over random libraries/workloads and asserts *observed*
non-mutation exactly where the analyzer claims purity.
"""

import copy

import pytest
from hypothesis import given, settings

from repro.analysis.audit import package_root, run_audit
from repro.core.backend import available_backends, get_backend
from tests.test_backend_equivalence import library_and_workload

KERNEL_CLASSES = ("ReferenceBackend", "NumpyBackend")


def audited_impure_kernels():
    """``Class.method`` symbols the analyzer flags as impure."""
    backend_py = package_root() / "core" / "backend.py"
    result = run_audit(backend_py, baseline=None)
    return {
        str(d.context["symbol"])
        for d in result.report.diagnostics
        if d.rule_id in ("AUD009", "AUD010")
    }


def library_fingerprint(library):
    return tuple(
        (
            si.name,
            si.software_cycles,
            tuple(
                (impl.molecule.counts, impl.cycles, impl.label)
                for impl in si.implementations
            ),
        )
        for si in library
    )


def requests_fingerprint(requests):
    return tuple((f.si.name, f.expected_executions) for f in requests)


def exercise_kernels(backend, library, requests, budget):
    """Call every ComputeBackend kernel once on the given inputs."""
    space = library.catalogue.space
    dim = space.dimension
    rows = [list(impl.molecule.counts) for si in library for impl in si.implementations]
    rows_snapshot = copy.deepcopy(rows)
    available = [1] * dim

    backend.sup(rows, dim)
    backend.inf(rows)
    backend.residual(rows, available)
    backend.determinants(rows)
    atoms = [sum(r) for r in rows]
    cycles = list(range(1, len(rows) + 1))
    backend.pareto_mask(atoms, cycles)
    backend.greedy_choose(library, requests, budget, space.zero())
    backend.exhaustive_choose(library, requests, budget)

    assert rows == rows_snapshot, "a lattice kernel mutated its row input"
    assert available == [1] * dim, "residual mutated its available vector"


class TestStaticVerdict:
    def test_audit_claims_every_shipped_kernel_pure(self):
        """The analyzer's claim this module cross-checks at runtime."""
        impure = audited_impure_kernels()
        assert not any(
            symbol.split(".")[0] in KERNEL_CLASSES for symbol in impure
        ), impure


@settings(max_examples=40, deadline=None)
@given(library_and_workload())
def test_reference_kernels_do_not_mutate_inputs(bundle):
    library, requests, budget = bundle
    before_lib = library_fingerprint(library)
    before_req = requests_fingerprint(requests)
    exercise_kernels(get_backend("reference"), library, requests, budget)
    assert library_fingerprint(library) == before_lib
    assert requests_fingerprint(requests) == before_req


@pytest.mark.skipif(
    "numpy" not in available_backends(), reason="numpy not installed"
)
@settings(max_examples=40, deadline=None)
@given(library_and_workload())
def test_numpy_kernels_do_not_mutate_inputs(bundle):
    library, requests, budget = bundle
    before_lib = library_fingerprint(library)
    before_req = requests_fingerprint(requests)
    exercise_kernels(get_backend("numpy"), library, requests, budget)
    assert library_fingerprint(library) == before_lib
    assert requests_fingerprint(requests) == before_req
