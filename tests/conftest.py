"""Shared fixtures: a small SI library and profiled CFGs used across tests."""

import pytest

from repro.cfg import ControlFlowGraph
from repro.core import (
    AtomCatalogue,
    AtomKind,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
)


@pytest.fixture()
def mini_catalogue() -> AtomCatalogue:
    """Load is static; Pack/Transform/SATD rotate through containers."""
    return AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713),
            AtomKind("Transform", bitstream_bytes=59_353),
            AtomKind("SATD", bitstream_bytes=58_141),
        ]
    )


@pytest.fixture()
def mini_library(mini_catalogue) -> SILibrary:
    space = mini_catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
            MoleculeImpl(space.molecule({"Load": 4, "Pack": 4, "Transform": 4}), 8),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
            MoleculeImpl(
                space.molecule({"Load": 2, "Pack": 1, "Transform": 2, "SATD": 1}), 18
            ),
            MoleculeImpl(
                space.molecule({"Load": 4, "Pack": 4, "Transform": 4, "SATD": 2}), 12
            ),
        ],
    )
    return SILibrary(mini_catalogue, [ht, satd])


@pytest.fixture()
def hotspot_cfg() -> ControlFlowGraph:
    """A two-hot-spot program with warm-up blocks providing rotation lead time.

    ``init -> warmA -> loopA(SATD x100) -> mid -> warmB -> loopB(HT x50) -> end``

    With a rotation time of ~50 cycles the natural FC candidates are
    ``init`` for SATD (120 cycles of warmA ahead of the hot loop) and
    ``mid`` for HT (90 cycles of warmB ahead); blocks directly preceding a
    hot loop are too close (distance 0), blocks before the *other* loop
    are too far (thousands of cycles).
    """
    cfg = ControlFlowGraph()
    cfg.block("init", cycles=50)
    cfg.block("warmA", cycles=120)
    cfg.block("loopA", cycles=100, si_usages={"SATD": 1})
    cfg.block("mid", cycles=30)
    cfg.block("warmB", cycles=90)
    cfg.block("loopB", cycles=80, si_usages={"HT": 1})
    cfg.block("end", cycles=10)
    cfg.add_edge("init", "warmA", count=1)
    cfg.add_edge("warmA", "loopA", count=1)
    cfg.add_edge("loopA", "loopA", count=99)
    cfg.add_edge("loopA", "mid", count=1)
    cfg.add_edge("mid", "warmB", count=1)
    cfg.add_edge("warmB", "loopB", count=1)
    cfg.add_edge("loopB", "loopB", count=49)
    cfg.add_edge("loopB", "end", count=1)
    cfg.set_profile(
        {
            "init": 1,
            "warmA": 1,
            "loopA": 100,
            "mid": 1,
            "warmB": 1,
            "loopB": 50,
            "end": 1,
        }
    )
    return cfg
