"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.parametrize(
        "name", ["fig1", "fig4", "fig11", "fig12", "fig13", "table1", "table2"]
    )
    def test_fast_experiments_render(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3

    def test_fig11_contains_paper_points(self, capsys):
        main(["fig11"])
        out = capsys.readouterr().out
        for value in ("544", "488", "298", "24", "20", "18"):
            assert value in out

    def test_fig12_reports_deviation(self, capsys):
        main(["fig12"])
        out = capsys.readouterr().out
        assert "201,065" in out and "%" in out

    def test_table2_has_30_molecules(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        data_rows = [
            line
            for line in out.splitlines()
            if line.startswith("|") and "SI" not in line.split("|")[1]
        ]
        assert len(data_rows) == 30

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "fig99" in err
        assert "fig6" in err  # the close-match hint

    def test_experiment_rejects_extra_arguments(self, capsys):
        assert main(["fig1", "--bogus"]) == 2
        assert "unexpected arguments" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "usage:" in capsys.readouterr().out

    @pytest.mark.parametrize("name", [*EXPERIMENTS, "list"])
    def test_every_subcommand_smokes(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()


class TestLintCommand:
    def test_lint_text_exits_zero_on_shipped_artifacts(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "rispp-lint:" in out

    def test_lint_json_round_trips(self, capsys):
        assert main(["lint", "--format", "json", "--subject", "h264"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["exit_code"] == 0
        assert {f["rule_id"] for f in payload["findings"]} == set(
            payload["summary"]["rule_ids"]
        )

    def test_lint_subject_filter(self, capsys):
        assert main(["lint", "--subject", "aes"]) == 0
        out = capsys.readouterr().out
        assert "h264" not in out
