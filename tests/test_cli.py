"""Tests for the command-line interface."""

import json

import pytest

from repro.analysis.rules import RULES, families, rules_of_family
from repro.cli import EXPERIMENTS, TOOL_FAMILIES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.parametrize(
        "name", ["fig1", "fig4", "fig11", "fig12", "fig13", "table1", "table2"]
    )
    def test_fast_experiments_render(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3

    def test_fig11_contains_paper_points(self, capsys):
        main(["fig11"])
        out = capsys.readouterr().out
        for value in ("544", "488", "298", "24", "20", "18"):
            assert value in out

    def test_fig12_reports_deviation(self, capsys):
        main(["fig12"])
        out = capsys.readouterr().out
        assert "201,065" in out and "%" in out

    def test_table2_has_30_molecules(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        data_rows = [
            line
            for line in out.splitlines()
            if line.startswith("|") and "SI" not in line.split("|")[1]
        ]
        assert len(data_rows) == 30

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "fig99" in err
        assert "fig6" in err  # the close-match hint

    def test_unknown_command_usage_lists_audit(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        for tool in ("lint", "verify", "explore", "audit"):
            assert tool in err

    def test_experiment_rejects_extra_arguments(self, capsys):
        assert main(["fig1", "--bogus"]) == 2
        assert "unexpected arguments" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "usage:" in capsys.readouterr().out

    @pytest.mark.parametrize("name", [*EXPERIMENTS, "list"])
    def test_every_subcommand_smokes(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()


class TestLintCommand:
    def test_lint_text_exits_zero_on_shipped_artifacts(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "rispp-lint:" in out

    def test_lint_json_round_trips(self, capsys):
        assert main(["lint", "--format", "json", "--subject", "h264"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["exit_code"] == 0
        assert {f["rule_id"] for f in payload["findings"]} == set(
            payload["summary"]["rule_ids"]
        )

    def test_lint_subject_filter(self, capsys):
        assert main(["lint", "--subject", "aes"]) == 0
        out = capsys.readouterr().out
        assert "h264" not in out


class TestToolExitCodes:
    """Bad arguments must exit 2 (argparse convention), not crash or run."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["chaos", "--suite", "nope"],
            ["chaos", "--fault-rate", "-1"],
            ["chaos", "--scrub-period", "abc"],
            ["metrics", "--suite", "nope"],
            ["metrics", "--format", "xml"],
            ["explore", "--scope", "nope"],
            ["explore", "--max-states", "0"],
            ["explore", "--select", "TRC001"],
            ["explore", "--select", ""],
            ["audit", "--select", "NOPE"],
            ["audit", "--select", "MC001"],
            ["audit", "--format", "xml"],
            ["audit", "--root", "/nonexistent/audit/root"],
            ["audit", "--baseline", "/nonexistent/baseline.json"],
        ],
    )
    def test_bad_arguments_exit_two(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert capsys.readouterr().err

    @pytest.mark.parametrize("tool", ["lint", "verify", "explore", "audit"])
    def test_list_rules_exits_zero(self, tool, capsys):
        assert main([tool, "--list-rules"]) == 0
        assert capsys.readouterr().out.strip()

    def test_explore_list_rules_covers_all_mc_rules(self, capsys):
        main(["explore", "--list-rules"])
        out = capsys.readouterr().out
        for i in range(1, 11):
            assert f"MC{i:03d}" in out
        assert "TRC001" not in out


class TestToolFamilySync:
    """The CLI's tool→family table must track the rule registry exactly."""

    def test_tool_families_cover_every_registered_family(self):
        covered = {f for fams in TOOL_FAMILIES.values() for f in fams}
        assert covered == set(families())

    def test_every_analysis_tool_has_a_family_entry(self):
        assert set(TOOL_FAMILIES) == {"lint", "verify", "explore", "audit"}

    @pytest.mark.parametrize("tool", ["lint", "verify", "explore", "audit"])
    def test_list_rules_matches_registry(self, tool, capsys):
        assert main([tool, "--list-rules"]) == 0
        out = capsys.readouterr().out
        expected = {
            rule.rule_id
            for family in TOOL_FAMILIES[tool]
            for rule in rules_of_family(family)
        }
        listed = {
            line.split()[0]
            for line in out.splitlines()
            if line.strip() and line.split()[0] in RULES
        }
        assert listed == expected


class TestAuditCommand:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["audit"]) == 0
        captured = capsys.readouterr()
        assert "rispp-audit:" in captured.out
        assert "scanned" in captured.err

    def test_json_round_trips(self, capsys):
        assert main(["audit", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 0
        assert all(f["rule_id"].startswith("AUD") for f in payload["findings"])

    def test_no_baseline_surfaces_documented_env_read(self, capsys):
        assert main(["audit", "--baseline", "none"]) == 1
        out = capsys.readouterr().out
        assert "AUD003" in out
        assert "src/repro/core/backend.py" in out


class TestExploreCommand:
    def test_capped_tiny_run_exits_zero(self, capsys):
        assert main(["explore", "--scope", "tiny", "--max-states", "50"]) == 0
        out = capsys.readouterr().out
        assert "rispp-explore" in out
        assert "incomplete" in out.lower()

    def test_json_output_round_trips(self, capsys):
        assert (
            main(
                [
                    "explore",
                    "--scope",
                    "tiny",
                    "--max-states",
                    "50",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["scope"] == "tiny"
        assert payload["complete"] is False
        assert payload["rules_proven"] == []
        assert payload["states_explored"] == 50

    def test_emit_counterexample_without_violation_notes_it(self, capsys, tmp_path):
        target = tmp_path / "cx.json"
        assert (
            main(
                [
                    "explore",
                    "--scope",
                    "tiny",
                    "--max-states",
                    "50",
                    "--emit-counterexample",
                    str(target),
                ]
            )
            == 0
        )
        assert not target.exists()
        assert "no counterexample" in capsys.readouterr().err


class TestOverwriteGuard:
    """``--json``/``--output`` refuse to clobber files without ``--force``.

    A silent overwrite destroys evidence (a baseline report, a previous
    campaign), so an existing target without ``--force`` is a usage
    error — exit 2, file untouched.
    """

    def test_chaos_refuses_existing_json_target(self, tmp_path, capsys):
        target = tmp_path / "chaos.json"
        target.write_text("precious baseline\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--quick", "--json", str(target)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "refusing to overwrite existing file" in err
        assert "--force" in err
        assert target.read_text() == "precious baseline\n"

    def test_chaos_force_replaces_existing_json_target(self, tmp_path, capsys):
        target = tmp_path / "chaos.json"
        target.write_text("old report\n")
        assert (
            main(["chaos", "--quick", "--json", str(target), "--force"]) == 0
        )
        report = json.loads(target.read_text())
        assert report["kind"] == "rispp-chaos-report"

    def test_chaos_writes_fresh_target_without_force(self, tmp_path, capsys):
        target = tmp_path / "chaos.json"
        assert main(["chaos", "--quick", "--json", str(target)]) == 0
        assert json.loads(target.read_text())["kind"] == "rispp-chaos-report"

    def test_metrics_refuses_existing_output_target(self, tmp_path, capsys):
        target = tmp_path / "metrics.jsonl"
        target.write_text("precious snapshot\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "metrics", "--quick", "--format", "json",
                    "--output", str(target),
                ]
            )
        assert excinfo.value.code == 2
        assert "refusing to overwrite existing file" in capsys.readouterr().err
        assert target.read_text() == "precious snapshot\n"

    def test_metrics_force_replaces_existing_output_target(
        self, tmp_path, capsys
    ):
        target = tmp_path / "metrics.jsonl"
        target.write_text("old snapshot\n")
        assert (
            main(
                [
                    "metrics", "--quick", "--format", "json",
                    "--output", str(target), "--force",
                ]
            )
            == 0
        )
        first_line = target.read_text().splitlines()[0]
        json.loads(first_line)
