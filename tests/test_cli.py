"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.parametrize(
        "name", ["fig1", "fig4", "fig11", "fig12", "fig13", "table1", "table2"]
    )
    def test_fast_experiments_render(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3

    def test_fig11_contains_paper_points(self, capsys):
        main(["fig11"])
        out = capsys.readouterr().out
        for value in ("544", "488", "298", "24", "20", "18"):
            assert value in out

    def test_fig12_reports_deviation(self, capsys):
        main(["fig12"])
        out = capsys.readouterr().out
        assert "201,065" in out and "%" in out

    def test_table2_has_30_molecules(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        data_rows = [
            line
            for line in out.splitlines()
            if line.startswith("|") and "SI" not in line.split("|")[1]
        ]
        assert len(data_rows) == 30

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
