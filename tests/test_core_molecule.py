"""Unit tests for the Molecule vector algebra (paper section 3.1)."""

import pytest

from repro.core import AtomSpace, Molecule, infimum, supremum

SPACE = AtomSpace(["Load", "QuadSub", "Pack", "Transform", "SATD"])


def mol(**counts):
    return SPACE.molecule(counts)


class TestAtomSpace:
    def test_dimension_and_kinds(self):
        assert SPACE.dimension == 5
        assert SPACE.kinds[0] == "Load"
        assert "SATD" in SPACE
        assert "DCT" not in SPACE

    def test_index_of(self):
        assert SPACE.index_of("Pack") == 2
        with pytest.raises(KeyError):
            SPACE.index_of("nope")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AtomSpace([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AtomSpace(["A", "A"])

    def test_rejects_non_string_kind(self):
        with pytest.raises(ValueError):
            AtomSpace(["A", 3])

    def test_zero(self):
        z = SPACE.zero()
        assert z.is_zero()
        assert abs(z) == 0

    def test_unit(self):
        u = SPACE.unit("Transform")
        assert u.count("Transform") == 1
        assert abs(u) == 1

    def test_equality_and_hash(self):
        other = AtomSpace(["Load", "QuadSub", "Pack", "Transform", "SATD"])
        assert other == SPACE
        assert hash(other) == hash(SPACE)
        assert AtomSpace(["X"]) != SPACE


class TestMoleculeConstruction:
    def test_from_mapping_defaults_zero(self):
        m = mol(Pack=2)
        assert m.counts == (0, 0, 2, 0, 0)

    def test_from_vector(self):
        m = SPACE.molecule([1, 0, 2, 1, 0])
        assert m.count("Load") == 1
        assert m["Pack"] == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SPACE.molecule([1, -1, 0, 0, 0])

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            Molecule(SPACE, (1, 2))

    def test_rejects_unknown_kind(self):
        with pytest.raises(KeyError):
            mol(Nope=1)

    def test_as_dict_skips_zero(self):
        m = mol(Load=1, SATD=2)
        assert m.as_dict() == {"Load": 1, "SATD": 2}
        assert m.as_dict(skip_zero=False)["Pack"] == 0

    def test_kinds_used(self):
        assert mol(Pack=1, SATD=1).kinds_used() == ("Pack", "SATD")

    def test_repr_compact(self):
        assert "Pack=2" in repr(mol(Pack=2))
        assert repr(SPACE.zero()) == "Molecule(0)"


class TestLatticeOperators:
    def test_union_is_elementwise_max(self):
        a = mol(Load=1, Pack=3)
        b = mol(Load=2, Transform=1)
        assert (a | b) == mol(Load=2, Pack=3, Transform=1)

    def test_intersection_is_elementwise_min(self):
        a = mol(Load=1, Pack=3)
        b = mol(Load=2, Pack=1, Transform=1)
        assert (a & b) == mol(Load=1, Pack=1)

    def test_union_neutral_element(self):
        a = mol(Pack=2, SATD=1)
        assert (a | SPACE.zero()) == a

    def test_residual_clamps_at_zero(self):
        want = mol(Pack=3, Transform=2)
        have = mol(Pack=1, Transform=4, SATD=2)
        assert (want - have) == mol(Pack=2)

    def test_residual_zero_when_available(self):
        want = mol(Pack=1)
        have = mol(Pack=2, Load=1)
        assert (want - have).is_zero()

    def test_plus(self):
        assert (mol(Pack=1) + mol(Pack=2, Load=1)) == mol(Pack=3, Load=1)

    def test_determinant(self):
        assert abs(mol(Load=1, Pack=2, SATD=4)) == 7

    def test_scaled(self):
        assert mol(Pack=2).scaled(3) == mol(Pack=6)
        with pytest.raises(ValueError):
            mol(Pack=1).scaled(-1)

    def test_partial_order(self):
        small = mol(Pack=1, Transform=1)
        big = mol(Pack=2, Transform=1, SATD=1)
        assert small <= big
        assert small < big
        assert big >= small
        assert not (big <= small)

    def test_incomparable_molecules(self):
        a = mol(Pack=2)
        b = mol(Transform=2)
        assert not (a <= b)
        assert not (b <= a)

    def test_dominates_and_fits(self):
        avail = mol(Pack=2, Transform=2)
        assert mol(Pack=1, Transform=2).fits_within(avail)
        assert avail.dominates(mol(Pack=2))

    def test_restricted_to(self):
        m = mol(Load=2, Pack=1, SATD=1)
        assert m.restricted_to(["Pack", "SATD"]) == mol(Pack=1, SATD=1)

    def test_cross_space_raises(self):
        other = AtomSpace(["X", "Y"])
        with pytest.raises(ValueError):
            mol(Pack=1).union(other.molecule({"X": 1}))

    def test_hash_by_value(self):
        assert hash(mol(Pack=1)) == hash(mol(Pack=1))
        assert mol(Pack=1) in {mol(Pack=1)}


class TestSupInf:
    def test_supremum(self):
        ms = [mol(Pack=1, Transform=2), mol(Pack=3), mol(SATD=1)]
        assert supremum(ms) == mol(Pack=3, Transform=2, SATD=1)

    def test_supremum_upper_bound_property(self):
        ms = [mol(Pack=1, Transform=2), mol(Load=4)]
        sup = supremum(ms)
        assert all(m <= sup for m in ms)

    def test_supremum_empty_needs_space(self):
        assert supremum([], space=SPACE).is_zero()
        with pytest.raises(ValueError):
            supremum([])

    def test_infimum(self):
        ms = [mol(Pack=2, Transform=1), mol(Pack=1, Transform=3, SATD=1)]
        assert infimum(ms) == mol(Pack=1, Transform=1)

    def test_infimum_lower_bound_property(self):
        ms = [mol(Pack=2, Transform=1), mol(Pack=1)]
        inf = infimum(ms)
        assert all(inf <= m for m in ms)

    def test_infimum_empty_raises(self):
        with pytest.raises(ValueError):
            infimum([])
