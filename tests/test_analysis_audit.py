"""Tests for rispp-audit, the AST-level source-contract analyzer.

Every AUD rule gets at least one positive (planted violation caught)
and one negative (conforming code stays clean) case over synthetic
source trees, plus the acceptance-critical planted violations that must
each be caught by *exactly* the intended rule.  The real ``src/repro``
tree must audit clean modulo the checked-in baseline.
"""

import json
import textwrap

import pytest

from repro.analysis.audit import (
    Baseline,
    Suppression,
    package_root,
    run_audit,
)


def audit_tree(tmp_path, files, baseline=None):
    """Write a synthetic tree and audit it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_audit(tmp_path, baseline=baseline)


# ---------------------------------------------------------------------------
# AUD001: unseeded randomness / entropy sources
# ---------------------------------------------------------------------------


class TestAUD001Randomness:
    @pytest.mark.parametrize(
        "body",
        [
            "import random\nx = random.random()\n",
            "import random\nrng = random.Random()\n",
            "import random\nrandom.seed(3)\n",
            "from random import shuffle\n",
            "import secrets\nt = secrets.token_bytes(8)\n",
            "import os\nb = os.urandom(8)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
        ],
    )
    def test_entropy_sources_flagged(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.rule_ids() == ["AUD001"]

    @pytest.mark.parametrize(
        "body",
        [
            "import random\nrng = random.Random(42)\n",
            "from random import Random\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "import uuid\nu = uuid.UUID(int=0)\n",
            "import os\np = os.path.join('a', 'b')\n",
        ],
    )
    def test_seeded_and_benign_uses_clean(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.clean(), result.report.render_text()

    def test_planted_unseeded_random_in_model_path(self, tmp_path):
        """Acceptance: unseeded random.random() caught by exactly AUD001."""
        result = audit_tree(
            tmp_path,
            {
                "runtime/planner.py": """\
                import random


                def pick_candidate(candidates):
                    return candidates[int(random.random() * len(candidates))]
                """
            },
        )
        assert result.report.rule_ids() == ["AUD001"]
        (finding,) = result.report.diagnostics
        assert finding.subject == "runtime/planner.py"
        assert finding.context["symbol"] == "pick_candidate"


# ---------------------------------------------------------------------------
# AUD002: wall-clock reads outside the seam
# ---------------------------------------------------------------------------


class TestAUD002WallClock:
    @pytest.mark.parametrize(
        "body",
        [
            "import time\nt = time.perf_counter()\n",
            "import time\ns = time.strftime('%Y')\n",
            "from time import perf_counter\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nd = datetime.date.today()\n",
        ],
    )
    def test_clock_reads_flagged(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.rule_ids() == ["AUD002"]

    def test_clock_seam_file_is_allowlisted(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"obs/clock.py": "import time\n\n\ndef pc():\n    return time.perf_counter()\n"},
        )
        assert result.report.clean(), result.report.render_text()

    def test_importing_the_seam_is_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "from repro.obs.clock import perf_counter\nt = perf_counter()\n"},
        )
        assert result.report.clean(), result.report.render_text()

    def test_non_clock_datetime_use_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "from datetime import datetime\nd = datetime(2007, 6, 4)\n"},
        )
        assert result.report.clean(), result.report.render_text()


# ---------------------------------------------------------------------------
# AUD003: environment reads
# ---------------------------------------------------------------------------


class TestAUD003Environment:
    @pytest.mark.parametrize(
        "body",
        [
            "import os\nv = os.environ.get('X')\n",
            "import os\nv = os.environ['X']\n",
            "import os\nv = os.getenv('X', 'd')\n",
            "from os import environ\n",
        ],
    )
    def test_environment_reads_flagged(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.rule_ids() == ["AUD003"]

    def test_other_os_uses_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "import os\np = os.path.basename('a/b')\nsep = os.sep\n"},
        )
        assert result.report.clean(), result.report.render_text()


# ---------------------------------------------------------------------------
# AUD004: order-sensitive iteration over sets
# ---------------------------------------------------------------------------


class TestAUD004SetIteration:
    @pytest.mark.parametrize(
        "body",
        [
            "s = {1, 2, 3}\nfor x in s:\n    print(x)\n",
            "s = set()\nout = [x for x in s]\n",
            "s = frozenset({1})\nout = list(s)\n",
            "def f(a, b):\n    for x in set(a) | set(b):\n        print(x)\n",
            "s = {'a'}\ntext = ','.join(s)\n",
            "s = {1}\npairs = {x: 0 for x in s}\n",
            "s = {1}\nt = tuple(s)\n",
        ],
    )
    def test_order_sensitive_sinks_flagged(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.rule_ids() == ["AUD004"]

    @pytest.mark.parametrize(
        "body",
        [
            "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n",
            "s = {1, 2}\ntotal = sum(x for x in s)\n",
            "s = {1, 2}\nm = max(s)\n",
            "s = {1, 2}\nt = {x * 2 for x in s}\n",
            "s = {1, 2}\nok = 1 in s\n",
            "s = {1, 2}\ns = [1, 2]\nout = list(s)\n",
            "items = [3, 1]\nout = list(items)\n",
        ],
    )
    def test_order_free_uses_clean(self, tmp_path, body):
        result = audit_tree(tmp_path, {"mod.py": body})
        assert result.report.clean(), result.report.render_text()

    def test_module_set_iterated_inside_function_is_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "KINDS = {'a', 'b'}\n\n\ndef f():\n    return [k for k in KINDS]\n"},
        )
        assert result.report.rule_ids() == ["AUD004"]

    def test_shadowing_local_suppresses_module_set(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": (
                    "KINDS = {'a', 'b'}\n\n\n"
                    "def f():\n    KINDS = ['a', 'b']\n    return [k for k in KINDS]\n"
                )
            },
        )
        assert result.report.clean(), result.report.render_text()


# ---------------------------------------------------------------------------
# AUD005: obs-catalogue resolution
# ---------------------------------------------------------------------------


class TestAUD005ObsContract:
    def test_planted_undeclared_metric_name(self, tmp_path):
        """Acceptance: undeclared metric caught by exactly AUD005."""
        result = audit_tree(
            tmp_path,
            {"mod.py": "def f(reg):\n    reg.counter('totally_undeclared_series').inc()\n"},
        )
        assert result.report.rule_ids() == ["AUD005"]

    def test_metric_type_mismatch_flagged(self, tmp_path):
        # si_executions_total is declared as a counter.
        result = audit_tree(
            tmp_path,
            {"mod.py": "def f(reg):\n    reg.gauge('si_executions_total').set(1)\n"},
        )
        assert result.report.rule_ids() == ["AUD005"]

    def test_wrong_label_names_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "def f(reg):\n    reg.counter('si_executions_total').labels(kind='sw')\n"},
        )
        assert result.report.rule_ids() == ["AUD005"]

    def test_undeclared_label_value_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "def f(reg):\n    reg.counter('si_executions_total').labels(mode='fpga')\n"},
        )
        assert result.report.rule_ids() == ["AUD005"]

    def test_var_bound_instrument_labels_resolved(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": """\
                def f(reg):
                    execs = reg.counter('si_executions_total')
                    execs.labels(wrong='sw')
                """
            },
        )
        assert result.report.rule_ids() == ["AUD005"]

    def test_declared_site_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": """\
                def f(reg):
                    execs = reg.counter('si_executions_total')
                    sw = execs.labels(mode='sw')
                    sw.inc()
                    reg.histogram('si_latency_cycles').observe(24)
                """
            },
        )
        assert result.report.clean(), result.report.render_text()

    def test_dynamic_names_and_receivers_skipped(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": """\
                def f(reg, name, kind):
                    reg.counter(name).inc()
                    reg.counter('si_executions_total').labels(**kind)
                """
            },
        )
        assert result.report.clean(), result.report.render_text()


# ---------------------------------------------------------------------------
# AUD006: dead catalogue entries
# ---------------------------------------------------------------------------


class TestAUD006DeadMetric:
    def test_unused_metrics_flagged_when_catalogue_in_tree(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"obs/catalogue.py": "METRICS = {}\n"},
        )
        assert set(result.report.rule_ids()) == {"AUD006"}
        flagged = {d.context["metric"] for d in result.report.by_rule("AUD006")}
        assert "si_executions_total" in flagged

    def test_no_catalogue_in_tree_no_dead_metric_findings(self, tmp_path):
        result = audit_tree(tmp_path, {"mod.py": "x = 1\n"})
        assert result.report.clean()


# ---------------------------------------------------------------------------
# AUD007 / AUD008: the rules contract
# ---------------------------------------------------------------------------


class TestAUD007RuleIDs:
    def test_planted_unregistered_rule_id(self, tmp_path):
        """Acceptance: unregistered rule ID caught by exactly AUD007."""
        result = audit_tree(
            tmp_path,
            {"mod.py": "def check(diag):\n    return diag('TRC999', 'bogus')\n"},
        )
        assert result.report.rule_ids() == ["AUD007"]

    def test_unregistered_id_in_emit_wrapper_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "def f(self):\n    self._emit('AUD999', cycle=0)\n"},
        )
        assert result.report.rule_ids() == ["AUD007"]

    def test_foreign_shape_diag_id_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"mod.py": "def check(diag):\n    return diag('XYZ001', 'bogus')\n"},
        )
        assert result.report.rule_ids() == ["AUD007"]

    def test_registered_ids_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": (
                    "def check(diag):\n"
                    "    return [diag('TRC001', 'a'), diag('MC005', 'b')]\n"
                )
            },
        )
        assert result.report.clean(), result.report.render_text()


class TestAUD008DeadRules:
    def test_unreferenced_rules_flagged_when_registry_in_tree(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {"analysis/rules.py": "RULES = {}\n"},
        )
        assert set(result.report.rule_ids()) == {"AUD008"}
        flagged = {d.context["rule"] for d in result.report.by_rule("AUD008")}
        assert "LAT001" in flagged

    def test_referenced_rules_not_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "analysis/rules.py": "RULES = {}\n",
                "checker.py": "IDS = ['LAT001']\n",
            },
        )
        assert "LAT001" not in {
            d.context["rule"] for d in result.report.by_rule("AUD008")
        }


# ---------------------------------------------------------------------------
# AUD009 / AUD010: backend purity
# ---------------------------------------------------------------------------

_BACKEND_HEADER = """\
class ComputeBackend:
    pass


"""


class TestAUD009InputMutation:
    def test_planted_mutating_kernel(self, tmp_path):
        """Acceptance: mutating backend kernel caught by exactly AUD009."""
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                class BadBackend(ComputeBackend):
                    def sup(self, rows, dim):
                        rows.append([0] * dim)
                        return rows
                """)
            },
        )
        assert result.report.rule_ids() == ["AUD009"]
        (finding,) = result.report.diagnostics
        assert finding.context["symbol"] == "BadBackend.sup"

    @pytest.mark.parametrize(
        "kernel",
        [
            "        rows[0] = None\n        return rows\n",
            "        rows += [1]\n        return rows\n",
            "        alias = rows\n        alias.clear()\n        return rows\n",
            "        np.maximum(rows, 0, out=rows)\n        return rows\n",
            "        library.sis['x'] = None\n        return rows\n",
        ],
    )
    def test_mutation_shapes_flagged(self, tmp_path, kernel):
        source = (
            _BACKEND_HEADER
            + "class B(ComputeBackend):\n"
            + "    def sup(self, rows, library):\n"
            + kernel
        )
        result = audit_tree(tmp_path, {"core/backend.py": source})
        assert "AUD009" in result.report.rule_ids()

    def test_copy_then_mutate_is_clean(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                class GoodBackend(ComputeBackend):
                    def sup(self, rows, dim):
                        rows = list(rows)
                        rows.append([0] * dim)
                        out = [0] * dim
                        for row in rows:
                            for i, c in enumerate(row):
                                out[i] = max(out[i], c)
                        return out
                """)
            },
        )
        assert result.report.clean(), result.report.render_text()


class TestAUD010UndeclaredState:
    def test_undeclared_self_attribute_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                class B(ComputeBackend):
                    def __init__(self):
                        self._declared = {}

                    def sup(self, rows):
                        self._sneaky = rows
                        return rows
                """)
            },
        )
        assert result.report.rule_ids() == ["AUD010"]

    def test_global_statement_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                _HITS = 0


                class B(ComputeBackend):
                    def sup(self, rows):
                        global _HITS
                        _HITS += 1
                        return rows
                """)
            },
        )
        assert "AUD010" in result.report.rule_ids()

    def test_module_global_mutation_flagged(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                _CACHE = {}


                class B(ComputeBackend):
                    def sup(self, rows):
                        _CACHE[id(rows)] = rows
                        return rows
                """)
            },
        )
        assert result.report.rule_ids() == ["AUD010"]

    def test_declared_caches_are_allowed(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "core/backend.py": _BACKEND_HEADER
                + textwrap.dedent("""\
                __audit_caches__ = frozenset({"_CACHE"})

                _CACHE = {}


                class B(ComputeBackend):
                    def __init__(self):
                        self._staging = {}

                    def sup(self, rows, library):
                        _CACHE[id(library)] = rows
                        self._staging[id(library)] = rows
                        cache = self._staging
                        cache['k'] = rows
                        return rows
                """)
            },
        )
        assert result.report.clean(), result.report.render_text()

    def test_non_backend_classes_ignored(self, tmp_path):
        result = audit_tree(
            tmp_path,
            {
                "mod.py": """\
                class Builder:
                    def add(self, rows):
                        rows.append(1)
                        self._anything = rows
                        return rows
                """
            },
        )
        assert result.report.clean(), result.report.render_text()


# ---------------------------------------------------------------------------
# Baseline handling (incl. AUD011)
# ---------------------------------------------------------------------------


class TestBaseline:
    def _tree(self):
        return {"mod.py": "import os\nv = os.getenv('X')\n"}

    def test_matching_suppression_hides_finding(self, tmp_path):
        baseline = Baseline(
            entries=[Suppression("AUD003", "mod.py", "<module>", "documented")]
        )
        result = audit_tree(tmp_path, self._tree(), baseline=baseline)
        assert result.report.clean(), result.report.render_text()
        assert result.suppressed == 1

    def test_stale_suppression_warns_aud011(self, tmp_path):
        baseline = Baseline(
            entries=[Suppression("AUD001", "gone.py", "nope", "stale entry")]
        )
        result = audit_tree(tmp_path, self._tree(), baseline=baseline)
        assert set(result.report.rule_ids()) == {"AUD003", "AUD011"}
        assert result.stale_suppressions == baseline.entries
        # AUD011 is a warning: it must not flip a clean run to exit 1.
        assert result.report.by_rule("AUD011")[0].severity.name == "WARNING"

    def test_baseline_file_round_trip(self, tmp_path):
        path = tmp_path / "audit_baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "suppressions": [
                        {
                            "rule": "AUD003",
                            "path": "mod.py",
                            "symbol": "<module>",
                            "reason": "documented exception",
                        }
                    ],
                }
            )
        )
        result = audit_tree(tmp_path, self._tree(), baseline=path)
        assert result.report.clean()
        assert result.baseline_path == str(path)

    def test_auto_baseline_discovered_at_root(self, tmp_path):
        (tmp_path / "audit_baseline.json").write_text(
            json.dumps(
                {
                    "suppressions": [
                        {
                            "rule": "AUD003",
                            "path": "mod.py",
                            "symbol": "<module>",
                            "reason": "documented exception",
                        }
                    ]
                }
            )
        )
        result = audit_tree(tmp_path, self._tree(), baseline="auto")
        assert result.report.clean()
        assert result.suppressed == 1

    def test_baseline_without_reason_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"suppressions": [{"rule": "AUD003", "path": "m", "symbol": "s"}]}
            )
        )
        with pytest.raises(ValueError, match="documented"):
            Baseline.load(path)

    def test_baseline_empty_reason_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "suppressions": [
                        {"rule": "AUD003", "path": "m", "symbol": "s", "reason": "  "}
                    ]
                }
            )
        )
        with pytest.raises(ValueError, match="empty reason"):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_src_repro_audits_clean_with_baseline(self):
        result = run_audit()
        assert result.report.clean(), result.report.render_text()
        assert result.exit_code() == 0
        assert result.files_scanned > 50

    def test_baseline_suppressions_are_minimal_and_live(self):
        result = run_audit()
        # Exactly the documented REPRO_BACKEND env read, nothing else.
        assert result.suppressed == 1
        assert result.stale_suppressions == []

    def test_without_baseline_only_documented_findings_remain(self):
        result = run_audit(baseline=None)
        assert result.report.rule_ids() == ["AUD003"]
        (finding,) = result.report.diagnostics
        assert finding.subject == "src/repro/core/backend.py"
        assert finding.context["symbol"] == "default_backend"

    def test_display_paths_are_repo_relative(self):
        result = run_audit(baseline=None)
        assert package_root().name == "repro"
        assert all(
            d.subject.startswith("src/repro/") for d in result.report.diagnostics
        )
