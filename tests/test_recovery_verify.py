"""TRC016: resume-boundary coherence findings from ``verify_resume``.

A clean store (interrupted or not) yields no findings; each kind of
boundary incoherence — rewritten prefix events, lost events, mutated
rotation jobs, duplicated quarantine episodes, an unreadable journal —
must be reported, not crash the verifier.
"""

import json

import pytest

from repro.analysis.rules import RULES, rules_of_family
from repro.bench.suites import build_synthetic_library
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.recovery import (
    JOURNAL_NAME,
    RecoverableRuntime,
    list_snapshots,
    verify_resume,
)
from repro.runtime import RisppRuntime


@pytest.fixture(scope="module")
def library():
    return build_synthetic_library()


def run_store(library, store, *, injector=None, checkpoint_every=5):
    rt = RisppRuntime(
        library, 5, core_mhz=100.0, optimize=True, faults=injector
    )
    rec = RecoverableRuntime(rt, store, checkpoint_every=checkpoint_every)
    now = 1_000
    rec.forecast("SI0", now, expected=16.0)
    for _ in range(40):
        now += rec.execute_si("SI0", now)
    rec.advance(now + 60_000)
    rec.close()
    return rec


def edit_snapshot(path, mutate):
    data = json.loads(path.read_text())
    mutate(data)
    path.write_text(json.dumps(data) + "\n")


class TestRegistration:
    def test_trc016_is_a_registered_trace_rule(self):
        rule = RULES["TRC016"]
        assert rule.family == "trace"
        assert "resume boundary" in rule.title
        assert rule in rules_of_family("trace")


class TestCleanStores:
    def test_uninterrupted_run_is_coherent(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        report = verify_resume(rec, tmp_path)
        assert report.clean(), report.render_text()

    def test_faulted_run_is_coherent(self, library, tmp_path):
        # Transient + permanent faults: quarantine episodes and dropped
        # rotation jobs must all stitch cleanly across every snapshot.
        injector = FaultInjector(
            FaultSchedule(
                [
                    FaultEvent(300_000, FaultKind.TRANSIENT, container=0),
                    FaultEvent(320_000, FaultKind.PERMANENT, container=2),
                ]
            ),
            scrub_period=10_000,
        )
        rec = run_store(library, tmp_path, injector=injector)
        report = verify_resume(rec, tmp_path)
        assert report.clean(), report.render_text()


class TestIncoherentStores:
    def test_rewritten_prefix_event_is_flagged(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        _seq, path = list_snapshots(tmp_path)[0]

        def mutate(data):
            data["state"]["trace"]["events"][0][0] += 1  # shift a cycle

        edit_snapshot(path, mutate)
        report = verify_resume(rec, tmp_path)
        assert [d.rule_id for d in report.errors()] == ["TRC016"]
        assert "duplicated or rewrote" in report.errors()[0].message

    def test_lost_events_are_flagged(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        _seq, path = list_snapshots(tmp_path)[-1]

        def mutate(data):
            events = data["state"]["trace"]["events"]
            events.extend([events[-1]] * 200)

        edit_snapshot(path, mutate)
        report = verify_resume(rec, tmp_path)
        assert any(
            "lost" in d.message and d.rule_id == "TRC016"
            for d in report.errors()
        )

    def test_mutated_rotation_job_is_flagged(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        flagged = False
        for _seq, path in list_snapshots(tmp_path):
            data = json.loads(path.read_text())
            if not data["state"]["port"]["pending"]:
                continue
            index = data["state"]["port"]["pending"][0]
            data["state"]["port"]["jobs"][index]["requested_at"] += 7
            path.write_text(json.dumps(data) + "\n")
            flagged = True
            break
        assert flagged, "scenario produced no snapshot with a pending job"
        report = verify_resume(rec, tmp_path)
        assert any(
            "changed across the boundary" in d.message
            for d in report.errors()
        )

    def test_unusable_snapshot_is_a_finding_not_a_crash(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        _seq, path = list_snapshots(tmp_path)[0]
        path.write_text("{broken")
        report = verify_resume(rec, tmp_path)
        assert any("unusable" in d.message for d in report.errors())

    def test_corrupt_journal_interior_is_a_finding(self, library, tmp_path):
        rec = run_store(library, tmp_path)
        journal = tmp_path / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        lines[0] = "garbage"
        journal.write_text("\n".join(lines) + "\n")
        report = verify_resume(rec, tmp_path)
        assert any("journal unusable" in d.message for d in report.errors())
