"""The event bus is a refactor, not a behaviour change: property proof.

``direct_dispatch`` in :mod:`repro.runtime.events` is the hand-written
pre-bus call sequence, kept as the executable spec of what the runtime
did before the bus existed.  Hypothesis drives two identically seeded
runtimes — one publishing through the default bus, one through a bus
whose ``publish`` *is* ``direct_dispatch`` — over random interleavings
of forecasts, forecast ends, SI executions, container failures and idle
advances, and asserts the traces are identical row for row.

Alongside the property live the :class:`EventBus` contract tests
(dispatch order, taxonomy enforcement, wiring introspection) and the
``EVT*`` lint rules that keep ``docs/events.md`` honest.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_events
from repro.bench.harness import trace_signature
from repro.core import (
    AtomCatalogue,
    AtomKind,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
)
from repro.core.backend import available_backends
from repro.runtime import RisppRuntime
from repro.runtime.events import (
    DEFAULT_WIRING,
    EVENT_TYPES,
    PRIORITY_TRACE,
    EventBus,
    ForecastFired,
    Tick,
    default_bus,
    direct_dispatch,
)

SIS = ("HT", "SATD")
TASKS = ("A", "B")

BACKENDS = [None] + (["numpy"] if "numpy" in available_backends() else [])


def _make_library() -> SILibrary:
    """The conftest ``mini_library``, rebuilt per example (fixtures and
    ``@given`` don't mix: hypothesis reuses function-scoped fixtures
    across examples, which is exactly the sharing this test must avoid)."""
    catalogue = AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713),
            AtomKind("Transform", bitstream_bytes=59_353),
            AtomKind("SATD", bitstream_bytes=58_141),
        ]
    )
    space = catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
            MoleculeImpl(space.molecule({"Load": 4, "Pack": 4, "Transform": 4}), 8),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
            MoleculeImpl(
                space.molecule({"Load": 2, "Pack": 1, "Transform": 2, "SATD": 1}), 18
            ),
            MoleculeImpl(
                space.molecule({"Load": 4, "Pack": 4, "Transform": 4, "SATD": 2}), 12
            ),
        ],
    )
    return SILibrary(catalogue, [ht, satd])


class DirectBus(EventBus):
    """A bus whose dispatch is the pre-bus inline call sequence."""

    def publish(self, runtime, event) -> None:  # type: ignore[override]
        direct_dispatch(runtime, event)


def _action_sequences():
    forecast = st.tuples(
        st.just("forecast"),
        st.sampled_from(TASKS),
        st.sampled_from(SIS),
        st.sampled_from((5.0, 20.0, 40.0)),
        st.sampled_from((1.0, 2.0)),
    )
    end = st.tuples(st.just("end"), st.sampled_from(TASKS), st.sampled_from(SIS))
    execute = st.tuples(st.just("exec"), st.sampled_from(TASKS), st.sampled_from(SIS))
    advance = st.tuples(st.just("advance"))
    fail = st.tuples(st.just("fail"), st.integers(min_value=0, max_value=3))
    step = st.tuples(
        st.one_of(forecast, end, execute, advance, fail),
        st.integers(min_value=0, max_value=400),
    )
    return st.lists(step, min_size=1, max_size=12)


def _replay(bus: EventBus, actions, backend) -> RisppRuntime:
    rt = RisppRuntime(_make_library(), 4, core_mhz=100.0, bus=bus, backend=backend)
    now = 0
    for action, dt in actions:
        now += dt
        kind = action[0]
        if kind == "forecast":
            _, task, si, expected, priority = action
            rt.forecast(si, now, task=task, expected=expected, priority=priority)
        elif kind == "end":
            rt.forecast_end(action[2], now, task=action[1])
        elif kind == "exec":
            rt.execute_si(action[2], now, task=action[1])
        elif kind == "fail":
            rt.fail_container(action[1], now)
        else:
            rt.advance(now)
    # Drain in-flight rotations so completion events are compared too.
    rt.advance(now + 50_000)
    return rt


class TestBusMatchesDirectDispatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(actions=_action_sequences())
    def test_trace_equivalence(self, backend, actions):
        via_bus = _replay(default_bus(), actions, backend)
        via_direct = _replay(DirectBus(), actions, backend)
        assert trace_signature(via_bus.trace) == trace_signature(via_direct.trace)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=20, deadline=None)
    @given(actions=_action_sequences())
    def test_stats_equivalence(self, backend, actions):
        via_bus = _replay(default_bus(), actions, backend)
        via_direct = _replay(DirectBus(), actions, backend)
        assert dataclasses.asdict(via_bus.stats) == dataclasses.asdict(
            via_direct.stats
        )


class TestEventBusContract:
    def test_dispatch_order_is_priority_then_seq(self):
        bus = EventBus()
        calls = []
        bus.subscribe(Tick, lambda rt, ev: calls.append("late"), priority=50)
        bus.subscribe(Tick, lambda rt, ev: calls.append("first"), priority=10)
        bus.subscribe(Tick, lambda rt, ev: calls.append("second"), priority=10)
        bus.publish(None, Tick(0))
        assert calls == ["first", "second", "late"]

    def test_unsubscribe_removes_handler(self):
        bus = EventBus()
        calls = []
        sub = bus.subscribe(Tick, lambda rt, ev: calls.append("gone"))
        bus.subscribe(Tick, lambda rt, ev: calls.append("kept"))
        bus.unsubscribe(Tick, sub)
        bus.publish(None, Tick(0))
        assert calls == ["kept"]

    def test_unknown_event_type_is_rejected(self):
        class NotAnEvent:
            pass

        with pytest.raises(ValueError, match="unknown event type"):
            EventBus().subscribe(NotAnEvent, lambda rt, ev: None)

    def test_default_bus_matches_documented_wiring(self):
        wiring = default_bus().wiring()
        expected: dict[str, list[tuple[int, str]]] = {
            t.__name__: [] for t in EVENT_TYPES
        }
        for event_type, priority, handler in DEFAULT_WIRING:
            expected[event_type.__name__].append((priority, handler.__name__))
        assert wiring == {name: tuple(rows) for name, rows in expected.items()}

    def test_subscriptions_expose_names_in_dispatch_order(self):
        subs = default_bus().subscriptions(ForecastFired)
        assert [s.priority for s in subs] == sorted(s.priority for s in subs)
        assert subs[0].name == "_trace_forecast"
        assert subs[0].priority == PRIORITY_TRACE


class TestEventLint:
    def test_default_bus_is_clean(self):
        assert lint_events().ok()

    def test_missing_trace_handler_raises_evt001_and_evt002(self):
        bus = default_bus()
        doomed = [
            s
            for s in bus.subscriptions(ForecastFired)
            if s.name == "_trace_forecast"
        ]
        bus.unsubscribe(ForecastFired, doomed[0])
        rules = set(lint_events(bus).rule_ids())
        assert "EVT001" in rules
        assert "EVT002" in rules

    def test_extra_subscriber_is_a_wiring_divergence(self):
        bus = default_bus()
        bus.subscribe(Tick, lambda rt, ev: None, name="_rogue_tick", priority=99)
        assert "EVT001" in set(lint_events(bus).rule_ids())

    def test_stale_non_bus_kind_raises_evt003(self, monkeypatch):
        import repro.runtime.events as events_mod

        monkeypatch.setattr(events_mod, "NON_BUS_KINDS", frozenset())
        assert "EVT003" in set(lint_events().rule_ids())
