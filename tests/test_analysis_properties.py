"""Property tests for rispp-lint: validity is closed under generation.

Any structurally valid random library or profiled CFG must lint with zero
ERROR diagnostics, and each seeded mutation must trigger exactly its rule.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import lint_cfg, lint_library, lint_schedule
from repro.cfg import ControlFlowGraph
from repro.core import (
    AtomCatalogue,
    AtomKind,
    AtomOp,
    Dataflow,
    MoleculeImpl,
    Schedule,
    ScheduledOp,
    SILibrary,
    SpecialInstruction,
)

KINDS = ("Pack", "Transform", "SATD")


def make_catalogue() -> AtomCatalogue:
    return AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713),
            AtomKind("Transform", bitstream_bytes=59_353),
            AtomKind("SATD", bitstream_bytes=58_141),
        ]
    )


molecule_counts = st.fixed_dictionaries(
    {kind: st.integers(min_value=0, max_value=4) for kind in KINDS}
).filter(lambda counts: any(counts.values()))


@st.composite
def libraries(draw):
    catalogue = make_catalogue()
    space = catalogue.space
    n_sis = draw(st.integers(min_value=1, max_value=3))
    sis = []
    for i in range(n_sis):
        software_cycles = draw(st.integers(min_value=50, max_value=1000))
        impls = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            counts = draw(molecule_counts)
            cycles = draw(st.integers(min_value=1, max_value=software_cycles - 1))
            impls.append(MoleculeImpl(space.molecule(counts), cycles))
        sis.append(SpecialInstruction(f"SI{i}", space, software_cycles, impls))
    return SILibrary(catalogue, sis)


@st.composite
def profiled_cfgs(draw):
    """A chain of loop blocks with trace-consistent profile counts."""
    loop_counts = draw(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=5)
    )
    cfg = ControlFlowGraph()
    cfg.block("entry", cycles=draw(st.integers(min_value=1, max_value=100)))
    profile = {"entry": 1}
    prev = "entry"
    for i, k in enumerate(loop_counts):
        name = f"loop{i}"
        cfg.block(name, cycles=10, si_usages={"SATD": 1})
        cfg.add_edge(prev, name, count=1)
        if k > 1:
            cfg.add_edge(name, name, count=k - 1)
        profile[name] = k
        prev = name
    cfg.block("end", cycles=1)
    cfg.add_edge(prev, "end", count=1)
    profile["end"] = 1
    cfg.set_profile(profile)
    return cfg


class TestValidArtifactsLintClean:
    @given(libraries())
    def test_random_valid_library_has_zero_errors(self, library):
        report = lint_library(library, containers=12)
        assert report.ok(), report.render_text()

    @given(profiled_cfgs())
    def test_random_profiled_cfg_has_zero_errors(self, cfg):
        report = lint_cfg(cfg)
        assert report.ok(), report.render_text()
        assert not report.by_rule("CFG007")


class TestSeededMutationsTriggerTheirRule:
    @given(profiled_cfgs(), st.integers(min_value=-100, max_value=-1))
    def test_negative_count_triggers_cfg006(self, cfg, bad_count):
        edge = cfg.edges()[0]
        edge.count = bad_count
        report = lint_cfg(cfg)
        assert "CFG006" in {d.rule_id for d in report.errors()}

    @given(
        molecule_counts,
        st.integers(min_value=10, max_value=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_dominated_molecule_triggers_lib003(self, counts, cycles, slowdown):
        catalogue = make_catalogue()
        space = catalogue.space
        si = SpecialInstruction(
            "SI0", space, 1000,
            [
                MoleculeImpl(space.molecule(counts), cycles),
                MoleculeImpl(space.molecule(counts), cycles + slowdown),
            ],
        )
        report = lint_library(SILibrary(catalogue, [si]))
        findings = report.by_rule("LIB003")
        assert len(findings) == 1  # the slower copy, never the faster one
        assert findings[0].context["molecule"] == 1

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=5),
    )
    def test_over_capacity_placement_triggers_sch002(self, capacity, excess):
        space = make_catalogue().space
        dataflow = Dataflow([AtomOp("a", "Pack", (), 2)])
        molecule = space.molecule({"Pack": capacity})
        schedule = Schedule(
            makespan=2,
            placements=[ScheduledOp("a", "Pack", capacity + excess, 0, 2)],
        )
        report = lint_schedule(dataflow, molecule, schedule)
        assert {d.rule_id for d in report.errors()} == {"SCH002"}
