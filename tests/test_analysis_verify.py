"""rispp-verify: the reference machine replay (rules TRC001..TRC013).

Two halves: clean traces produced by the real runtime must replay with
zero findings (the machine and the manager agree on the hardware
semantics), and seeded corruptions must each trip exactly the intended
rule — a corruption that cascades into unrelated findings would make the
verifier useless as a localisation tool.
"""

import pytest

from repro.analysis import (
    ReferenceMachine,
    run_verify_suite,
    verify_runtime,
    verify_trace,
)
from repro.bench.suites import build_synthetic_library
from repro.hardware.energy import EnergyModel
from repro.runtime import RisppRuntime
from repro.sim import Event, EventKind


def _materialize(events):
    """Eager copies of (possibly lazy) events, safe to mutate."""
    return [
        Event(e.cycle, e.kind, e.task, e.si, dict(e.detail)) for e in events
    ]


def _drive_runtime(*, containers=5, energy=True):
    """A small multi-phase scenario: forecasts, gradual upgrade, a fault."""
    library = build_synthetic_library()
    rt = RisppRuntime(
        library, containers, core_mhz=100.0,
        energy_model=EnergyModel() if energy else None,
    )
    now = 10_000
    for round_no in range(10):
        for si_name, expected in (("SI0", 16.0), ("SI1", 8.0), ("SI2", 4.0)):
            rt.forecast(si_name, now, expected=expected)
        for si_name, calls in (("SI0", 16), ("SI1", 8), ("SI2", 4)):
            for _ in range(calls):
                now += rt.execute_si(si_name, now)
        if round_no == 4:
            rt.fail_container(1, now)
            now += 1_000
        # Rotations take ~58k-87k cycles through the serial port; the
        # inter-round gap lets them land so later rounds upgrade to HW.
        now += 60_000
    rt.forecast_end("SI2", now)
    rt.advance(now + 10_000_000)
    return rt


@pytest.fixture(scope="module")
def verified_runtime():
    return _drive_runtime()


@pytest.fixture(scope="module")
def clean_events(verified_runtime):
    return _materialize(verified_runtime.trace.events)


def _verify_events(rt, events, *, totals=True):
    import dataclasses

    return verify_trace(
        events,
        rt.library,
        containers=len(rt.fabric),
        core_mhz=rt.port.core_mhz,
        bytes_per_us=rt.port.bytes_per_us,
        static_multiplicity=rt.fabric.static_multiplicity,
        totals=dataclasses.asdict(rt.stats) if totals else None,
        energy_model=rt.energy_model,
    )


class TestCleanTraces:
    def test_runtime_trace_replays_clean(self, verified_runtime):
        report = verify_runtime(verified_runtime)
        assert report.clean(), report.render_text()

    def test_clean_trace_with_totals_and_energy(
        self, verified_runtime, clean_events
    ):
        report = _verify_events(verified_runtime, clean_events)
        assert report.clean(), report.render_text()

    def test_runtime_without_energy_model_replays_clean(self):
        rt = _drive_runtime(energy=False)
        report = verify_runtime(rt)
        assert report.clean(), report.render_text()

    @pytest.mark.parametrize("suite", ["synthetic", "h264", "aes"])
    def test_shipped_suites_replay_clean(self, suite):
        result = run_verify_suite(suite, quick=True)
        assert result.report.clean(), result.report.render_text()
        assert result.exit_code() == 0
        assert result.trace_events > 0

    def test_machine_accounting_matches_runtime_stats(self, verified_runtime):
        machine = ReferenceMachine(
            verified_runtime.library,
            len(verified_runtime.fabric),
            energy_model=verified_runtime.energy_model,
        )
        machine.replay(verified_runtime.trace.events)
        acc = machine.accounting()
        stats = verified_runtime.stats
        assert acc["si_executions"] == stats.si_executions
        assert acc["si_cycles"] == stats.si_cycles
        assert acc["rotations_requested"] == stats.rotations_requested
        assert acc["rotation_energy_nj"] == pytest.approx(
            stats.rotation_energy_nj
        )
        assert acc["execution_energy_nj"] == pytest.approx(
            stats.execution_energy_nj
        )


def _only_rule(report, rule_id):
    ids = [d.rule_id for d in report]
    assert ids, f"expected a {rule_id} finding, got a clean report"
    assert set(ids) == {rule_id}, (
        f"expected only {rule_id}, got: " + report.render_text()
    )


class TestSeededCorruptions:
    """Each hand mutation trips exactly the intended rule."""

    def test_negative_cycle_trips_trc001(self, verified_runtime, clean_events):
        events = _materialize(clean_events)
        events[3] = Event(
            -5, events[3].kind, events[3].task, events[3].si,
            dict(events[3].detail),
        )
        _only_rule(_verify_events(verified_runtime, events), "TRC001")

    def test_swapped_events_trip_trc001(self, verified_runtime, clean_events):
        events = _materialize(clean_events)
        # Swap two adjacent same-shaped executions with different cycles:
        # the event *content* stays legal, only the ordering breaks.
        idx = next(
            i
            for i in range(len(events) - 1)
            if events[i].kind is EventKind.SI_EXECUTED
            and events[i + 1].kind is EventKind.SI_EXECUTED
            and events[i].cycle < events[i + 1].cycle
            and events[i].detail == events[i + 1].detail
            and events[i].si == events[i + 1].si
        )
        events[idx], events[idx + 1] = events[idx + 1], events[idx]
        _only_rule(_verify_events(verified_runtime, events), "TRC001")

    def test_overlapping_rotation_trips_trc002(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        # A rotation queued behind the port (starts > request cycle) moved
        # earlier overlaps the previous write's busy window.
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
            and e.detail["starts"] > e.cycle
        )
        events[idx].detail["starts"] -= 10
        report = _verify_events(verified_runtime, events)
        assert "TRC002" in {d.rule_id for d in report}, report.render_text()

    def test_bad_container_id_trips_trc003(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
        )
        events[idx].detail["container"] = 99
        report = _verify_events(verified_runtime, events)
        assert "TRC003" in {d.rule_id for d in report}, report.render_text()

    def test_duplicate_rotation_request_trips_trc004_only(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
        )
        dup = events[idx]
        events.insert(
            idx + 1,
            Event(dup.cycle, dup.kind, dup.task, dup.si, dict(dup.detail)),
        )
        _only_rule(_verify_events(verified_runtime, events), "TRC004")

    def test_unresident_molecule_trips_trc005(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        # Rewrite an early SW execution (no rotation has landed yet) as a
        # hardware one: the claimed molecule's atoms are not resident.
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.SI_EXECUTED and e.detail["mode"] == "SW"
        )
        si = verified_runtime.library.get(events[idx].si)
        impl = si.implementations[0]
        events[idx].detail["mode"] = impl.label or "HW"
        events[idx].detail["cycles"] = impl.cycles
        _only_rule(_verify_events(verified_runtime, events), "TRC005")

    def test_impossible_latency_trips_trc006(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.SI_EXECUTED
        )
        events[idx].detail["cycles"] = 999_999
        _only_rule(_verify_events(verified_runtime, events), "TRC006")

    def test_negative_energy_total_trips_trc007_only(
        self, verified_runtime, clean_events
    ):
        import dataclasses

        totals = dataclasses.asdict(verified_runtime.stats)
        totals["rotation_energy_nj"] = -totals["rotation_energy_nj"] - 1.0
        report = verify_trace(
            clean_events,
            verified_runtime.library,
            containers=len(verified_runtime.fabric),
            static_multiplicity=verified_runtime.fabric.static_multiplicity,
            totals=totals,
            energy_model=verified_runtime.energy_model,
        )
        _only_rule(report, "TRC007")

    def test_wrong_total_count_trips_trc007(
        self, verified_runtime, clean_events
    ):
        import dataclasses

        totals = dataclasses.asdict(verified_runtime.stats)
        totals["si_executions"] += 7
        report = verify_trace(
            clean_events,
            verified_runtime.library,
            containers=len(verified_runtime.fabric),
            static_multiplicity=verified_runtime.fabric.static_multiplicity,
            totals=totals,
            energy_model=verified_runtime.energy_model,
        )
        _only_rule(report, "TRC007")

    def test_wrong_rotation_duration_trips_trc008(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
        )
        events[idx].detail["finishes"] += 123
        report = _verify_events(verified_runtime, events)
        assert "TRC008" in {d.rule_id for d in report}, report.render_text()

    def test_unknown_atom_kind_trips_trc009(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
        )
        events[idx].detail["detail_atom"] = "NoSuchAtom"
        report = _verify_events(verified_runtime, events)
        assert "TRC009" in {d.rule_id for d in report}, report.render_text()

    def test_unknown_si_trips_trc010(self, verified_runtime, clean_events):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.SI_EXECUTED
        )
        e = events[idx]
        events[idx] = Event(e.cycle, e.kind, e.task, "GHOST", dict(e.detail))
        report = _verify_events(verified_runtime, events)
        assert "TRC010" in {d.rule_id for d in report}, report.render_text()

    def test_dropped_mode_switch_trips_trc011(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.SI_MODE_SWITCH
        )
        del events[idx]
        report = _verify_events(verified_runtime, events)
        assert "TRC011" in {d.rule_id for d in report}, report.render_text()

    def test_negative_forecast_expectation_trips_trc012(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.FORECAST
        )
        events[idx].detail["expected"] = -3.0
        _only_rule(_verify_events(verified_runtime, events), "TRC012")

    def test_slower_than_best_molecule_trips_trc013(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        # A late execution claiming SW mode while faster hardware molecules
        # are resident violates the best-available rule (§5) — SW *is* a
        # valid mode, so this is TRC013, not TRC006/TRC005.
        idx = next(
            i
            for i in range(len(events) - 1, -1, -1)
            if events[i].kind is EventKind.SI_EXECUTED
            and events[i].detail["mode"] != "SW"
        )
        si = verified_runtime.library.get(events[idx].si)
        events[idx].detail["mode"] = "SW"
        events[idx].detail["cycles"] = si.software_cycles
        report = _verify_events(verified_runtime, events)
        assert "TRC013" in {d.rule_id for d in report}, report.render_text()

    def test_container_failure_claiming_wrong_atom_trips_trc004(
        self, verified_runtime, clean_events
    ):
        events = _materialize(clean_events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.CONTAINER_FAILED
        )
        events[idx].detail["lost_atom"] = "NoSuchAtom"
        report = _verify_events(verified_runtime, events)
        assert "TRC004" in {d.rule_id for d in report}, report.render_text()
