"""Property-based tests: (N^n, union, intersection, <=) is a complete lattice."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AtomSpace, Molecule, infimum, supremum

SPACE = AtomSpace(["A", "B", "C", "D"])

counts = st.tuples(*[st.integers(min_value=0, max_value=8)] * SPACE.dimension)
molecules = counts.map(lambda c: Molecule(SPACE, c))


@given(molecules, molecules)
def test_union_commutative(a, b):
    assert (a | b) == (b | a)


@given(molecules, molecules)
def test_intersection_commutative(a, b):
    assert (a & b) == (b & a)


@given(molecules, molecules, molecules)
def test_union_associative(a, b, c):
    assert ((a | b) | c) == (a | (b | c))


@given(molecules, molecules, molecules)
def test_intersection_associative(a, b, c):
    assert ((a & b) & c) == (a & (b & c))


@given(molecules)
def test_union_idempotent_and_neutral(a):
    assert (a | a) == a
    assert (a | SPACE.zero()) == a


@given(molecules, molecules)
def test_absorption_laws(a, b):
    assert (a | (a & b)) == a
    assert (a & (a | b)) == a


@given(molecules)
def test_order_reflexive(a):
    assert a <= a


@given(molecules, molecules)
def test_order_antisymmetric(a, b):
    if a <= b and b <= a:
        assert a == b


@given(molecules, molecules, molecules)
def test_order_transitive(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(molecules, molecules)
def test_union_is_least_upper_bound(a, b):
    join = a | b
    assert a <= join and b <= join
    # No strictly smaller upper bound exists: join is minimal component-wise.
    for i, (ai, bi, ji) in enumerate(zip(a.counts, b.counts, join.counts)):
        assert ji == max(ai, bi)


@given(molecules, molecules)
def test_intersection_is_greatest_lower_bound(a, b):
    meet = a & b
    assert meet <= a and meet <= b
    for ai, bi, mi in zip(a.counts, b.counts, meet.counts):
        assert mi == min(ai, bi)


@given(molecules, molecules)
def test_order_consistent_with_lattice_ops(a, b):
    # a <= b  iff  a | b == b  iff  a & b == a
    assert (a <= b) == ((a | b) == b) == ((a & b) == a)


@given(molecules, molecules)
def test_residual_definition(want, have):
    res = want - have
    for wi, hi, ri in zip(want.counts, have.counts, res.counts):
        assert ri == max(wi - hi, 0)


@given(molecules, molecules)
def test_residual_completes_the_requirement(want, have):
    # Loading the residual on top of what is available always suffices.
    assert want <= (have + (want - have))


@given(molecules, molecules)
def test_residual_zero_iff_fits(want, have):
    assert (want - have).is_zero() == (want <= have)


@given(molecules, molecules)
def test_determinant_triangle_properties(a, b):
    assert abs(a | b) <= abs(a) + abs(b)
    assert abs(a | b) >= max(abs(a), abs(b))
    assert abs(a & b) <= min(abs(a), abs(b))
    assert abs(a | b) + abs(a & b) == abs(a) + abs(b)  # modular law on N^n


@settings(max_examples=50)
@given(st.lists(molecules, min_size=1, max_size=6))
def test_sup_inf_bound_every_member(ms):
    sup, inf = supremum(ms), infimum(ms)
    for m in ms:
        assert inf <= m <= sup


@settings(max_examples=50)
@given(st.lists(molecules, min_size=1, max_size=5), molecules)
def test_supremum_is_least(ms, candidate):
    # Any upper bound of ms dominates sup(ms).
    if all(m <= candidate for m in ms):
        assert supremum(ms) <= candidate
