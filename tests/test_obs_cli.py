"""``python -m repro metrics``: suites, formats, output files."""

import json

import pytest

from repro.cli import main
from repro.obs import SNAPSHOT_KIND, parse_prometheus


class TestMetricsCLI:
    def test_prom_format_covers_the_catalogue(self, capsys):
        code = main(["metrics", "--suite", "synthetic", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        families = [
            line.split()[2] for line in out.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert len(families) >= 12
        assert all(name.startswith("rispp_") for name in families)
        # The exposition is machine-parseable.
        assert set(parse_prometheus(out)) == set(families)

    def test_json_format_is_jsonl(self, capsys):
        code = main([
            "metrics", "--suite", "synthetic", "--quick", "--format", "json",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == SNAPSHOT_KIND
        assert header["families"] == len(lines) - 1

    def test_output_writes_the_exposition(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        code = main([
            "metrics", "--suite", "synthetic", "--quick",
            "--output", str(path),
        ])
        assert code == 0
        assert "# TYPE " in path.read_text()
        assert str(path) in capsys.readouterr().err

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["metrics", "--suite", "mp3"])

    def test_unknown_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["metrics", "--format", "xml"])

    def test_usage_mentions_metrics(self, capsys):
        main([])
        assert "metrics" in capsys.readouterr().out
