"""repro.obs exporters: Prometheus round trip, deterministic JSONL."""

import json

import pytest

from repro.obs import (
    SNAPSHOT_KIND,
    SNAPSHOT_SCHEMA_VERSION,
    MetricRegistry,
    exposition_state,
    parse_prometheus,
    run_metrics_suite,
    snapshot,
    to_jsonl,
    to_prometheus,
)


@pytest.fixture(scope="module")
def suite_registry():
    registry, _runtime = run_metrics_suite("synthetic", quick=True)
    return registry


class TestPrometheus:
    def test_exposition_has_help_and_type_headers(self, suite_registry):
        text = to_prometheus(suite_registry)
        assert text.endswith("\n")
        families = [
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert len(families) == len(set(families))
        assert "rispp_si_executions_total" in families
        assert "rispp_rotation_latency_cycles" in families

    def test_histograms_render_cumulative_buckets(self, suite_registry):
        text = to_prometheus(suite_registry)
        assert 'rispp_si_latency_cycles_bucket{le="+Inf"}' in text
        assert "rispp_si_latency_cycles_sum" in text
        assert "rispp_si_latency_cycles_count" in text

    def test_round_trip_is_lossless(self, suite_registry):
        text = to_prometheus(suite_registry)
        assert parse_prometheus(text) == exposition_state(suite_registry)

    def test_round_trip_survives_deterministic_filter(self, suite_registry):
        text = to_prometheus(suite_registry, deterministic_only=True)
        assert parse_prometheus(text) == exposition_state(
            suite_registry, deterministic_only=True
        )

    def test_parse_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="matches no declared family"):
            parse_prometheus("rispp_mode_switches_total 3\n")

    def test_parse_rejects_unknown_family(self):
        text = (
            "# TYPE rispp_mode_switches_total counter\n"
            "rispp_bogus_series 1\n"
        )
        with pytest.raises(ValueError, match="matches no declared family"):
            parse_prometheus(text)


class TestSnapshot:
    def test_schema_header(self, suite_registry):
        snap = snapshot(suite_registry)
        assert snap["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snap["kind"] == SNAPSHOT_KIND
        assert snap["deterministic_only"] is True
        assert snap["metrics"]

    def test_deterministic_snapshot_drops_span_timers(self, suite_registry):
        names = {m["name"] for m in snapshot(suite_registry)["metrics"]}
        assert "rispp_replan_duration_seconds" not in names
        # ... but the non-deterministic export keeps them.
        full = {
            m["name"]
            for m in snapshot(suite_registry, deterministic_only=False)[
                "metrics"
            ]
        }
        assert "rispp_replan_duration_seconds" in full

    def test_snapshot_is_json_safe(self, suite_registry):
        snap = snapshot(suite_registry)
        assert json.loads(json.dumps(snap)) == snap

    def test_integral_values_render_as_ints(self, suite_registry):
        for family in snapshot(suite_registry)["metrics"]:
            for sample in family["samples"]:
                value = sample.get("value", sample.get("count"))
                if float(value).is_integer():
                    assert isinstance(value, int), family["name"]


class TestJsonl:
    def test_header_plus_one_line_per_family(self, suite_registry):
        lines = to_jsonl(suite_registry).splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == SNAPSHOT_KIND
        assert header["families"] == len(lines) - 1
        for line in lines[1:]:
            assert json.loads(line)["name"].startswith("rispp_")

    def test_seeded_runs_snapshot_byte_identically(self):
        reg_a, _ = run_metrics_suite("synthetic", quick=True)
        reg_b, _ = run_metrics_suite("synthetic", quick=True)
        assert to_jsonl(reg_a) == to_jsonl(reg_b)
        assert snapshot(reg_a) == snapshot(reg_b)

    def test_empty_registry_exports_cleanly(self):
        reg = MetricRegistry()
        assert to_prometheus(reg) == "\n"
        assert snapshot(reg)["metrics"] == []
