"""Tests for 4x4 intra prediction and the causal intra frame coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264 import synthetic_frame
from repro.apps.h264.intra import (
    available_modes,
    best_intra_mode,
    encode_intra_frame,
    intra_predict_4x4,
)

pixels4 = arrays(np.int64, (4,), elements=st.integers(0, 255))
blocks = arrays(np.int64, (4, 4), elements=st.integers(0, 255))


class TestPredictionModes:
    def test_vertical_copies_top_row(self):
        pred = intra_predict_4x4("V", np.array([1, 2, 3, 4]), None)
        assert (pred == np.tile([1, 2, 3, 4], (4, 1))).all()

    def test_horizontal_copies_left_column(self):
        pred = intra_predict_4x4("H", None, np.array([5, 6, 7, 8]))
        assert (pred[:, 0] == [5, 6, 7, 8]).all()
        assert (pred[0] == 5).all()

    def test_dc_averages_neighbours(self):
        pred = intra_predict_4x4(
            "DC", np.array([10, 10, 10, 10]), np.array([20, 20, 20, 20])
        )
        assert (pred == 15).all()

    def test_dc_without_neighbours_is_mid_grey(self):
        assert (intra_predict_4x4("DC", None, None) == 128).all()

    def test_missing_neighbours_rejected(self):
        with pytest.raises(ValueError):
            intra_predict_4x4("V", None, np.zeros(4))
        with pytest.raises(ValueError):
            intra_predict_4x4("H", np.zeros(4), None)
        with pytest.raises(ValueError):
            intra_predict_4x4("PLANE", np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError):
            intra_predict_4x4("V", np.zeros(3), None)

    def test_available_modes(self):
        assert available_modes(None, None) == ["DC"]
        assert available_modes(np.zeros(4), None) == ["DC", "V"]
        assert set(available_modes(np.zeros(4), np.zeros(4))) == {"DC", "V", "H"}


class TestModeDecision:
    def test_vertical_content_picks_vertical(self):
        top = np.array([10, 80, 150, 220])
        block = np.tile(top, (4, 1))
        mode, pred, sad = best_intra_mode(block, top, np.array([100] * 4))
        assert mode == "V"
        assert sad == 0

    def test_horizontal_content_picks_horizontal(self):
        left = np.array([10, 80, 150, 220])
        block = np.tile(left.reshape(4, 1), (1, 4))
        mode, _pred, sad = best_intra_mode(block, np.array([100] * 4), left)
        assert mode == "H"
        assert sad == 0

    @given(blocks, pixels4, pixels4)
    @settings(max_examples=40)
    def test_decision_is_argmin(self, block, top, left):
        mode, pred, sad = best_intra_mode(block, top, left)
        for other in available_modes(top, left):
            other_pred = intra_predict_4x4(other, top, left)
            assert sad <= int(np.abs(block - other_pred).sum())


class TestIntraFrame:
    def test_reconstruction_quality(self):
        frame = synthetic_frame(32, 32, seed=4)
        result = encode_intra_frame(frame, qp=8)
        assert result.reconstructed.shape == frame.shape
        assert result.psnr(frame) > 38

    def test_psnr_falls_with_qp(self):
        frame = synthetic_frame(32, 32, seed=4)
        psnrs = [
            encode_intra_frame(frame, qp).psnr(frame) for qp in (0, 16, 32, 48)
        ]
        assert psnrs == sorted(psnrs, reverse=True)

    def test_modes_and_levels_recorded(self):
        frame = synthetic_frame(16, 16, seed=2)
        result = encode_intra_frame(frame, qp=20)
        assert len(result.modes) == 16
        assert len(result.levels) == 16
        assert result.modes[(0, 0)] == "DC"  # no neighbours at the corner
        assert all(m in ("DC", "V", "H") for m in result.modes.values())

    def test_intra_beats_flat_grey_baseline(self):
        # The Fig. 7 "Intra MB injection" exists because real intra
        # prediction beats assuming nothing: compare against flat 128.
        frame = synthetic_frame(32, 32, seed=6)
        from repro.apps.h264.quant import quantize_4x4
        from repro.apps.h264.transforms import dct_4x4
        from repro.apps.h264.entropy import block_bits

        qp = 24
        result = encode_intra_frame(frame, qp)
        intra_bits = sum(block_bits(lv) for lv in result.levels.values())
        flat_bits = 0
        for top in range(0, 32, 4):
            for left in range(0, 32, 4):
                block = frame[top : top + 4, left : left + 4]
                flat_bits += block_bits(quantize_4x4(dct_4x4(block - 128), qp))
        assert intra_bits < flat_bits

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            encode_intra_frame(np.zeros((10, 12)), qp=20)
