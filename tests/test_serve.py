"""`repro serve` integration: facade, daemon endpoints, determinism.

The contract under test is :doc:`docs/serving.md`: a scenario request
POSTed to the daemon returns *byte-identical* output to running
``repro chaos --format json`` with the same knobs, deterministically
per seed, regardless of which pool worker picks it up.  The daemon
itself is exercised in-process (a real ``ScenarioServer`` on an
ephemeral port, driven over real HTTP) so the tests cover routing,
validation codes and the metrics endpoint without subprocess overhead.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.faults import run_chaos_suite
from repro.obs import MetricRegistry, parse_prometheus, to_prometheus
from repro.serve import (
    ENDPOINTS,
    SCENARIO_DEFAULTS,
    RuntimeFacade,
    ScenarioError,
    ScenarioRequest,
    render_scenario,
)
from repro.serve.daemon import ScenarioServer


def expected_render(**overrides) -> str:
    """What ``repro chaos --format json`` prints for these knobs."""
    knobs = {**SCENARIO_DEFAULTS, **overrides}
    report = run_chaos_suite(
        knobs["suite"],
        seed=knobs["seed"],
        fault_rate=knobs["fault_rate"],
        quick=knobs["quick"],
        scrub_period=knobs["scrub_period"],
        max_retries=knobs["max_retries"],
        backoff_cycles=knobs["backoff_cycles"],
    )
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


class TestScenarioRequest:
    def test_defaults_fill_missing_fields(self):
        request = ScenarioRequest.from_payload({"seed": 7})
        assert request.seed == 7
        assert request.suite == SCENARIO_DEFAULTS["suite"]
        assert request.fault_rate == SCENARIO_DEFAULTS["fault_rate"]
        assert request.quick is SCENARIO_DEFAULTS["quick"]
        assert request.to_payload() == {**SCENARIO_DEFAULTS, "seed": 7}

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"flux_capacitor": 1}, "unknown scenario field"),
            ({"suite": "doom"}, "unknown suite"),
            ({"seed": 0}, "seed must be positive"),
            ({"seed": "many"}, "malformed scenario field"),
            ({"fault_rate": -1.0}, "fault_rate must be finite"),
            ({"fault_rate": float("inf")}, "fault_rate must be finite"),
            ({"scrub_period": 0}, "scrub_period must be positive"),
            ({"max_retries": -1}, "max_retries cannot be negative"),
            ({"backoff_cycles": 0}, "backoff_cycles must be positive"),
            ({"backend": 3}, "backend must be a string or null"),
            ({"backend": "abacus"}, "not available here"),
            ({"quick": "yes"}, "quick must be a boolean"),
            ("not a mapping", "must be a JSON object"),
        ],
    )
    def test_junk_is_rejected(self, payload, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            ScenarioRequest.from_payload(payload)


class TestRuntimeFacade:
    def test_rejects_non_positive_worker_count(self):
        with pytest.raises(ValueError, match="worker count must be positive"):
            RuntimeFacade(workers=0)

    def test_render_matches_direct_chaos_run(self):
        request = ScenarioRequest.from_payload({"seed": 3})
        assert render_scenario(request) == expected_render(seed=3)

    def test_run_is_deterministic_and_counts_scenarios(self):
        registry = MetricRegistry()
        with RuntimeFacade(workers=2, metrics=registry) as facade:
            first = facade.run({"seed": 3})
            second = facade.run({"seed": 3})
        assert first == second == expected_render(seed=3)
        series = parse_prometheus(to_prometheus(registry))
        counted = sum(
            value
            for name, entry in series.items()
            if "serve_scenarios_total" in name
            for value in entry["samples"].values()
        )
        assert counted == 2

    def test_validation_error_raises_before_pool(self):
        with RuntimeFacade(workers=1) as facade:
            with pytest.raises(ScenarioError, match="seed must be positive"):
                facade.run({"seed": -4})

    def test_submit_after_shutdown_is_refused(self):
        facade = RuntimeFacade(workers=1)
        facade.shutdown()
        assert not facade.ready()
        with pytest.raises(RuntimeError, match="shut down"):
            facade.submit({"seed": 1})
        facade.shutdown()  # idempotent


# ---------------------------------------------------------------------------
# Daemon over real HTTP on an ephemeral port
# ---------------------------------------------------------------------------


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def _post(base: str, path: str, body: bytes):
    request = urllib.request.Request(
        base + path,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


@pytest.fixture(scope="module")
def daemon():
    server = ScenarioServer("127.0.0.1", 0, workers=2)
    thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.stop_requested.set()
        thread.join(timeout=30)
        server.server_close()


class TestDaemonEndpoints:
    def test_health_and_readiness(self, daemon):
        _, base = daemon
        assert _get(base, "/healthz") == (200, "ok\n")
        assert _get(base, "/readyz") == (200, "ready\n")

    def test_unknown_routes_are_404(self, daemon):
        _, base = daemon
        status, body = _get(base, "/teapot")
        assert status == 404
        assert "no such endpoint: GET /teapot" in json.loads(body)["error"]
        status, body = _post(base, "/teapot", b"{}")
        assert status == 404

    def test_scenario_response_is_byte_identical_to_cli(self, daemon):
        _, base = daemon
        status, body = _post(base, "/scenario", json.dumps({"seed": 3}).encode())
        assert status == 200
        assert body == expected_render(seed=3)

    def test_same_seed_is_identical_across_workers(self, daemon):
        _, base = daemon
        results: dict[int, tuple[int, str]] = {}

        def run(slot: int, seed: int) -> None:
            results[slot] = _post(
                base, "/scenario", json.dumps({"seed": seed}).encode()
            )

        threads = [
            threading.Thread(target=run, args=(slot, seed))
            for slot, seed in enumerate([3, 5, 3])
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in results.values())
        assert results[0][1] == results[2][1]
        assert results[0][1] != results[1][1]

    @pytest.mark.parametrize(
        "body, status, fragment",
        [
            (b"", 400, "needs a JSON body"),
            (b"not json", 400, "not JSON"),
            (b'{"seed": 0}', 400, "seed must be positive"),
            (b'{"flux": 1}', 400, "unknown scenario field"),
        ],
    )
    def test_bad_scenario_requests(self, daemon, body, status, fragment):
        _, base = daemon
        got_status, got_body = _post(base, "/scenario", body)
        assert got_status == status
        assert fragment in json.loads(got_body)["error"]

    @pytest.mark.parametrize(
        "length, status, fragment",
        [
            (str((1 << 20) + 1), 413, "too large"),
            ("a lot", 400, "malformed Content-Length"),
        ],
    )
    def test_bad_content_length_is_refused_unread(
        self, daemon, length, status, fragment
    ):
        # The daemon answers from the Content-Length header alone, before
        # reading any body — so the probe claims a length and sends none.
        server, _base = daemon
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.putrequest("POST", "/scenario")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", length)
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == status
            assert fragment in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_metrics_parse_and_count_scenarios(self, daemon):
        _, base = daemon
        status, text = _get(base, "/metrics")
        assert status == 200
        series = parse_prometheus(text)
        assert any("serve_scenarios_total" in name for name in series)
        assert any("serve_requests_total" in name for name in series)
        assert any("serve_workers" in name for name in series)

    def test_documented_endpoints_all_answer(self, daemon):
        _, base = daemon
        for method, path, _ in ENDPOINTS:
            if path == "/shutdown":
                continue  # covered by the dedicated lifecycle test
            if method == "GET":
                status, _body = _get(base, path)
            else:
                status, _body = _post(
                    base, path, json.dumps({"seed": 2}).encode()
                )
            assert status == 200, f"{method} {path} -> {status}"


def test_shutdown_endpoint_drains_and_stops():
    server = ScenarioServer("127.0.0.1", 0, workers=1)
    thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        status, body = _post(base, "/shutdown", b"")
        assert status == 200
        assert json.loads(body) == {"stopping": True}
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not server.facade.ready()
    finally:
        server.stop_requested.set()
        thread.join(timeout=10)
        server.server_close()
