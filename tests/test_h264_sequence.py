"""Tests for the closed-loop multi-frame sequence encoder."""

import numpy as np
import pytest

from repro.apps.h264 import synthetic_frame
from repro.apps.h264.sequence import encode_sequence


@pytest.fixture(scope="module")
def sequence():
    return [synthetic_frame(64, 64, seed=3, shift=s) for s in range(3)]


class TestEncodeSequence:
    def test_per_frame_stats(self, sequence):
        report = encode_sequence(sequence, qp=20)
        assert len(report.frames) == 3
        for stats in report.frames:
            assert stats.macroblocks == 4
            assert stats.bits > 0
            assert stats.psnr_db > 30
            assert stats.si_counts["SATD_4x4"] == 4 * 256

    def test_inter_frames_cost_fewer_bits_than_intra(self, sequence):
        # Frame 0 predicts from flat grey; later frames from the
        # reconstructed neighbour: real prediction saves bits.
        report = encode_sequence(sequence, qp=20)
        first = report.frames[0].bits
        for later in report.frames[1:]:
            assert later.bits < first

    def test_rate_distortion_tradeoff(self, sequence):
        fine = encode_sequence(sequence, qp=12)
        coarse = encode_sequence(sequence, qp=40)
        assert fine.mean_psnr() > coarse.mean_psnr()
        assert fine.total_bits() > coarse.total_bits()

    def test_reconstructed_frames_returned(self, sequence):
        report = encode_sequence(sequence, qp=20)
        assert len(report.reconstructed) == 3
        for recon, frame in zip(report.reconstructed, sequence):
            assert recon.shape == frame.shape
            assert recon.min() >= 0 and recon.max() <= 255

    def test_static_scene_is_nearly_free_after_frame0(self):
        frames = [synthetic_frame(64, 64, seed=7, shift=0)] * 3
        report = encode_sequence(frames, qp=20)
        # Identical frames: inter prediction is near-perfect.
        assert report.frames[1].bits < report.frames[0].bits / 2
        assert report.frames[1].psnr_db > 40

    def test_intra_first_frame_improves_frame0(self, sequence):
        flat = encode_sequence(sequence, qp=24)
        intra = encode_sequence(sequence, qp=24, intra_first_frame=True)
        # Real intra prediction beats the flat-grey proxy on per-MB rate
        # at comparable (or better) quality.  (The intra frame covers the
        # whole frame; the inter path only the margin-safe region.)
        flat_rate = flat.frames[0].bits / flat.frames[0].macroblocks
        intra_rate = intra.frames[0].bits / intra.frames[0].macroblocks
        assert intra_rate < flat_rate
        assert intra.frames[0].psnr_db > flat.frames[0].psnr_db - 1.0
        assert intra.frames[0].intra_macroblocks == intra.frames[0].macroblocks
        # Later frames still encode normally.
        assert len(intra.frames) == len(sequence)
        assert intra.frames[1].bits > 0

    def test_validation(self, sequence):
        with pytest.raises(ValueError):
            encode_sequence([], qp=20)
        with pytest.raises(ValueError):
            encode_sequence(
                [sequence[0], np.zeros((48, 64), dtype=np.int64)], qp=20
            )
        with pytest.raises(ValueError):
            encode_sequence([np.zeros((16, 16), dtype=np.int64)], qp=20)
