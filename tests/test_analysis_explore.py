"""rispp-explore: the bounded model checker (`repro.analysis.explore`).

Three layers of acceptance:

* **proof** — exhausting the tiny scope visits every reachable state,
  proves all MC rules on the seed runtime and reports dedupe statistics;
* **counterexamples** — each hand-mutated runtime (one seeded bug per
  invariant) yields a *minimized* counterexample whose golden-trace
  payload rispp-verify independently flags with the matching TRC rule;
* **regressions** — explorer bugs found while bringing the tool up
  (half-advanced worlds after `forecast`/`si_cycles`) stay fixed.
"""

import pytest

from repro.analysis.explore import (
    SCOPES,
    ExploreScope,
    _apply,
    _build_world,
    _copy_world,
    _next_interesting,
    _state_key,
    build_explore_library,
    explore,
)
from repro.faults.model import FaultKind

# ---------------------------------------------------------------------------
# Micro scopes: smallest configurations that reach each seeded bug fast.
# ---------------------------------------------------------------------------

#: One SI, one fault, three ticks: enough to rotate, corrupt, detect via
#: the scrubber, quarantine and request the repair.
REPAIR_SCOPE = ExploreScope(
    name="micro-repair",
    library_name="explore-tiny",
    containers=2,
    si_budgets=(("SI_A", 1, 0, 1), ("SI_B", 0, 0, 0)),
    tick_budget=3,
    fault_budget=1,
    fault_actions=((FaultKind.TRANSIENT.value, 0),),
    expected=(("SI_A", 4.0),),
)

#: SI_B's best molecule needs two atoms -> one replan issues two port
#: jobs, which is what the overlap mutator needs to collide.
TWO_JOB_SCOPE = ExploreScope(
    name="micro-twojob",
    library_name="explore-tiny",
    containers=2,
    si_budgets=(("SI_A", 0, 0, 0), ("SI_B", 1, 0, 1)),
    tick_budget=2,
    fault_budget=0,
    expected=(("SI_B", 3.0),),
)

#: Forecast + tick to rotation completion: a loaded molecule the
#: dispatch mutator can then refuse to use.
DISPATCH_SCOPE = ExploreScope(
    name="micro-dispatch",
    library_name="explore-tiny",
    containers=2,
    si_budgets=(("SI_A", 1, 0, 1), ("SI_B", 0, 0, 0)),
    tick_budget=2,
    fault_budget=0,
    expected=(("SI_A", 4.0),),
)


def _overlap_mutator(rt):
    """Seeded bug: the port forgets its busy window after every request,
    so a second job of the same replan starts while the first writes."""
    port = rt.port
    original = port.request

    def patched(*args, **kwargs):
        job = original(*args, **kwargs)
        port.busy_until = 0
        return job

    port.request = patched


def _drop_repair_flag_mutator(rt):
    """Seeded bug: repair requests are recorded as plain planner jobs."""
    original = rt._record_rotation_request

    def patched(job, now, **_kwargs):
        original(job, now, repair=False)

    rt._record_rotation_request = patched


def _slow_repair_mutator(rt):
    """Seeded bug: repair writes take three orders of magnitude too long."""
    port = rt.port
    original = port.request

    def patched(*args, **kwargs):
        job = original(*args, **kwargs)
        if kwargs.get("repair"):
            job.finish_at += 10_000
            port.busy_until = job.finish_at
        return job

    port.request = patched


def _no_release_mutator(rt):
    """Seeded bug: completed repairs never release their quarantine."""
    rt._faults.on_rotation_completed = lambda runtime, job: None


def _dispatch_mutator(rt):
    """Seeded bug: dispatch ignores every loaded molecule."""
    rt._best_available = lambda si: None


class TestTinyProof:
    @pytest.fixture(scope="class")
    def tiny(self):
        return explore("tiny")

    def test_exhausts_the_scope(self, tiny):
        assert tiny.complete
        assert tiny.terminal_states > 0
        assert tiny.states_explored > 10_000

    def test_proves_every_mc_rule_on_the_seed(self, tiny):
        assert tiny.report.exit_code() == 0
        assert not tiny.counterexamples
        assert tiny.rules_proven == tiny.rules_checked
        assert len(tiny.rules_proven) == 10

    def test_reports_dedupe_statistics(self, tiny):
        assert tiny.deduplicated > 0
        assert 0.0 < tiny.dedupe_ratio() < 1.0
        assert tiny.transitions > tiny.states_explored

    def test_to_dict_is_json_shaped(self, tiny):
        import json

        payload = tiny.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["complete"] is True
        assert payload["rules_proven"] == list(tiny.rules_proven)
        assert payload["dedupe_ratio"] == round(tiny.dedupe_ratio(), 4)


class TestSelection:
    def test_select_narrows_the_checked_set(self):
        result = explore(REPAIR_SCOPE, select=["MC001", "MC002"])
        assert result.rules_checked == ("MC001", "MC002")
        assert result.rules_proven == ("MC001", "MC002")

    def test_ignore_drops_rules(self):
        result = explore(REPAIR_SCOPE, select=["MC001", "MC002"],
                         ignore=["MC002"])
        assert result.rules_checked == ("MC001",)

    def test_empty_selection_raises(self):
        with pytest.raises(ValueError, match="no MC rule"):
            explore(REPAIR_SCOPE, select=["MC001"], ignore=["MC001"])

    def test_non_mc_selector_raises(self):
        with pytest.raises(ValueError):
            explore(REPAIR_SCOPE, select=["NOPE"])

    def test_max_states_cap_reports_incomplete(self):
        result = explore(REPAIR_SCOPE, select=["MC001"], max_states=5)
        assert not result.complete
        assert result.rules_proven == ()
        assert result.states_explored <= 5


class TestCounterexamples:
    """Each seeded runtime bug must produce a minimized counterexample
    that rispp-verify independently flags with the matching TRC rule."""

    def _one(self, scope, mutator, rule_id):
        result = explore(scope, mutator=mutator, select=[rule_id])
        assert [c.rule_id for c in result.counterexamples] == [rule_id], (
            f"expected a {rule_id} counterexample, got "
            f"{[(c.rule_id, c.message) for c in result.counterexamples]}"
        )
        cx = result.counterexamples[0]
        assert result.report.exit_code() == 1
        assert cx.actions, "counterexample must retain at least one action"
        assert cx.golden["explore"]["rule"] == rule_id
        assert cx.golden["explore"]["scope"] == scope.name
        return cx

    def test_port_overlap_is_found_and_verifier_confirms(self):
        cx = self._one(TWO_JOB_SCOPE, _overlap_mutator, "MC001")
        assert "TRC002" in cx.verified_rule_ids

    def test_dropped_repair_flag_is_found_and_verifier_confirms(self):
        cx = self._one(REPAIR_SCOPE, _drop_repair_flag_mutator, "MC004")
        assert "TRC015" in cx.verified_rule_ids

    def test_slow_repair_breaks_the_static_bound(self):
        cx = self._one(REPAIR_SCOPE, _slow_repair_mutator, "MC008")
        assert "TRC008" in cx.verified_rule_ids

    def test_unreleased_quarantine_deadlocks(self):
        cx = self._one(REPAIR_SCOPE, _no_release_mutator, "MC005")
        assert "TRC014" in cx.verified_rule_ids

    def test_dispatch_regression_is_found_and_verifier_confirms(self):
        cx = self._one(DISPATCH_SCOPE, _dispatch_mutator, "MC010")
        assert "TRC013" in cx.verified_rule_ids

    def test_minimization_shrinks_the_witness(self):
        full = explore(REPAIR_SCOPE, mutator=_drop_repair_flag_mutator,
                       select=["MC004"], minimize=False)
        minimized = explore(REPAIR_SCOPE, mutator=_drop_repair_flag_mutator,
                            select=["MC004"])
        assert len(minimized.counterexamples[0].actions) <= len(
            full.counterexamples[0].actions
        )

    def test_counterexample_golden_round_trips_through_verify(self, tmp_path):
        import json

        from repro.analysis import load_golden, verify_golden_result

        cx = self._one(REPAIR_SCOPE, _drop_repair_flag_mutator, "MC004")
        path = tmp_path / "counterexample.json"
        path.write_text(json.dumps(cx.golden, indent=2, sort_keys=True))
        golden = load_golden(path)  # the explore metadata key is tolerated
        result = verify_golden_result(golden)
        flagged = {d.rule_id for d in result.report}
        assert "TRC015" in flagged


class TestExplorerRegressions:
    """Bugs in the explorer itself, found against the seed runtime."""

    def test_apply_leaves_no_half_advanced_world(self):
        # rt.forecast() advances *before* replanning, so a freshly issued
        # job once sat unstarted at `now` — the explorer then saw a fake
        # deadlock (MC005) and a dispatch mismatch (MC010).  _apply must
        # re-advance after every action.
        world = _build_world(SCOPES["tiny"], None)
        _apply(world, ("forecast", "SI_A"), SCOPES["tiny"])
        nxt = _next_interesting(world)
        assert nxt is None or nxt > world.now
        for job in world.runtime.port.pending_jobs():
            assert job.started or job.started_at > world.now

    def test_structural_clone_is_independent(self):
        scope = SCOPES["tiny"]
        world = _build_world(scope, None)
        _apply(world, ("forecast", "SI_A"), scope)
        clone = _copy_world(world)
        assert _state_key(world, {}) == _state_key(clone, {})
        _apply(clone, ("tick",), scope)
        assert _state_key(world, {}) != _state_key(clone, {})
        # The original world did not advance with the clone.
        assert world.now < clone.now

    def test_clone_preserves_repair_job_identity(self):
        # injector._repair_of must point at the SAME job objects as
        # port._pending after a clone, or repair release breaks.
        scope = REPAIR_SCOPE
        world = _build_world(scope, None)
        for action in (("forecast", "SI_A"), ("tick",),
                       ("fault", FaultKind.TRANSIENT.value, 0), ("tick",)):
            _apply(world, action, scope)
        clone = _copy_world(world)
        inj = clone.runtime._faults
        pending = clone.runtime.port.pending_jobs()
        for job in inj._repair_of.values():
            assert any(j is job for j in pending)

    def test_exploration_is_deterministic(self):
        a = explore(REPAIR_SCOPE)
        b = explore(REPAIR_SCOPE)
        assert a.to_dict() == b.to_dict()

    def test_explore_metrics_are_recorded(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry(enabled=True)
        result = explore(REPAIR_SCOPE, select=["MC001"], metrics=registry)
        counter = registry.counter("explore_states_total")
        visited = counter.labels(outcome="visited").value
        dedup = counter.labels(outcome="deduplicated").value
        assert visited == result.states_explored
        assert dedup == result.deduplicated


class TestLibraries:
    def test_explore_libraries_resolve_by_name(self):
        for name in ("explore-tiny", "explore-small"):
            library = build_explore_library(name)
            assert library.names()

    def test_unknown_library_raises(self):
        with pytest.raises(ValueError, match="unknown explore library"):
            build_explore_library("explore-huge")

    def test_verify_build_library_knows_explore_names(self):
        from repro.analysis.verify import build_library

        assert build_library("explore-tiny").names() == \
            build_explore_library("explore-tiny").names()

    def test_scopes_are_registered(self):
        assert set(SCOPES) == {"tiny", "small"}
        for scope in SCOPES.values():
            build_explore_library(scope.library_name)
