"""Tests for library serialisation, networkx export, and phase rotation."""

import networkx as nx
import pytest

from repro.apps.h264 import build_h264_library
from repro.apps.h264.phases import (
    FRAME_CYCLES,
    PHASES,
    phase_area_comparison,
    run_phase_rotation,
)
from repro.cfg import ControlFlowGraph, strongly_connected_components
from repro.core.serialize import (
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)


class TestSerialization:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = build_h264_library(include_sad=True)
        path = save_library(original, tmp_path / "h264.json")
        loaded = load_library(path)
        assert loaded.names() == original.names()
        assert loaded.space == original.space
        for name in original.names():
            a, b = original.get(name), loaded.get(name)
            assert a.software_cycles == b.software_cycles
            assert a.description == b.description
            assert [(i.molecule.counts, i.cycles, i.label) for i in a.implementations] == [
                (i.molecule.counts, i.cycles, i.label) for i in b.implementations
            ]
        for kind in original.catalogue:
            other = loaded.catalogue.get(kind.name)
            assert other == kind

    def test_loaded_library_is_functional(self, tmp_path):
        path = save_library(build_h264_library(), tmp_path / "lib.json")
        library = load_library(path)
        # Same Fig. 11 behaviour after the round trip.
        from repro.apps.h264 import available_atoms_for_config

        avail = available_atoms_for_config(library, "4 Atoms")
        assert library.get("SATD_4x4").cycles_with(avail) == 24

    def test_version_checked(self):
        data = library_to_dict(build_h264_library())
        data["format"] = 99
        with pytest.raises(ValueError):
            library_from_dict(data)

    def test_malformed_data_rejected(self):
        data = library_to_dict(build_h264_library())
        del data["sis"][0]["software_cycles"]
        with pytest.raises(ValueError):
            library_from_dict(data)
        with pytest.raises(ValueError):
            library_from_dict({"format": 1, "catalogue": {"kinds": [{}]}, "sis": []})


class TestNetworkxExport:
    def sample(self) -> ControlFlowGraph:
        cfg = ControlFlowGraph()
        cfg.block("a", cycles=2)
        cfg.block("b", cycles=3, si_usages={"S": 1})
        cfg.block("c", cycles=1)
        cfg.add_edge("a", "b", count=30)
        cfg.add_edge("a", "c", count=70)
        cfg.add_edge("b", "b", count=60)
        cfg.add_edge("b", "c", count=30)
        return cfg

    def test_structure_and_attributes(self):
        g = self.sample().to_networkx()
        assert set(g.nodes) == {"a", "b", "c"}
        assert g.nodes["b"]["si_usages"] == {"S": 1}
        assert g.edges["a", "b"]["count"] == 30
        assert g.edges["a", "b"]["probability"] == pytest.approx(0.3)

    def test_sccs_agree_with_networkx(self):
        cfg = self.sample()
        ours = {frozenset(c) for c in strongly_connected_components(cfg)}
        theirs = {
            frozenset(c)
            for c in nx.strongly_connected_components(cfg.to_networkx())
        }
        assert ours == theirs

    def test_sccs_agree_on_larger_random_graph(self):
        import random

        rng = random.Random(5)
        cfg = ControlFlowGraph()
        n = 30
        for i in range(n):
            cfg.block(f"b{i}")
        edges = set()
        for _ in range(60):
            a, b = rng.randrange(n), rng.randrange(n)
            if (a, b) not in edges:
                edges.add((a, b))
                cfg.add_edge(f"b{a}", f"b{b}")
        ours = {frozenset(c) for c in strongly_connected_components(cfg)}
        theirs = {
            frozenset(c)
            for c in nx.strongly_connected_components(cfg.to_networkx())
        }
        assert ours == theirs


class TestPhaseRotation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_phase_rotation(frames=2, containers=8)

    def test_all_phases_executed_each_frame(self, report):
        assert len(report.results) == 2 * len(PHASES)
        assert report.frames() == 2

    def test_steady_state_mostly_hardware(self, report):
        for name, _share, _workload in PHASES:
            assert report.steady_state_hw_fraction(name) > 0.7, name

    def test_second_frame_faster_than_first(self, report):
        assert report.frame_si_cycles(1) < report.frame_si_cycles(0)

    def test_si_work_fits_the_frame(self, report):
        # SIs are hot spots, not the whole frame: in steady state their
        # cycles fit comfortably within the frame budget.
        assert report.frame_si_cycles(1) < FRAME_CYCLES

    def test_lookahead_beats_boundary_forecasts(self):
        ahead = run_phase_rotation(frames=2, containers=8, lookahead=True)
        boundary = run_phase_rotation(frames=2, containers=8, lookahead=False)
        assert ahead.frame_si_cycles(1) < boundary.frame_si_cycles(1)

    def test_area_comparison(self):
        cmp = phase_area_comparison(containers=8)
        assert cmp.extensible_slices == sum(cmp.per_phase_slices.values())
        assert cmp.rispp_slices < cmp.extensible_slices
        assert 0 < cmp.saving_pct < 100

    def test_frames_validated(self):
        with pytest.raises(ValueError):
            run_phase_rotation(frames=0)
