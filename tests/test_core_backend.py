"""The pluggable ComputeBackend facade: registry, resolution, kernels."""

import pytest

from repro.core import (
    AtomSpace,
    BackendUnavailableError,
    ComputeBackend,
    ForecastedSI,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    default_backend,
    get_backend,
    infimum,
    resolve_backend,
    select_exhaustive,
    select_greedy,
    set_default_backend,
    supremum,
)
from repro.core import backend as backend_mod


@pytest.fixture(autouse=True)
def _isolated_backend_default(monkeypatch):
    """Pin the process default to the hardcoded fallback for each test.

    The suite may run under ``REPRO_BACKEND=numpy`` (the CI backend
    matrix does exactly that); these tests exercise the resolution
    machinery itself, so they start from a clean slate.
    """
    monkeypatch.setattr(backend_mod, "_default_spec", None)
    monkeypatch.delenv(backend_mod.DEFAULT_BACKEND_ENV, raising=False)


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(available_backends()) == {"reference", "numpy"}

    def test_instances_are_cached_singletons(self):
        assert get_backend("reference") is get_backend("reference")
        assert get_backend("numpy") is get_backend("numpy")
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_instance_specs_pass_through(self):
        mine = ReferenceBackend()
        assert get_backend(mine) is mine

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(ValueError, match="numpy, reference"):
            get_backend("cuda")

    def test_non_string_spec_rejected(self):
        with pytest.raises(ValueError):
            get_backend(42)

    def test_unavailable_backend_raises_on_construction(self, monkeypatch):
        def refuse():
            raise BackendUnavailableError("numpy is not installed")

        monkeypatch.setattr(backend_mod, "_require_numpy", refuse)
        monkeypatch.setattr(backend_mod, "_instances", {})
        with pytest.raises(BackendUnavailableError):
            get_backend("numpy")
        # set_default_backend validates eagerly, so the failure surfaces
        # at configuration time, not at the first selection.
        with pytest.raises(BackendUnavailableError):
            set_default_backend("numpy")


class TestResolution:
    def test_hardcoded_default_is_reference(self):
        assert isinstance(default_backend(), ReferenceBackend)
        assert isinstance(resolve_backend(), ReferenceBackend)

    def test_env_variable_is_read_lazily(self, monkeypatch):
        monkeypatch.setenv(backend_mod.DEFAULT_BACKEND_ENV, "numpy")
        assert isinstance(default_backend(), NumpyBackend)

    def test_invalid_env_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(backend_mod.DEFAULT_BACKEND_ENV, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            default_backend()

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(backend_mod.DEFAULT_BACKEND_ENV, "reference")
        set_default_backend("numpy")
        assert isinstance(default_backend(), NumpyBackend)
        set_default_backend(None)  # reset -> back to the env chain
        assert isinstance(default_backend(), ReferenceBackend)

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_backend("bogus")

    def test_library_pin_wins_over_default(self, mini_library):
        mini_library.backend = "numpy"
        assert isinstance(
            resolve_backend(None, mini_library), NumpyBackend
        )

    def test_explicit_spec_wins_over_pin(self, mini_library):
        mini_library.backend = "numpy"
        assert isinstance(
            resolve_backend("reference", mini_library), ReferenceBackend
        )

    def test_pinned_library_steers_selection(self, mini_library):
        calls = []

        class Probe(ReferenceBackend):
            def greedy_choose(self, *a, **kw):
                calls.append("greedy")
                return super().greedy_choose(*a, **kw)

        mini_library.backend = Probe()
        reqs = [ForecastedSI(mini_library.get("HT"), 10)]
        select_greedy(mini_library, reqs, 3)
        assert calls == ["greedy"]


BACKENDS = ["reference", "numpy"]


@pytest.fixture(params=BACKENDS)
def kernel(request):
    return get_backend(request.param)


class TestBatchedKernels:
    ROWS = [(0, 2, 1), (3, 0, 1), (1, 1, 1)]

    def test_sup(self, kernel):
        assert kernel.sup(self.ROWS, 3) == (3, 2, 1)
        assert kernel.sup([], 3) == (0, 0, 0)

    def test_inf(self, kernel):
        assert kernel.inf(self.ROWS) == (0, 0, 1)
        with pytest.raises(ValueError):
            kernel.inf([])

    def test_residual(self, kernel):
        assert kernel.residual(self.ROWS, (1, 1, 1)) == [
            (0, 1, 0),
            (2, 0, 0),
            (0, 0, 0),
        ]
        assert kernel.residual([], (1, 1, 1)) == []

    def test_determinants(self, kernel):
        assert kernel.determinants(self.ROWS) == [3, 4, 3]
        assert kernel.determinants([]) == []

    def test_pareto_mask_drops_dominated(self, kernel):
        atoms = [1, 2, 3, 3]
        cycles = [9, 5, 5, 2]
        # (3, 5) is dominated by (2, 5); everything else survives.
        assert kernel.pareto_mask(atoms, cycles) == [
            True, True, False, True,
        ]

    def test_pareto_mask_keeps_exact_duplicates(self, kernel):
        assert kernel.pareto_mask([1, 1, 2], [5, 5, 9]) == [
            True, True, False,
        ]

    def test_pareto_mask_empty(self, kernel):
        assert kernel.pareto_mask([], []) == []


class TestMoleculeBackendRouting:
    SPACE = AtomSpace(["A", "B", "C"])

    def mols(self):
        return [
            self.SPACE.molecule({"A": 2, "B": 1}),
            self.SPACE.molecule({"B": 3, "C": 1}),
            self.SPACE.molecule({"A": 1, "C": 2}),
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_supremum_matches_pairwise_reduction(self, backend):
        mols = self.mols()
        assert supremum(mols, backend=backend) == supremum(mols)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infimum_matches_pairwise_reduction(self, backend):
        mols = self.mols()
        assert infimum(mols, backend=backend) == infimum(mols)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_supremum_needs_space(self, backend):
        zero = supremum([], space=self.SPACE, backend=backend)
        assert zero == self.SPACE.molecule({})


class TestSelectionBackendArg:
    def test_greedy_accepts_backend_instances(self, mini_library):
        reqs = [ForecastedSI(mini_library.get("SATD"), 7)]
        via_name = select_greedy(mini_library, reqs, 4, backend="numpy")
        via_instance = select_greedy(
            mini_library, reqs, 4, backend=NumpyBackend()
        )
        assert via_name == via_instance

    def test_exhaustive_accepts_backend(self, mini_library):
        reqs = [
            ForecastedSI(mini_library.get("HT"), 5),
            ForecastedSI(mini_library.get("SATD"), 20),
        ]
        ref = select_exhaustive(mini_library, reqs, 6, backend="reference")
        fast = select_exhaustive(mini_library, reqs, 6, backend="numpy")
        assert ref == fast

    def test_custom_backend_subclass_is_usable(self, mini_library):
        class Recording(ReferenceBackend):
            name = "recording"

            def __init__(self):
                self.exhaustive_calls = 0

            def exhaustive_choose(self, *a, **kw):
                self.exhaustive_calls += 1
                return super().exhaustive_choose(*a, **kw)

        probe = Recording()
        assert isinstance(probe, ComputeBackend)
        reqs = [ForecastedSI(mini_library.get("HT"), 5)]
        select_exhaustive(mini_library, reqs, 3, backend=probe)
        assert probe.exhaustive_calls == 1
