"""Tests for automatic molecule generation and reusable-atom discovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AtomSpace, layered_dataflow
from repro.core.atomshare import (
    H264_TRANSFORM_SEQUENCES,
    common_subsequence,
    longest_common_subsequence,
    suggest_shared_atoms,
)
from repro.core.molgen import enumerate_molecules, generate_si, prune_dominated
from repro.core.pareto import pareto_front_of
from repro.core.si import MoleculeImpl

SPACE = AtomSpace(["Load", "QuadSub", "Pack", "Transform", "SATD"])


def satd_dataflow():
    return layered_dataflow(
        [
            ("QuadSub", 4, 1),
            ("Transform", 2, 1),
            ("Pack", 4, 1),
            ("Transform", 2, 1),
            ("SATD", 4, 1),
        ]
    )


class TestEnumerateMolecules:
    def test_generates_pareto_catalogue(self):
        impls, report = enumerate_molecules(satd_dataflow(), SPACE)
        assert report.explored > report.kept
        assert impls
        # Smallest: one instance per kind; fastest reaches the critical path.
        smallest = min(impls, key=lambda i: i.atoms())
        assert smallest.molecule.counts.count(0) >= 1  # Load unused
        assert all(c <= 1 for c in smallest.molecule.counts)
        fastest = min(impls, key=lambda i: i.cycles)
        assert fastest.cycles == satd_dataflow().critical_path_cycles()

    def test_no_dominated_survivors(self):
        impls, _ = enumerate_molecules(satd_dataflow(), SPACE)
        for a in impls:
            for b in impls:
                if a is b:
                    continue
                dominates = (
                    a.molecule <= b.molecule
                    and a.cycles <= b.cycles
                    and (a.molecule != b.molecule or a.cycles < b.cycles)
                )
                assert not dominates

    def test_counts_allowed_restricts(self):
        impls, _ = enumerate_molecules(
            satd_dataflow(), SPACE, counts_allowed=(1, 2, 4)
        )
        for impl in impls:
            for c in impl.molecule.counts:
                assert c in (0, 1, 2, 4)

    def test_max_per_kind(self):
        impls, _ = enumerate_molecules(satd_dataflow(), SPACE, max_per_kind=2)
        assert all(max(i.molecule.counts) <= 2 for i in impls)

    def test_unconstrained_kinds_not_enumerated(self):
        df = layered_dataflow([("Load", 4, 1), ("Pack", 4, 1)])
        impls, _ = enumerate_molecules(
            df, SPACE, unconstrained_kinds=("Load",)
        )
        assert all(i.molecule.count("Load") == 0 for i in impls)

    def test_empty_kinds_rejected(self):
        df = layered_dataflow([("Load", 2, 1)])
        with pytest.raises(ValueError):
            enumerate_molecules(df, SPACE, unconstrained_kinds=("Load",))

    def test_counts_allowed_must_leave_options(self):
        with pytest.raises(ValueError):
            enumerate_molecules(satd_dataflow(), SPACE, counts_allowed=(9,))

    def test_generate_si_end_to_end(self):
        si, report = generate_si(
            "AUTO_SATD", satd_dataflow(), SPACE, software_cycles=544
        )
        assert si.name == "AUTO_SATD"
        assert len(si.implementations) == report.kept
        # The generated catalogue yields a clean Pareto front like
        # Table 2.  Lattice pruning can keep incomparable molecules that
        # land on the same (atoms, cycles) point (e.g. 2xQuadSub+1xSATD
        # vs 1xQuadSub+2xSATD), and pareto_front keeps all coordinate
        # duplicates by contract — so strict improvement is asserted
        # over the distinct coordinates.
        front = pareto_front_of(si)
        assert len(front) >= 3
        coords = sorted({(p.atoms, p.cycles) for p in front})
        assert len(coords) >= 3
        for a, b in zip(coords, coords[1:]):
            assert b[0] > a[0] and b[1] < a[1]

    def test_issue_overhead_applied(self):
        base, _ = enumerate_molecules(satd_dataflow(), SPACE)
        shifted, _ = enumerate_molecules(
            satd_dataflow(), SPACE, issue_overhead=5
        )
        assert min(i.cycles for i in shifted) == min(i.cycles for i in base) + 5


class TestPruneDominated:
    def m(self, cycles, **counts):
        return MoleculeImpl(SPACE.molecule(counts), cycles)

    def test_keeps_incomparable(self):
        a = self.m(10, Pack=2)
        b = self.m(10, Transform=2)
        assert set(prune_dominated([a, b])) == {a, b}

    def test_drops_strictly_worse(self):
        good = self.m(10, Pack=1)
        bad = self.m(12, Pack=2)
        assert prune_dominated([good, bad]) == [good]

    def test_keeps_cheaper_but_slower(self):
        small = self.m(20, Pack=1)
        fast = self.m(10, Pack=4)
        assert set(prune_dominated([small, fast])) == {small, fast}

    def test_deduplicates(self):
        a = self.m(10, Pack=1)
        b = self.m(10, Pack=1)
        assert len(prune_dominated([a, b])) == 1


class TestLCS:
    def test_known_lcs(self):
        assert longest_common_subsequence("ABCBDAB", "BDCABA") in (
            list("BCBA"),
            list("BDAB"),
            list("BCAB"),
        )
        assert len(longest_common_subsequence("ABCBDAB", "BDCABA")) == 4

    def test_empty_inputs(self):
        assert longest_common_subsequence("", "ABC") == []
        assert longest_common_subsequence("ABC", "") == []

    @given(st.text(alphabet="abcd", max_size=12), st.text(alphabet="abcd", max_size=12))
    @settings(max_examples=60)
    def test_lcs_is_common_subsequence(self, a, b):
        lcs = longest_common_subsequence(a, b)

        def is_subseq(s, t):
            it = iter(t)
            return all(c in it for c in s)

        assert is_subseq(lcs, a)
        assert is_subseq(lcs, b)

    @given(st.text(alphabet="abc", max_size=12))
    def test_lcs_with_self_is_identity(self, a):
        assert longest_common_subsequence(a, a) == list(a)

    def test_multi_sequence_fold(self):
        seqs = [list("ABCD"), list("ABD"), list("AXBD")]
        assert common_subsequence(seqs) == list("ABD")

    def test_multi_sequence_empty_rejected(self):
        with pytest.raises(ValueError):
            common_subsequence([])


class TestSuggestSharedAtoms:
    def test_rediscovers_the_transform_atom(self):
        # Fig. 9: the butterfly add/sub flow is identical in all three
        # transforms -> one proposal serving all three SIs.
        proposals = suggest_shared_atoms(H264_TRANSFORM_SEQUENCES)
        assert proposals
        best = proposals[0]
        assert set(best.served_sis) == {"DCT_4x4", "HT_4x4", "HT_2x2"}
        # The shared butterfly: at least the 4+4 add/sub operations.
        assert len(best) >= 8
        assert set(best.operations) <= {"add", "sub"}

    def test_saving_metric(self):
        proposals = suggest_shared_atoms(H264_TRANSFORM_SEQUENCES)
        for p in proposals:
            assert p.saving == (len(p.served_sis) - 1) * len(p)
        savings = [p.saving for p in proposals]
        assert savings == sorted(savings, reverse=True)

    def test_disjoint_sequences_no_proposals(self):
        assert (
            suggest_shared_atoms({"A": ("x", "x"), "B": ("y", "y")}) == []
        )

    def test_min_sis_threshold(self):
        seqs = {"A": "abab", "B": "abab", "C": "zz"}
        all_pairs = suggest_shared_atoms(seqs, min_sis=2)
        assert all_pairs
        triples = suggest_shared_atoms(seqs, min_sis=3)
        assert triples == []

    def test_subsumed_proposals_dropped(self):
        seqs = {"A": "abcd", "B": "abcd", "C": "abcd"}
        proposals = suggest_shared_atoms(seqs)
        # One proposal serving all three subsumes every pair.
        assert len(proposals) == 1
        assert len(proposals[0].served_sis) == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            suggest_shared_atoms({}, min_length=0)
        with pytest.raises(ValueError):
            suggest_shared_atoms({}, min_sis=1)

    def test_too_few_sequences(self):
        assert suggest_shared_atoms({"A": "abc"}) == []
