"""Fuzzing the verifier against the real runtime.

Property: *any* interleaving of ``forecast`` / ``execute_si`` /
``fail_container`` / ``advance`` through both the optimized and the
baseline runtime yields a trace the reference machine replays with zero
findings — the machine and the manager implement the same §3/§5
semantics, independently.  The deterministic half then mutates verified
traces by hand and asserts each mutation trips exactly the intended
rule (no cascades: one corruption, one finding family).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_runtime, verify_trace
from repro.core import (
    AtomCatalogue,
    AtomKind,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
)
from repro.runtime import RisppRuntime
from repro.sim import Event, EventKind


def _fuzz_library() -> SILibrary:
    """Two-SI library with overlapping atom demand (competition included)."""
    catalogue = AtomCatalogue.of(
        [
            AtomKind("Load", reconfigurable=False),
            AtomKind("Pack", bitstream_bytes=65_713),
            AtomKind("Transform", bitstream_bytes=59_353),
            AtomKind("SATD", bitstream_bytes=58_141),
        ]
    )
    space = catalogue.space
    ht = SpecialInstruction(
        "HT",
        space,
        298,
        [
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 1}), 22),
            MoleculeImpl(space.molecule({"Load": 1, "Pack": 1, "Transform": 2}), 17),
        ],
    )
    satd = SpecialInstruction(
        "SATD",
        space,
        544,
        [
            MoleculeImpl(
                space.molecule({"Load": 1, "Pack": 1, "Transform": 1, "SATD": 1}), 24
            ),
        ],
    )
    return SILibrary(catalogue, [ht, satd])


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["forecast", "execute", "fail", "advance"]),
        st.sampled_from(["HT", "SATD"]),
        st.integers(min_value=0, max_value=200_000),  # time delta
        st.integers(min_value=0, max_value=2),  # container / expected scale
    ),
    min_size=1,
    max_size=25,
)


class TestFuzzedInterleavings:
    """The machine accepts every trace the real runtime can produce."""

    @settings(max_examples=40, deadline=None)
    @given(ops=_OPS)
    def test_both_runtimes_always_verify_clean(self, ops):
        library = _fuzz_library()
        optimized = RisppRuntime(library, 3, core_mhz=100.0, optimize=True)
        baseline = RisppRuntime(library, 3, core_mhz=100.0, optimize=False)
        now = 0
        for op, si, delta, scale in ops:
            now += delta
            for rt in (optimized, baseline):
                if op == "forecast":
                    rt.forecast(si, now, expected=float(scale * 50))
                elif op == "execute":
                    rt.execute_si(si, now)
                elif op == "advance":
                    rt.advance(now)
                else:  # fail one of the three containers (idempotent)
                    rt.fail_container(scale, now)
        for name, rt in (("optimized", optimized), ("baseline", baseline)):
            report = verify_runtime(rt, subject=f"fuzz:{name}")
            assert report.clean(), report.render_text()


def _verified_scenario():
    """A deterministic runtime whose trace replays clean (precondition)."""
    library = _fuzz_library()
    rt = RisppRuntime(library, 3, core_mhz=100.0)
    now = 1_000
    for _ in range(6):
        rt.forecast("HT", now, expected=40.0)
        rt.forecast("SATD", now, expected=10.0)
        for _ in range(8):
            now += rt.execute_si("HT", now)
        for _ in range(3):
            now += rt.execute_si("SATD", now)
        now += 70_000  # let rotations land between rounds
    rt.advance(now + 5_000_000)
    report = verify_runtime(rt)
    assert report.clean(), report.render_text()
    events = [
        Event(e.cycle, e.kind, e.task, e.si, dict(e.detail))
        for e in rt.trace.events
    ]
    return rt, events


def _verify(rt, events, totals=None):
    return verify_trace(
        events,
        rt.library,
        containers=len(rt.fabric),
        static_multiplicity=rt.fabric.static_multiplicity,
        totals=totals,
    )


class TestHandMutations:
    """Each mutation trips exactly its intended rule — no cascades."""

    def test_swapped_events_trip_only_trc001(self):
        rt, events = _verified_scenario()
        idx = next(
            i
            for i in range(len(events) - 1)
            if events[i].kind is EventKind.SI_EXECUTED
            and events[i + 1].kind is EventKind.SI_EXECUTED
            and events[i].cycle < events[i + 1].cycle
            and events[i].si == events[i + 1].si
            and events[i].detail == events[i + 1].detail
        )
        events[idx], events[idx + 1] = events[idx + 1], events[idx]
        report = _verify(rt, events)
        assert {d.rule_id for d in report} == {"TRC001"}, report.render_text()

    def test_double_occupied_container_trips_only_trc004(self):
        rt, events = _verified_scenario()
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind is EventKind.ROTATION_REQUESTED
        )
        e = events[idx]
        events.insert(
            idx + 1, Event(e.cycle, e.kind, e.task, e.si, dict(e.detail))
        )
        report = _verify(rt, events)
        assert {d.rule_id for d in report} == {"TRC004"}, report.render_text()

    def test_negative_energy_delta_trips_only_trc007(self):
        rt, events = _verified_scenario()
        totals = dataclasses.asdict(rt.stats)
        totals["si_cycles"] = -totals["si_cycles"]
        report = _verify(rt, events, totals=totals)
        assert {d.rule_id for d in report} == {"TRC007"}, report.render_text()
