"""Integration test: the complete Fig. 6 run-time scenario.

Asserts the paper's six T-point properties on the executed event trace.
"""

import pytest

from repro.apps.h264.scenario import (
    build_scenario_library,
    run_fig6_scenario,
)
from repro.sim import EventKind


@pytest.fixture(scope="module")
def scenario():
    return run_fig6_scenario()


class TestScenarioLibrary:
    def test_contains_both_task_si_sets(self):
        lib = build_scenario_library()
        assert {"SATD_4x4", "SI0", "SI1"} <= set(lib.names())

    def test_si1_reuses_h264_atoms(self):
        # "SI1 ... reusing ACs 1 and 2": its molecule shares Pack and
        # Transform with the H.264 SIs.
        lib = build_scenario_library()
        m = lib.get("SI1").minimal_molecule().molecule
        assert m.count("Pack") == 1 and m.count("Transform") == 1


class TestT0SteadyState:
    def test_both_tasks_in_hardware(self, scenario):
        tr = scenario.runtime.trace
        t0 = scenario.label("A", "T0")
        a_execs = [
            e
            for e in tr.of_kind(EventKind.SI_EXECUTED)
            if e.task == "A" and t0 <= e.cycle < scenario.label("B", "T1")
        ]
        assert a_execs
        assert all(e.detail["mode"] != "SW" for e in a_execs)
        b_execs = [
            e
            for e in tr.of_kind(EventKind.SI_EXECUTED)
            if e.task == "B" and e.si == "SI0" and e.cycle < scenario.label("B", "T1")
        ]
        assert b_execs
        assert all(e.detail["mode"] == "C1 F1" for e in b_execs)

    def test_satd_uses_smallest_molecule(self, scenario):
        # "The ACs 0 to 3 comprise the Atoms that are needed to implement
        # the smallest Molecule implementing SATD_4x4."
        tr = scenario.runtime.trace
        t0 = scenario.label("A", "T0")
        first = next(
            e
            for e in tr.of_kind(EventKind.SI_EXECUTED)
            if e.task == "A" and e.cycle >= t0
        )
        assert first.detail["cycles"] == 24  # minimal SATD_4x4 molecule


class TestT1Reallocation:
    def test_forecast_triggers_reallocation_and_rotation(self, scenario):
        tr = scenario.runtime.trace
        t1 = scenario.label("B", "T1")
        forecast = tr.first(EventKind.FORECAST, si="SI1") or next(
            e for e in tr.of_kind(EventKind.FORECAST) if e.si == "SI1"
        )
        assert forecast.cycle == t1
        realloc = [
            e
            for e in tr.of_kind(EventKind.REALLOCATION)
            if e.cycle == t1 and e.detail["from_task"] == "A"
        ]
        assert len(realloc) == 1
        rotations = [
            e for e in tr.of_kind(EventKind.ROTATION_REQUESTED) if e.cycle == t1
        ]
        assert rotations and rotations[0].task == "B"

    def test_task_a_falls_back_to_software(self, scenario):
        tr = scenario.runtime.trace
        t1 = scenario.label("B", "T1")
        t2 = scenario.label("B", "T2")
        a_after = [
            e
            for e in tr.of_kind(EventKind.SI_EXECUTED)
            if e.task == "A" and t1 < e.cycle < t2
        ]
        assert a_after
        assert any(e.detail["mode"] == "SW" for e in a_after)

    def test_si1_upgrades_sw_to_hw(self, scenario):
        tr = scenario.runtime.trace
        switch = next(
            e for e in tr.of_kind(EventKind.SI_MODE_SWITCH) if e.si == "SI1"
        )
        assert switch.detail["from_mode"] == "SW"
        assert switch.detail["cycles"] == 20


class TestT2Release:
    def test_containers_reallocated_back_to_a(self, scenario):
        tr = scenario.runtime.trace
        t2 = scenario.label("B", "T2")
        realloc = [
            e
            for e in tr.of_kind(EventKind.REALLOCATION)
            if e.cycle == t2 and e.detail["from_task"] == "B"
            and e.detail["to_task"] == "A"
        ]
        # Fig. 6: "a reallocation of ACs 3 to 5 of Task A".
        assert len(realloc) == 3

    def test_rotations_towards_satd_initiated(self, scenario):
        tr = scenario.runtime.trace
        t2 = scenario.label("B", "T2")
        atoms = [
            e.detail["detail_atom"]
            for e in tr.of_kind(EventKind.ROTATION_REQUESTED)
            if e.cycle == t2
        ]
        assert "SATD" in atoms  # the molecule-enabling atom comes first


class TestT3CrossTaskSharing:
    def test_si0_executes_in_hw_on_a_owned_containers(self, scenario):
        tr = scenario.runtime.trace
        t3 = scenario.label("B", "T3")
        si0 = [
            e
            for e in tr.of_kind(EventKind.SI_EXECUTED)
            if e.si == "SI0" and e.cycle >= t3
        ]
        assert si0
        assert all(e.detail["mode"] == "C1 F1" for e in si0)
        # ... on containers that have already been reassigned to task A.
        t2 = scenario.label("B", "T2")
        reassigned = {
            e.detail["container"]
            for e in tr.of_kind(EventKind.REALLOCATION)
            if e.cycle == t2 and e.detail["to_task"] == "A"
        }
        assert reassigned  # the sharing claim is about these containers


class TestT4T5Upgrades:
    def test_immediate_sw_to_hw_switch(self, scenario):
        tr = scenario.runtime.trace
        t2 = scenario.label("B", "T2")
        switches = [
            e
            for e in tr.of_kind(EventKind.SI_MODE_SWITCH)
            if e.task == "A" and e.si == "SATD_4x4" and e.cycle > t2
        ]
        assert len(switches) >= 3
        assert switches[0].detail["from_mode"] == "SW"
        assert switches[0].detail["cycles"] == 24

    def test_gradual_upgrade_to_faster_molecules(self, scenario):
        tr = scenario.runtime.trace
        t2 = scenario.label("B", "T2")
        cycle_series = [
            e.detail["cycles"]
            for e in tr.of_kind(EventKind.SI_MODE_SWITCH)
            if e.task == "A" and e.si == "SATD_4x4" and e.cycle > t2
        ]
        # SW -> 24 -> 20 -> 18: strictly improving molecule ladder.
        assert cycle_series == sorted(cycle_series, reverse=True)
        assert cycle_series[0] == 24
        assert cycle_series[-1] == 18

    def test_each_upgrade_follows_a_rotation_completion(self, scenario):
        tr = scenario.runtime.trace
        t2 = scenario.label("B", "T2")
        completions = sorted(
            e.cycle
            for e in tr.of_kind(EventKind.ROTATION_COMPLETED)
            if e.cycle > t2
        )
        switches = [
            e.cycle
            for e in tr.of_kind(EventKind.SI_MODE_SWITCH)
            if e.task == "A" and e.si == "SATD_4x4" and e.cycle > t2
        ]
        for s in switches:
            assert any(c <= s for c in completions)


class TestNoFixedSchedule:
    def test_rotations_driven_by_forecasts_not_period(self, scenario):
        # "our run-time architecture does not follow a fixed rotation
        # schedule": rotation requests coincide with forecast activity,
        # not with a fixed period.
        tr = scenario.runtime.trace
        request_cycles = sorted(
            {e.cycle for e in tr.of_kind(EventKind.ROTATION_REQUESTED)}
        )
        gaps = [b - a for a, b in zip(request_cycles, request_cycles[1:])]
        assert len(set(gaps)) > 1  # aperiodic
