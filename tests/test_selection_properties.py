"""Property tests for molecule selection and rotation planning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AtomCatalogue,
    AtomKind,
    ForecastedSI,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    select_exhaustive,
    select_greedy,
    upgrade_path,
)
from repro.hardware import Fabric, ReconfigurationPort
from repro.runtime import LRUPolicy, plan_rotations

KINDS = ["A", "B", "C", "D"]


@st.composite
def random_library(draw):
    catalogue = AtomCatalogue.of(
        [AtomKind(k, bitstream_bytes=50_000) for k in KINDS]
    )
    space = catalogue.space
    sis = []
    n_sis = draw(st.integers(1, 3))
    for i in range(n_sis):
        sw = draw(st.integers(50, 600))
        impls = []
        n_impl = draw(st.integers(1, 4))
        for j in range(n_impl):
            counts = {
                k: draw(st.integers(0, 3)) for k in KINDS
            }
            if not any(counts.values()):
                counts["A"] = 1
            cycles = draw(st.integers(1, max(2, sw - 1)))
            impls.append(MoleculeImpl(space.molecule(counts), cycles))
        sis.append(SpecialInstruction(f"SI{i}", space, sw, impls))
    return SILibrary(catalogue, sis)


@st.composite
def library_and_workload(draw):
    library = draw(random_library())
    requests = [
        ForecastedSI(library.get(name), draw(st.floats(0.0, 100.0)))
        for name in library.names()
    ]
    budget = draw(st.integers(0, 10))
    return library, requests, budget


@settings(max_examples=60, deadline=None)
@given(library_and_workload())
def test_greedy_respects_budget(bundle):
    library, requests, budget = bundle
    result = select_greedy(library, requests, budget)
    assert result.containers_used <= budget
    # The reported demand covers every chosen molecule.
    for impl in result.chosen.values():
        if impl is not None:
            assert library.restricted_to_reconfigurable(impl.molecule) <= result.demand


@settings(max_examples=60, deadline=None)
@given(library_and_workload())
def test_greedy_never_beats_exhaustive(bundle):
    library, requests, budget = bundle
    g = select_greedy(library, requests, budget)
    e = select_exhaustive(library, requests, budget)
    assert g.total_benefit <= e.total_benefit + 1e-6
    assert e.containers_used <= budget


@settings(max_examples=40, deadline=None)
@given(library_and_workload())
def test_benefit_monotone_in_budget(bundle):
    library, requests, budget = bundle
    lesser = select_greedy(library, requests, budget)
    greater = select_greedy(library, requests, budget + 2)
    assert greater.total_benefit >= lesser.total_benefit - 1e-9


@settings(max_examples=40, deadline=None)
@given(library_and_workload())
def test_upgrade_path_benefits_monotone(bundle):
    # Greedy alone is not monotone in the budget (a different early pick
    # can strand a larger budget below a smaller one); upgrade_path
    # carries the best-so-far forward, so the published curve must be
    # non-decreasing step by step.
    library, requests, budget = bundle
    path = upgrade_path(library, requests, budget)
    assert len(path) == budget + 1
    benefits = [r.total_benefit for r in path]
    for lesser, greater in zip(benefits, benefits[1:]):
        assert greater >= lesser
    for cap, result in enumerate(path):
        assert result.containers_used <= cap


@settings(max_examples=40, deadline=None)
@given(library_and_workload(), st.integers(1, 8))
def test_rotation_plan_reaches_target_or_reports_unplaced(bundle, containers):
    library, requests, budget = bundle
    result = select_greedy(library, requests, min(budget, containers))
    fabric = Fabric(library.catalogue, containers)
    port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
    plan = plan_rotations(
        library, fabric, port, result.demand, LRUPolicy(), now=0
    )
    # Everything missing is either scheduled or reported unplaced.
    scheduled: dict[str, int] = {}
    for job in plan.jobs:
        scheduled[job.atom] = scheduled.get(job.atom, 0) + 1
    for kind in plan.missing.kinds_used():
        need = plan.missing.count(kind)
        assert scheduled.get(kind, 0) + plan.unplaced.get(kind, 0) == need
    # Scheduled rotations never exceed the fabric size.
    assert len(plan.jobs) <= containers
    # After all rotations complete, the loaded population covers the
    # target up to the unplaced shortfall.
    port.advance(fabric, max((j.finish_at for j in plan.jobs), default=0))
    loaded = fabric.loaded_reconfigurable()
    for kind in plan.target.kinds_used():
        short = plan.unplaced.get(kind, 0)
        assert loaded.count(kind) >= plan.target.count(kind) - short


@settings(max_examples=40, deadline=None)
@given(library_and_workload())
def test_chosen_molecules_belong_to_their_si(bundle):
    library, requests, budget = bundle
    result = select_greedy(library, requests, budget)
    for name, impl in result.chosen.items():
        if impl is not None:
            assert impl in library.get(name).implementations
