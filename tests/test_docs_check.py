"""The docs/code cross-checker behind the CI ``docs`` job."""

from pathlib import Path

import pytest

from repro.analysis.docs_check import check_docs, main
from repro.obs.catalogue import METRICS

REPO_ROOT = Path(__file__).resolve().parents[1]


def _observability_stub() -> str:
    """A minimal observability.md covering every declared metric."""
    lines = ["# Metrics", ""]
    lines += [f"- `{spec.full_name}`" for spec in METRICS.values()]
    return "\n".join(lines) + "\n"


def _analysis_stub() -> str:
    """A minimal analysis.md covering every coverage-checked rule."""
    from repro.analysis.docs_check import _DOCUMENTED_FAMILIES
    from repro.analysis.rules import rules_of_family

    lines = ["# Analysers", ""]
    lines += [
        f"- {rule.rule_id}"
        for family in _DOCUMENTED_FAMILIES
        for rule in rules_of_family(family)
    ]
    return "\n".join(lines) + "\n"


def _events_stub() -> str:
    """A minimal events.md covering the taxonomy, wiring and bands."""
    from repro.runtime import events as ev

    lines = ["# Events", ""]
    lines += [f"- `{t.__name__}`" for t in ev.EVENT_TYPES]
    lines += sorted(
        {f"- `{handler.__name__}`" for _, _, handler in ev.DEFAULT_WIRING}
    )
    lines += [
        f"- `{name}`" for name in dir(ev) if name.startswith("PRIORITY_")
    ]
    return "\n".join(lines) + "\n"


def _serving_stub() -> str:
    """A minimal serving.md covering every endpoint and request field."""
    from repro.serve import ENDPOINTS, SCENARIO_DEFAULTS

    lines = ["# Serving", ""]
    lines += [f"- {method} {path}" for method, path, _ in ENDPOINTS]
    lines += [f"- `{field}`" for field in sorted(SCENARIO_DEFAULTS)]
    return "\n".join(lines) + "\n"


def _readme_stub() -> str:
    """A minimal README whose CLI table rows every tool command."""
    from repro.cli import TOOL_COMMANDS

    lines = ["# Stub", "", "| Command | What |", "|---|---|"]
    lines += [f"| `{name}` | the {name} tool |" for name in TOOL_COMMANDS]
    return "\n".join(lines) + "\n"


@pytest.fixture
def repo(tmp_path):
    """A minimal healthy repo layout the checker accepts."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "mod.py").write_text("x = 1\n")
    (tmp_path / "docs" / "observability.md").write_text(
        _observability_stub()
    )
    (tmp_path / "docs" / "analysis.md").write_text(_analysis_stub())
    (tmp_path / "docs" / "events.md").write_text(_events_stub())
    (tmp_path / "docs" / "serving.md").write_text(_serving_stub())
    (tmp_path / "README.md").write_text(_readme_stub())
    return tmp_path


def _findings(root):
    return [f.render() for f in check_docs(root)]


class TestChecks:
    def test_healthy_repo_is_clean(self, repo):
        assert _findings(repo) == []

    def test_missing_src_path_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "See `src/repro/nope.py` for details.\n"
        )
        assert any("src/repro/nope.py" in f for f in _findings(repo))

    def test_existing_src_path_passes(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "See `src/repro/mod.py` for details.\n"
        )
        assert _findings(repo) == []

    def test_src_paths_checked_even_in_fences(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "```\ncat src/repro/gone.py\n```\n"
        )
        assert any("src/repro/gone.py" in f for f in _findings(repo))

    def test_broken_relative_link_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text("[x](missing.md)\n")
        assert any("missing.md" in f for f in _findings(repo))

    def test_working_link_and_anchors_pass(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "[obs](observability.md#metrics) and [web](https://x.test/)\n"
            "and [frag](#local)\n"
        )
        assert _findings(repo) == []

    def test_unknown_rule_id_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text("Rule LAT999 applies.\n")
        assert any("LAT999" in f for f in _findings(repo))

    def test_known_rule_id_passes(self, repo):
        (repo / "docs" / "guide.md").write_text("Rule TRC001 applies.\n")
        assert _findings(repo) == []

    def test_rule_ids_in_fences_are_ignored(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "```\nerror: unknown rule LAT999\n```\n"
        )
        assert _findings(repo) == []

    def test_undeclared_metric_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "Watch rispp_bogus_series_total closely.\n"
        )
        assert any("rispp_bogus_series_total" in f for f in _findings(repo))

    def test_declared_metric_and_histogram_suffixes_pass(self, repo):
        (repo / "docs" / "guide.md").write_text(
            "rispp_si_executions_total and rispp_si_latency_cycles_bucket\n"
        )
        assert _findings(repo) == []

    def test_code_identifiers_are_not_stale_metrics(self, repo):
        # rispp_* names that exist in the source tree are code
        # references (e.g. the rispp_area function), not metric drift.
        (repo / "src" / "repro" / "mod.py").write_text(
            "def rispp_custom_helper():\n    return 1\n"
        )
        (repo / "docs" / "guide.md").write_text(
            "Call `rispp_custom_helper` for the area.\n"
        )
        assert _findings(repo) == []


class TestObservabilityCoverage:
    def test_missing_catalogue_file_is_flagged(self, repo):
        (repo / "docs" / "observability.md").unlink()
        assert any("is missing" in f for f in _findings(repo))

    def test_undocumented_metric_is_flagged(self, repo):
        stub = _observability_stub().replace("rispp_quarantine_depth", "x")
        (repo / "docs" / "observability.md").write_text(stub)
        assert any("rispp_quarantine_depth" in f for f in _findings(repo))


class TestRuleCoverage:
    def test_missing_analysis_doc_is_flagged(self, repo):
        (repo / "docs" / "analysis.md").unlink()
        assert any(
            "analysis.md is missing" in f for f in _findings(repo)
        )

    def test_undocumented_mc_rule_is_flagged(self, repo):
        stub = _analysis_stub().replace("MC007", "MCxxx")
        (repo / "docs" / "analysis.md").write_text(stub)
        assert any("MC007" in f for f in _findings(repo))

    @pytest.mark.parametrize("rule_id", ["TRC005", "FEA004", "AUD009"])
    def test_undocumented_rule_of_each_family_is_flagged(self, repo, rule_id):
        stub = _analysis_stub().replace(rule_id, "redacted")
        (repo / "docs" / "analysis.md").write_text(stub)
        assert any(rule_id in f for f in _findings(repo))

    def test_unknown_aud_rule_id_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text("Rule AUD999 applies.\n")
        assert any("AUD999" in f for f in _findings(repo))

    def test_known_aud_rule_id_passes(self, repo):
        (repo / "docs" / "guide.md").write_text("Rule AUD001 applies.\n")
        assert _findings(repo) == []


class TestEventsCoverage:
    def test_missing_events_doc_is_flagged(self, repo):
        (repo / "docs" / "events.md").unlink()
        assert any("events.md is missing" in f for f in _findings(repo))

    def test_undocumented_event_is_flagged(self, repo):
        stub = _events_stub().replace("`RotationCompleted`", "`x`")
        (repo / "docs" / "events.md").write_text(stub)
        assert any("'RotationCompleted'" in f for f in _findings(repo))

    def test_undocumented_handler_is_flagged(self, repo):
        stub = _events_stub().replace("`_monitor_si_executed`", "`y`")
        (repo / "docs" / "events.md").write_text(stub)
        assert any("'_monitor_si_executed'" in f for f in _findings(repo))

    def test_undocumented_priority_band_is_flagged(self, repo):
        stub = _events_stub().replace("`PRIORITY_REPLAN`", "`z`")
        (repo / "docs" / "events.md").write_text(stub)
        assert any("'PRIORITY_REPLAN'" in f for f in _findings(repo))

    def test_phantom_event_name_is_flagged(self, repo):
        (repo / "docs" / "events.md").write_text(
            _events_stub() + "\nAlso `MoleculeFired` fires here.\n"
        )
        assert any("'MoleculeFired'" in f for f in _findings(repo))

    def test_phantom_handler_is_flagged(self, repo):
        (repo / "docs" / "events.md").write_text(
            _events_stub() + "\nThen `_trace_everything` runs.\n"
        )
        assert any("'_trace_everything'" in f for f in _findings(repo))

    def test_unknown_evt_rule_id_is_flagged(self, repo):
        (repo / "docs" / "guide.md").write_text("Rule EVT999 applies.\n")
        assert any("EVT999" in f for f in _findings(repo))

    @pytest.mark.parametrize("rule_id", ["EVT001", "EVT002", "EVT003"])
    def test_undocumented_evt_rule_is_flagged(self, repo, rule_id):
        stub = _analysis_stub().replace(rule_id, "redacted")
        (repo / "docs" / "analysis.md").write_text(stub)
        assert any(rule_id in f for f in _findings(repo))


class TestServingCoverage:
    def test_missing_serving_doc_is_flagged(self, repo):
        (repo / "docs" / "serving.md").unlink()
        assert any("serving.md is missing" in f for f in _findings(repo))

    def test_undocumented_endpoint_is_flagged(self, repo):
        stub = _serving_stub().replace("GET /readyz", "GET /")
        (repo / "docs" / "serving.md").write_text(stub)
        assert any("'GET /readyz'" in f for f in _findings(repo))

    def test_undocumented_scenario_field_is_flagged(self, repo):
        stub = _serving_stub().replace("`fault_rate`", "`x`")
        (repo / "docs" / "serving.md").write_text(stub)
        assert any("'fault_rate'" in f for f in _findings(repo))

    def test_phantom_endpoint_is_flagged(self, repo):
        (repo / "docs" / "serving.md").write_text(
            _serving_stub() + "\nPOST /reboot restarts everything.\n"
        )
        assert any("POST /reboot" in f for f in _findings(repo))

    def test_phantom_endpoint_in_fence_is_flagged(self, repo):
        # Unlike rule IDs, endpoint drift inside a curl example is
        # exactly what the check must catch.
        (repo / "docs" / "serving.md").write_text(
            _serving_stub() + "\n```\ncurl -X DELETE /scenario\n```\n"
        )
        assert any("DELETE /scenario" in f for f in _findings(repo))


class TestCliSurface:
    def test_tool_without_readme_row_is_flagged(self, repo):
        stub = "\n".join(
            line
            for line in _readme_stub().splitlines()
            if "`serve`" not in line
        )
        (repo / "README.md").write_text(stub + "\n")
        assert any("'repro serve' has no row" in f for f in _findings(repo))

    def test_unknown_tool_row_is_flagged(self, repo):
        (repo / "README.md").write_text(
            _readme_stub() + "| `transmogrify` | not a tool |\n"
        )
        assert any("'transmogrify'" in f for f in _findings(repo))

    def test_unknown_flag_in_tool_row_is_flagged(self, repo):
        (repo / "README.md").write_text(
            _readme_stub()
            + "| `serve` | with `--warp-speed 9` | example |\n"
        )
        assert any("'--warp-speed'" in f for f in _findings(repo))

    def test_real_flag_in_tool_row_passes(self, repo):
        (repo / "README.md").write_text(
            _readme_stub()
            + "| `serve --workers` | pool size | `repro serve --port 0` |\n"
        )
        assert _findings(repo) == []

    def test_filename_rows_are_not_commands(self, repo):
        (repo / "README.md").write_text(
            _readme_stub() + "| `quickstart.py` | an example file |\n"
        )
        assert _findings(repo) == []

    def test_placeholder_and_list_rows_are_exempt(self, repo):
        (repo / "README.md").write_text(
            _readme_stub()
            + "| `<figN>` / `all` | regenerate |\n| `list` | list |\n"
        )
        assert _findings(repo) == []


class TestMain:
    def test_exit_zero_when_clean(self, repo, capsys):
        assert main([str(repo)]) == 0
        assert "docs-check: OK" in capsys.readouterr().out

    def test_exit_one_on_findings(self, repo, capsys):
        (repo / "docs" / "guide.md").write_text("src/repro/nope.py\n")
        assert main([str(repo)]) == 1
        out = capsys.readouterr().out
        assert "docs-check: FAIL" in out
        assert "guide.md:1" in out

    def test_exit_one_without_docs_dir(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no docs/" in capsys.readouterr().err


class TestRealRepo:
    def test_shipped_docs_are_clean(self):
        assert _findings(REPO_ROOT) == []
