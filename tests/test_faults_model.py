"""The fault model: events, schedules, stats and the static MTTR bound."""

import pytest

from repro.analysis.feasibility import port_backlog_bound
from repro.bench.suites import build_synthetic_library
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceStats,
    static_repair_bound,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, FaultKind.TRANSIENT)
        with pytest.raises(ValueError):
            FaultEvent(0, FaultKind.TRANSIENT, container=-2)

    def test_ordering_is_chronological(self):
        early = FaultEvent(10, FaultKind.PERMANENT, 1)
        late = FaultEvent(20, FaultKind.TRANSIENT, 0)
        assert early < late


class TestFaultSchedule:
    def test_events_sorted_on_construction(self):
        schedule = FaultSchedule([
            FaultEvent(500, FaultKind.TRANSIENT, 1),
            FaultEvent(100, FaultKind.PERMANENT, 0),
        ])
        assert [e.cycle for e in schedule] == [100, 500]
        assert len(schedule) == 2

    def test_generate_deterministic(self):
        a = FaultSchedule.generate(seed=42, horizon=1_000_000, containers=6)
        b = FaultSchedule.generate(seed=42, horizon=1_000_000, containers=6)
        assert list(a) == list(b)
        assert len(a) == 2  # rate 2.0 faults/Mcycle over 1M cycles

    def test_generate_seed_changes_schedule(self):
        a = FaultSchedule.generate(seed=1, horizon=2_000_000, containers=6)
        b = FaultSchedule.generate(seed=2, horizon=2_000_000, containers=6)
        assert list(a) != list(b)

    def test_generate_respects_bounds(self):
        schedule = FaultSchedule.generate(
            seed=3, horizon=500_000, containers=4, rate=40.0
        )
        assert len(schedule) == 20
        for event in schedule:
            assert 0 <= event.cycle < 500_000
            assert 0 <= event.container < 4

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon=-1, containers=1)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon=10, containers=0)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon=10, containers=1, rate=-1)

    def test_counts_by_kind(self):
        schedule = FaultSchedule([
            FaultEvent(1, FaultKind.TRANSIENT),
            FaultEvent(2, FaultKind.TRANSIENT),
            FaultEvent(3, FaultKind.WRITE_ERROR),
        ])
        assert schedule.counts() == {
            "transient": 2, "write_error": 1, "permanent": 0,
        }


class TestResilienceStats:
    def test_mttr_zero_without_repairs(self):
        assert ResilienceStats().mttr_cycles() == 0.0

    def test_mttr_mean(self):
        stats = ResilienceStats(
            containers_repaired=2, mttr_cycles_total=300, mttr_cycles_max=200
        )
        assert stats.mttr_cycles() == 150.0
        assert stats.to_dict()["mttr_cycles"] == 150.0
        assert stats.to_dict()["mttr_cycles_max"] == 200


class TestStaticRepairBound:
    def test_composition(self):
        library = build_synthetic_library()
        backlog = port_backlog_bound(library, 5)
        bound = static_repair_bound(
            library, 5, scrub_period=10_000, max_retries=3,
            backoff_cycles=1_000,
        )
        # scrub + (1 + retries) port passes + geometric backoff ladder.
        assert bound == 10_000 + 4 * backlog + (1_000 + 2_000 + 4_000)

    def test_no_retries_collapses_to_scrub_plus_one_pass(self):
        library = build_synthetic_library()
        backlog = port_backlog_bound(library, 5)
        bound = static_repair_bound(
            library, 5, scrub_period=500, max_retries=0, backoff_cycles=1_000
        )
        assert bound == 500 + backlog
