"""Property-based crash consistency: resume equals the uninterrupted run.

Hypothesis picks the kill point (any journal boundary), the checkpoint
cadence and a small scenario shape; the property is the tentpole
guarantee ``trace(resume(snapshot, journal)) == trace(uninterrupted)``.
"""

import shutil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import trace_signature
from repro.bench.suites import build_synthetic_library
from repro.recovery import (
    JOURNAL_NAME,
    RecoverableRuntime,
    list_snapshots,
    query,
)
from repro.runtime import RisppRuntime

LIBRARY = build_synthetic_library()


def fresh_runtime():
    return RisppRuntime(LIBRARY, 5, core_mhz=100.0, optimize=True)


def drive(rt, rounds, si0_calls):
    now = 1_000
    rt.forecast("SI0", now, expected=float(si0_calls))
    rt.forecast("SI1", now, expected=2.0)
    for _ in range(rounds):
        for _ in range(si0_calls):
            now += rt.execute_si("SI0", now)
        for _ in range(2):
            now += rt.execute_si("SI1", now)
        rt.forecast("SI0", now, expected=float(si0_calls))
    rt.advance(now + 40_000)
    return query(rt, "last_cycle")


@given(
    data=st.data(),
    rounds=st.integers(min_value=1, max_value=3),
    si0_calls=st.integers(min_value=1, max_value=6),
    checkpoint_every=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=25, deadline=None)
def test_crash_at_any_boundary_resumes_to_the_reference(
    tmp_path_factory, data, rounds, si0_calls, checkpoint_every
):
    reference = fresh_runtime()
    ref_end = drive(reference, rounds, si0_calls)
    ref_sig = trace_signature(reference.trace)

    base = tmp_path_factory.mktemp("recovery")
    full = base / "full"
    rec = RecoverableRuntime(
        fresh_runtime(), full, checkpoint_every=checkpoint_every
    )
    assert drive(rec, rounds, si0_calls) == ref_end
    rec.close()
    total = rec.journal_records
    assert trace_signature(rec.trace) == ref_sig

    # The kill point: any boundary, including before the first command
    # (empty journal) and after the last (nothing left to redo).
    k = data.draw(st.integers(min_value=0, max_value=total), label="crash_seq")
    crashed = base / "crashed"
    lines = (full / JOURNAL_NAME).read_text().splitlines(keepends=True)
    crashed.mkdir()
    (crashed / JOURNAL_NAME).write_text("".join(lines[:k]))
    for seq, path in list_snapshots(full):
        if seq <= k:
            shutil.copy(path, crashed / path.name)

    resumed = RecoverableRuntime(
        fresh_runtime(), crashed, checkpoint_every=checkpoint_every, resume=True
    )
    assert drive(resumed, rounds, si0_calls) == ref_end
    resumed.close()
    assert trace_signature(resumed.trace) == ref_sig
    assert resumed.journal_records == total
