"""rispp-verify's static feasibility prover (rules FEA001..FEA004).

The acceptance property: the prover's worst-case rotation-latency bound,
computed from the library alone, must dominate every rotation latency
actually observed in the shipped suite traces — including runs with
fault injection (resequencing only pulls jobs earlier).
"""

from types import SimpleNamespace

import pytest

from repro.analysis import (
    FeasibilityArtifact,
    LintContext,
    port_backlog_bound,
    prove_feasibility,
    rotation_cycle_table,
    run_checks,
    run_verify_suite,
)
from repro.bench.suites import build_synthetic_library
from repro.core import (
    AtomCatalogue,
    AtomKind,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
)
from repro.hardware.reconfig import ReconfigurationPort
from repro.sim import EventKind


@pytest.fixture(scope="module")
def library():
    return build_synthetic_library()


def _point(si_name, block_id, distance):
    return SimpleNamespace(si_name=si_name, block_id=block_id, distance=distance)


def _library_with_unwritable_kind():
    """'Ghost' has no bitstream: molecules demanding it can never load."""
    catalogue = AtomCatalogue.of(
        [
            AtomKind("Real", bitstream_bytes=50_000),
            AtomKind("Ghost", bitstream_bytes=0),
        ]
    )
    space = catalogue.space
    si = SpecialInstruction(
        "MIXED",
        space,
        400,
        [
            MoleculeImpl(space.molecule({"Real": 1}), 60),
            MoleculeImpl(space.molecule({"Real": 1, "Ghost": 1}), 20),
        ],
    )
    return SILibrary(catalogue, [si])


class TestRotationCycleTable:
    def test_matches_the_port_model(self, library):
        table = rotation_cycle_table(library)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        for kind in library.catalogue.reconfigurable_kinds():
            assert table[kind.name] == port.rotation_cycles(kind.name)

    def test_omits_kinds_without_bitstream(self):
        lib = _library_with_unwritable_kind()
        table = rotation_cycle_table(lib)
        assert "Real" in table and "Ghost" not in table


class TestProver:
    def test_every_si_gets_a_bound_and_fea004(self, library):
        result = prove_feasibility(library, 5)
        assert set(result.bounds) == {si.name for si in library}
        fea4 = result.report.by_rule("FEA004")
        assert len(fea4) == len(result.bounds)
        for bound in result.bounds.values():
            assert bound.loadable
            assert bound.bound_cycles == bound.write_cycles + bound.queue_cycles
            assert bound.min_upgrade_cycles <= bound.write_cycles

    def test_bound_structure_is_sound(self, library):
        # write = serial port time of the worst molecule's own demand;
        # queue = the remaining containers' worst foreign writes.
        result = prove_feasibility(library, 5)
        table = rotation_cycle_table(library)
        max_rot = max(table.values())
        for bound in result.bounds.values():
            jobs = sum(bound.demand.values())
            assert bound.queue_cycles == max(0, 5 - jobs) * max_rot
            assert bound.write_cycles == sum(
                count * table[kind] for kind, count in bound.demand.items()
            )

    def test_container_starved_molecule_flagged_fea002(self, library):
        # On one container the 4-atom molecules can never be placed.
        result = prove_feasibility(library, 1)
        dead = result.report.by_rule("FEA002")
        assert dead
        assert all("container" in d.message for d in dead)

    def test_unwritable_molecule_and_dead_atom_flagged(self):
        lib = _library_with_unwritable_kind()
        result = prove_feasibility(lib, 4)
        assert result.report.by_rule("FEA002")
        fea3 = result.report.by_rule("FEA003")
        assert len(fea3) == 1
        assert fea3[0].context["atom"] == "Ghost"
        # The SW-fallback bound still exists via the loadable molecule.
        assert result.bounds["MIXED"].loadable

    def test_zero_containers_makes_everything_unloadable(self, library):
        result = prove_feasibility(library, 0)
        assert all(not b.loadable for b in result.bounds.values())
        assert result.port_backlog_cycles == 0

    def test_negative_containers_rejected(self, library):
        with pytest.raises(ValueError, match="negative"):
            prove_feasibility(library, -1)


class TestStarvation:
    def test_too_close_forecast_flagged_fea001(self, library):
        result = prove_feasibility(
            library, 5, placements=[_point("SI0", "bb_hot", 10.0)]
        )
        findings = result.report.by_rule("FEA001")
        assert len(findings) == 1
        assert findings[0].context["si"] == "SI0"

    def test_far_enough_forecast_is_clean(self, library):
        far = prove_feasibility(library, 5).bounds["SI0"].min_upgrade_cycles
        result = prove_feasibility(
            library, 5, placements=[_point("SI0", "bb_hot", float(far + 1))]
        )
        assert not result.report.by_rule("FEA001")

    def test_forecast_for_unloadable_si_flagged(self):
        lib = _library_with_unwritable_kind()
        result = prove_feasibility(
            lib, 0, placements=[_point("MIXED", "bb", 1e9)]
        )
        assert result.report.by_rule("FEA001")


class TestCheckerRegistration:
    def test_artifact_flows_through_run_checks(self, library):
        artifact = FeasibilityArtifact(
            library=library,
            containers=5,
            placements=[_point("SI0", "bb", 1.0)],
            subject="unit",
        )
        report = run_checks(
            artifact, context=LintContext(subject="unit"),
            families=("feasibility",),
        )
        ids = set(d.rule_id for d in report)
        assert "FEA004" in ids and "FEA001" in ids
        assert report.ok()  # feasibility findings never ERROR


class TestBoundDominatesObservedLatency:
    """Acceptance: static bound >= every observed rotation latency."""

    @pytest.mark.parametrize("suite", ["synthetic", "h264", "aes"])
    def test_bound_covers_suite_traces(self, suite):
        result = run_verify_suite(suite, quick=True)
        rt = result.runtime
        assert rt is not None
        bound = port_backlog_bound(rt.library, len(rt.fabric))
        observed = [
            e.detail["finishes"] - e.cycle
            for e in rt.trace.events
            if e.kind is EventKind.ROTATION_REQUESTED
        ]
        assert observed, f"suite {suite} requested no rotations"
        assert max(observed) <= bound
        # The per-SI FEA004 bounds are also reported by the suite result.
        assert result.feasibility.port_backlog_cycles == bound
