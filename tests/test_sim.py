"""Tests for the simulation substrate: IR, executor, core model, tasks, trace."""

import pytest

from repro.sim import (
    Branch,
    Compute,
    CoreModel,
    EventKind,
    ExecuteSI,
    Forecast,
    IRBlock,
    Jump,
    Label,
    MultiTaskSimulator,
    Program,
    ScriptedTask,
    Trace,
    execute,
    profile_program,
)
from repro.runtime import RisppRuntime


def counting_loop(iterations: int) -> Program:
    """entry -> loop(xN, uses SI "S") -> done."""
    p = Program("entry")
    p.block("entry", cycles=5, action=lambda env: env.setdefault("i", 0),
            terminator=Jump("loop"))

    def bump(env):
        env["i"] += 1

    p.block(
        "loop",
        cycles=10,
        si_calls={"S": 2},
        action=bump,
        terminator=Branch(lambda env: env["i"] < iterations, "loop", "done"),
    )
    p.block("done", cycles=1)
    return p


class TestIR:
    def test_validate_targets(self):
        p = Program("a")
        p.block("a", terminator=Jump("ghost"))
        with pytest.raises(ValueError):
            p.validate()

    def test_missing_entry(self):
        p = Program("nope")
        p.block("a")
        with pytest.raises(ValueError):
            p.validate()

    def test_duplicate_block(self):
        p = Program("a")
        p.block("a")
        with pytest.raises(ValueError):
            p.block("a")

    def test_block_validation(self):
        with pytest.raises(ValueError):
            IRBlock("")
        with pytest.raises(ValueError):
            IRBlock("x", cycles=-1)
        with pytest.raises(ValueError):
            IRBlock("x", si_calls={"S": 0})

    def test_to_cfg_structure(self):
        cfg = counting_loop(3).to_cfg()
        assert set(cfg.block_ids()) == {"entry", "loop", "done"}
        assert "loop" in cfg.successors("loop")
        assert cfg.get("loop").si_usages == {"S": 2}

    def test_branch_same_target_collapses(self):
        p = Program("a")
        p.block("a", terminator=Branch(lambda e: True, "b", "b"))
        p.block("b")
        assert p.successors_of("a") == ("b",)


class TestExecutor:
    def test_loop_executes_n_times(self):
        result = execute(counting_loop(4))
        assert result.block_count("loop") == 4
        assert result.env["i"] == 4
        assert result.si_executions == {"S": 8}
        assert result.cycles == 5 + 4 * 10 + 1

    def test_infinite_loop_detected(self):
        p = Program("a")
        p.block("a", terminator=Jump("a"))
        with pytest.raises(RuntimeError):
            execute(p, max_blocks=100)

    def test_profile_program_installs_counts(self):
        cfg, results = profile_program(counting_loop(5))
        assert cfg.get("loop").exec_count == 5
        assert cfg.edge("loop", "loop").count == 4
        assert cfg.edge_probability("loop", "loop") == pytest.approx(0.8)

    def test_profile_multiple_runs(self):
        cfg, results = profile_program(
            counting_loop(3), runs=4, env_factory=lambda i: {}
        )
        assert len(results) == 4
        assert cfg.get("entry").exec_count == 4

    def test_profile_run_validation(self):
        with pytest.raises(ValueError):
            profile_program(counting_loop(1), runs=0)


class TestCoreModel:
    def test_block_cycles_from_mix(self):
        core = CoreModel()
        assert core.block_cycles({"alu": 4, "load": 2, "branch": 1}) == 10

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            CoreModel().instruction_cycles("fma")

    def test_unit_conversions_roundtrip(self):
        core = CoreModel(frequency_mhz=100.0)
        assert core.us_to_cycles(857.63) == 85763
        assert core.cycles_to_us(85763) == pytest.approx(857.63)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreModel(frequency_mhz=0)
        with pytest.raises(ValueError):
            CoreModel(costs={"alu": 0})
        with pytest.raises(ValueError):
            CoreModel().block_cycles({"alu": -1})


class TestTrace:
    def test_record_and_filter(self):
        t = Trace()
        t.record(5, EventKind.FORECAST, task="A", si="S")
        t.record(9, EventKind.SI_EXECUTED, task="B", si="S", mode="SW")
        assert len(t) == 2
        assert len(t.of_kind(EventKind.FORECAST)) == 1
        assert len(t.for_task("B")) == 1
        assert len(t.for_si("S")) == 2

    def test_first_with_detail_filter(self):
        t = Trace()
        t.record(1, EventKind.SI_EXECUTED, si="S", mode="SW")
        t.record(2, EventKind.SI_EXECUTED, si="S", mode="HW")
        hit = t.first(EventKind.SI_EXECUTED, mode="HW")
        assert hit.cycle == 2
        assert t.first(EventKind.SI_EXECUTED, mode="none") is None

    def test_render_timeline(self):
        t = Trace()
        t.record(1, EventKind.FORECAST, task="A", si="S", expected=3)
        text = t.render_timeline()
        assert "forecast" in text and "expected=3" in text


class TestMultiTaskSimulator:
    def make_sim(self, mini_library, tasks):
        rt = RisppRuntime(mini_library, 4, core_mhz=100.0)
        return rt, MultiTaskSimulator(rt, tasks)

    def test_single_task_clock(self, mini_library):
        task = ScriptedTask("A", [Compute(100), ExecuteSI("HT", times=2), Label("x")])
        rt, sim = self.make_sim(mini_library, [task])
        sim.run()
        # two software executions of HT at 298 cycles each
        assert task.clock == 100 + 2 * 298
        assert sim.label_time("A", "x") == task.clock

    def test_si_executions_interleave(self, mini_library):
        # Two tasks each doing 3 SI executions: events must be globally
        # ordered by cycle, not grouped per task.
        a = ScriptedTask("A", [ExecuteSI("HT", times=3)])
        b = ScriptedTask("B", [ExecuteSI("SATD", times=3)])
        rt, sim = self.make_sim(mini_library, [a, b])
        sim.run()
        execs = rt.trace.of_kind(EventKind.SI_EXECUTED)
        assert len(execs) == 6
        tasks_in_order = [e.task for e in execs]
        assert tasks_in_order != ["A"] * 3 + ["B"] * 3

    def test_forecast_actions_reach_runtime(self, mini_library):
        a = ScriptedTask("A", [Forecast("HT", expected=9), Compute(10)])
        rt, sim = self.make_sim(mini_library, [a])
        sim.run()
        fc = rt.trace.of_kind(EventKind.FORECAST)
        assert fc and fc[0].detail["expected"] == 9

    def test_duplicate_task_names_rejected(self, mini_library):
        rt = RisppRuntime(mini_library, 2)
        with pytest.raises(ValueError):
            MultiTaskSimulator(
                rt, [ScriptedTask("A", []), ScriptedTask("A", [])]
            )

    def test_max_steps_guard(self, mini_library):
        a = ScriptedTask("A", [Compute(1)] * 10)
        rt, sim = self.make_sim(mini_library, [a])
        with pytest.raises(RuntimeError):
            sim.run(max_steps=3)
