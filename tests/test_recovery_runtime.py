"""Crash consistency of :class:`RecoverableRuntime`.

The central theorem: for a deterministic driver, killing the process at
*any* command boundary and resuming yields the trace of the
uninterrupted run.  ``crash_after(k)`` simulates the kill by truncating
a full run's store to its first ``k`` journal records (exactly the disk
state a kill between flushing record ``k`` and flushing ``k + 1``
leaves behind — including the record-flushed-but-never-applied case,
since in-memory state dies with the process).
"""

import shutil

import pytest

from repro.bench.harness import trace_signature
from repro.bench.suites import build_synthetic_library
from repro.recovery import (
    JOURNAL_NAME,
    RecoverableRuntime,
    RecoveryError,
    RecoveryPlan,
    SimulatedCrash,
    list_snapshots,
    query,
    read_journal,
)
from repro.runtime import RisppRuntime


@pytest.fixture(scope="module")
def library():
    return build_synthetic_library()


def fresh_runtime(library):
    return RisppRuntime(library, 5, core_mhz=100.0, optimize=True)


def drive(rt):
    """The fixed scenario: forecasts, SI stream, a defect, quiescence.

    Exercises every journaled op, including the state queries a driver
    steers by (which must answer from the journal on a resumed run).
    """
    now = 1_000
    rt.forecast("SI0", now, expected=8.0)
    rt.forecast("SI1", now, expected=2.0)
    for _ in range(3):
        for _ in range(8):
            now += rt.execute_si("SI0", now)
        for _ in range(2):
            now += rt.execute_si("SI1", now)
        rt.forecast("SI0", now, expected=8.0)
    rt.fail_container(1, now + 10)
    rt.forecast_end("SI1", now + 20)
    rt.advance(now + 50_000)
    idle = query(rt, "port_idle")
    episodes = query(rt, "open_episodes")
    return (query(rt, "last_cycle"), idle, episodes)


def run_to_store(library, store, **kwargs):
    rec = RecoverableRuntime(fresh_runtime(library), store, **kwargs)
    end = drive(rec)
    rec.close()
    return rec, end


def crash_after(full_store, crashed_store, k):
    """Reduce a completed run's store to the state a kill at seq k leaves."""
    crashed_store.mkdir()
    lines = (full_store / JOURNAL_NAME).read_text().splitlines(keepends=True)
    (crashed_store / JOURNAL_NAME).write_text("".join(lines[:k]))
    for seq, path in list_snapshots(full_store):
        if seq <= k:
            shutil.copy(path, crashed_store / path.name)


class TestCrashAtEveryBoundary:
    def test_resume_reproduces_the_uninterrupted_trace(self, library, tmp_path):
        reference = fresh_runtime(library)
        ref_end = drive(reference)
        ref_sig = trace_signature(reference.trace)

        full = tmp_path / "full"
        rec, end = run_to_store(library, full, checkpoint_every=5)
        assert end == ref_end
        assert trace_signature(rec.trace) == ref_sig
        total = rec.journal_records
        assert total == 41  # 2 + 3*(10+1) + 3 + 3 queries
        assert rec.snapshots_taken == total // 5

        for k in range(total + 1):
            crashed = tmp_path / f"crash-{k}"
            crash_after(full, crashed, k)
            resumed = RecoverableRuntime(
                fresh_runtime(library), crashed, checkpoint_every=5, resume=True
            )
            assert resumed.resumed
            assert resumed.in_handoff == (k > 0)
            assert resumed.replayed_records == k % 5 if k else True
            assert drive(resumed) == ref_end
            assert not resumed.in_handoff
            assert trace_signature(resumed.trace) == ref_sig
            assert resumed.journal_records == total
            resumed.close()

    def test_double_crash_still_converges(self, library, tmp_path):
        """A resumed run crashing again resumes again, to the same end."""
        reference = fresh_runtime(library)
        drive(reference)
        ref_sig = trace_signature(reference.trace)

        full = tmp_path / "full"
        run_to_store(library, full, checkpoint_every=4)
        first = tmp_path / "first"
        crash_after(full, first, 17)

        # Resume, then "crash" again mid-handoff by abandoning the run.
        resumed = RecoverableRuntime(
            fresh_runtime(library), first, checkpoint_every=4, resume=True
        )
        resumed.close()  # nothing re-issued: disk state unchanged
        again = RecoverableRuntime(
            fresh_runtime(library), first, checkpoint_every=4, resume=True
        )
        drive(again)
        again.close()
        assert trace_signature(again.trace) == ref_sig


class TestTornTail:
    def test_partial_last_record_discarded_and_overwritten(
        self, library, tmp_path
    ):
        reference = fresh_runtime(library)
        drive(reference)
        ref_sig = trace_signature(reference.trace)

        full = tmp_path / "full"
        run_to_store(library, full, checkpoint_every=5)
        crashed = tmp_path / "crashed"
        crash_after(full, crashed, 13)
        with open(crashed / JOURNAL_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"seq":14,"cycle":9')  # torn mid-write

        resumed = RecoverableRuntime(
            fresh_runtime(library), crashed, checkpoint_every=5, resume=True
        )
        drive(resumed)
        resumed.close()
        assert trace_signature(resumed.trace) == ref_sig
        read = read_journal(crashed / JOURNAL_NAME)
        assert not read.discarded_tail
        assert [r.seq for r in read.records][:3] == [1, 2, 3]


class TestProtocol:
    def test_checkpoint_every_must_be_positive(self, library, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            RecoverableRuntime(
                fresh_runtime(library), tmp_path, checkpoint_every=0
            )

    def test_divergent_driver_raises(self, library, tmp_path):
        full = tmp_path / "full"
        run_to_store(library, full, checkpoint_every=5)
        resumed = RecoverableRuntime(
            fresh_runtime(library), full, resume=True
        )
        with pytest.raises(RecoveryError, match="diverged"):
            resumed.forecast("SI3", 1_000, expected=99.0)
        resumed.close()

    def test_simulated_crash_fires_before_journaling(self, library, tmp_path):
        store = tmp_path / "store"
        rec = RecoverableRuntime(
            fresh_runtime(library), store, checkpoint_every=5, crash_at=2_000
        )
        rec.forecast("SI0", 1_000, expected=8.0)
        with pytest.raises(SimulatedCrash) as excinfo:
            rec.execute_si("SI0", 2_500)
        rec.close()
        crash = excinfo.value
        assert crash.cycle == 2_500
        assert crash.seq == 2
        assert crash.store == store
        # The triggering command never reached the journal.
        assert len(read_journal(store / JOURNAL_NAME).records) == 1

    def test_unknown_query_rejected(self, library, tmp_path):
        rec = RecoverableRuntime(fresh_runtime(library), tmp_path / "s")
        with pytest.raises(ValueError, match="unknown runtime query"):
            rec.query("free_lunch")
        rec.close()

    def test_query_helper_reads_plain_runtimes_directly(self, library):
        rt = fresh_runtime(library)
        rt.forecast("SI0", 500, expected=4.0)
        assert query(rt, "last_cycle") == rt.trace.last_cycle
        assert query(rt, "open_episodes") == 0

    def test_fresh_run_clears_a_stale_store(self, library, tmp_path):
        store = tmp_path / "store"
        run_to_store(library, store, checkpoint_every=5)
        assert list_snapshots(store)
        rec = RecoverableRuntime(
            fresh_runtime(library), store, checkpoint_every=5
        )
        assert rec.journal_records == 0
        assert list_snapshots(store) == []
        rec.close()

    def test_plan_wrap_builds_the_wrapper(self, library, tmp_path):
        plan = RecoveryPlan(
            store=tmp_path / "s", checkpoint_every=7, crash_at=None
        )
        rec = plan.wrap(fresh_runtime(library))
        assert isinstance(rec, RecoverableRuntime)
        assert rec.store == tmp_path / "s"
        # Reads delegate to the wrapped runtime untouched.
        assert rec.trace is rec.runtime.trace
        assert len(rec.fabric) == 5
        rec.close()
