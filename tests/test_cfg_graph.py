"""Unit tests for the CFG substrate: graph structure and SCCs."""

import pytest

from repro.cfg import (
    BasicBlock,
    ControlFlowGraph,
    condense,
    profile_from_trace,
    strongly_connected_components,
)


def diamond() -> ControlFlowGraph:
    """entry -> {left, right} -> exit, with a loop on right."""
    cfg = ControlFlowGraph()
    cfg.block("entry", cycles=2)
    cfg.block("left", cycles=5, si_usages={"DCT": 1})
    cfg.block("right", cycles=3)
    cfg.block("exit", cycles=1)
    cfg.add_edge("entry", "left", count=30)
    cfg.add_edge("entry", "right", count=70)
    cfg.add_edge("left", "exit", count=30)
    cfg.add_edge("right", "right", count=140)
    cfg.add_edge("right", "exit", count=70)
    return cfg


class TestGraphStructure:
    def test_entry_defaults_to_first_block(self):
        cfg = diamond()
        assert cfg.entry == "entry"

    def test_duplicate_block_rejected(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            cfg.block("entry")

    def test_edge_to_unknown_block_rejected(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            cfg.add_edge("entry", "ghost")

    def test_duplicate_edge_rejected(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            cfg.add_edge("entry", "left")

    def test_successors_predecessors(self):
        cfg = diamond()
        assert set(cfg.successors("entry")) == {"left", "right"}
        assert set(cfg.predecessors("exit")) == {"left", "right"}
        assert "right" in cfg.successors("right")

    def test_exit_blocks(self):
        assert diamond().exit_blocks() == ["exit"]

    def test_blocks_using_and_si_names(self):
        cfg = diamond()
        assert cfg.blocks_using("DCT") == ["left"]
        assert cfg.si_names() == ["DCT"]

    def test_block_validation(self):
        with pytest.raises(ValueError):
            BasicBlock("")
        with pytest.raises(ValueError):
            BasicBlock("b", cycles=-1)
        with pytest.raises(ValueError):
            BasicBlock("b", si_usages={"X": 0})

    def test_edge_probability_profiled(self):
        cfg = diamond()
        assert cfg.edge_probability("entry", "left") == pytest.approx(0.3)
        assert cfg.edge_probability("entry", "right") == pytest.approx(0.7)

    def test_edge_probability_uniform_fallback(self):
        cfg = ControlFlowGraph()
        cfg.block("a")
        cfg.block("b")
        cfg.block("c")
        cfg.add_edge("a", "b")
        cfg.add_edge("a", "c")
        assert cfg.edge_probability("a", "b") == pytest.approx(0.5)

    def test_edge_probability_no_successors_raises(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            cfg.edge_probability("exit", "entry")

    def test_transposed(self):
        t = diamond().transposed()
        assert set(t.successors("exit")) == {"left", "right"}
        assert t.entry == "exit"
        assert t.edge("exit", "left").count == 30

    def test_to_dot_contains_blocks_and_marks(self):
        dot = diamond().to_dot(highlight=["entry"])
        assert '"entry"' in dot and "shape=box" in dot
        assert "DCTx1" in dot
        assert '"right" -> "right"' in dot

    def test_set_profile_validates(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            cfg.set_profile({"entry": -1})
        with pytest.raises(ValueError):
            cfg.set_profile(edge_counts={("entry", "left"): -2})


class TestProfileFromTrace:
    def test_counts_installed(self):
        cfg = diamond()
        trace = ["entry", "right", "right", "right", "exit"]
        profile_from_trace(cfg, trace)
        assert cfg.get("right").exec_count == 3
        assert cfg.edge("right", "right").count == 2
        assert cfg.edge("entry", "right").count == 1

    def test_unknown_block_rejected(self):
        cfg = diamond()
        with pytest.raises(ValueError):
            profile_from_trace(cfg, ["entry", "ghost"])


class TestSCC:
    def test_self_loop_is_scc_loop(self):
        cond = condense(diamond())
        loops = cond.loops()
        assert len(loops) == 1
        assert loops[0].members == ("right",)

    def test_acyclic_graph_has_trivial_sccs(self):
        cfg = ControlFlowGraph()
        for b in "abc":
            cfg.block(b)
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "c")
        comps = strongly_connected_components(cfg)
        assert sorted(len(c) for c in comps) == [1, 1, 1]
        assert not condense(cfg).loops()

    def test_multi_block_loop(self):
        cfg = ControlFlowGraph()
        for b in ["entry", "head", "body", "exit"]:
            cfg.block(b)
        cfg.add_edge("entry", "head")
        cfg.add_edge("head", "body")
        cfg.add_edge("body", "head")
        cfg.add_edge("head", "exit")
        cond = condense(cfg)
        loops = cond.loops()
        assert len(loops) == 1
        assert set(loops[0].members) == {"head", "body"}

    def test_reverse_topological_emission(self):
        cfg = ControlFlowGraph()
        for b in "abc":
            cfg.block(b)
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "c")
        comps = strongly_connected_components(cfg)
        order = {c[0]: i for i, c in enumerate(comps)}
        # successors must be emitted before predecessors
        assert order["c"] < order["b"] < order["a"]

    def test_condensation_edges(self):
        cond = condense(diamond())
        entry_node = cond.nodes[cond.scc_of["entry"]]
        assert len(entry_node.successors) == 2

    def test_topological_order(self):
        cond = condense(diamond())
        topo = cond.topological_order()
        pos = {scc: i for i, scc in enumerate(topo)}
        for node in cond.nodes:
            for s in node.successors:
                assert pos[node.scc_id] < pos[s]

    def test_nested_loops(self):
        # outer: a -> b -> c -> a ; inner self loop on b is part of same SCC
        cfg = ControlFlowGraph()
        for b in ["pre", "a", "b", "c", "post"]:
            cfg.block(b)
        cfg.add_edge("pre", "a")
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "b")
        cfg.add_edge("b", "c")
        cfg.add_edge("c", "a")
        cfg.add_edge("c", "post")
        cond = condense(cfg)
        loops = cond.loops()
        assert len(loops) == 1
        assert set(loops[0].members) == {"a", "b", "c"}

    def test_deep_chain_no_recursion_error(self):
        cfg = ControlFlowGraph()
        n = 5000
        cfg.block("b0")
        for i in range(1, n):
            cfg.block(f"b{i}")
            cfg.add_edge(f"b{i-1}", f"b{i}")
        comps = strongly_connected_components(cfg)
        assert len(comps) == n
