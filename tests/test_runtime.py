"""Unit tests for the run-time architecture: monitor, replacement, rotation, manager."""

import pytest

from repro.runtime import (
    ForecastMonitor,
    HighestIdPolicy,
    LRUPolicy,
    MRUPolicy,
    RisppRuntime,
    choose_victim,
    future_population,
    plan_rotations,
    victim_candidates,
)
from repro.hardware import Fabric, ReconfigurationPort
from repro.sim import EventKind


class TestForecastMonitor:
    def test_first_firing_uses_compile_time_value(self):
        m = ForecastMonitor()
        assert m.forecast_fired("A", "S", 40.0, now=0) == 40.0

    def test_observation_blends_into_estimate(self):
        m = ForecastMonitor(smoothing=0.5)
        m.forecast_fired("A", "S", 40.0, now=0)
        for _ in range(10):
            m.si_executed("A", "S")
        m.forecast_ended("A", "S", now=100)
        # (1-0.5)*40 + 0.5*10 = 25
        assert m.expectation("A", "S") == pytest.approx(25.0)

    def test_refires_close_previous_window(self):
        m = ForecastMonitor(smoothing=1.0)
        m.forecast_fired("A", "S", 40.0, now=0)
        for _ in range(8):
            m.si_executed("A", "S")
        # Second firing implicitly closes the first window.
        tuned = m.forecast_fired("A", "S", 40.0, now=50)
        assert tuned == pytest.approx(8.0)

    def test_tasks_are_independent(self):
        m = ForecastMonitor()
        m.forecast_fired("A", "S", 10.0, now=0)
        m.forecast_fired("B", "S", 99.0, now=0)
        m.si_executed("A", "S")
        m.forecast_ended("A", "S", now=10)
        assert m.expectation("B", "S") == 99.0

    def test_execution_without_window_ignored(self):
        m = ForecastMonitor()
        m.si_executed("A", "S")  # no crash, no state
        assert m.expectation("A", "S", default=-1) == -1

    def test_accuracy_stats(self):
        m = ForecastMonitor(smoothing=0.5)
        m.forecast_fired("A", "S", 10.0, now=0)
        for _ in range(6):
            m.si_executed("A", "S")
        m.forecast_ended("A", "S", now=5)
        stats = m.stats("A", "S")
        assert stats.windows == 1
        assert stats.total_observed == 6
        assert stats.absolute_error() == pytest.approx(4.0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ForecastMonitor(smoothing=0.0)
        with pytest.raises(ValueError):
            ForecastMonitor(smoothing=1.5)


class TestReplacement:
    def loaded_fabric(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 4)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        for cid, atom in [(0, "Pack"), (1, "Transform"), (2, "Transform")]:
            job = port.request(fabric, atom, cid, now=0)
            port.advance(fabric, job.finish_at)
        return fabric, port

    def test_empty_container_preferred(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        keep = fabric.space.molecule({"Pack": 1, "Transform": 2})
        victim = choose_victim(fabric, port, keep, LRUPolicy(), now=10)
        assert victim.container_id == 3  # the empty one

    def test_protected_atoms_never_victims(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        keep = fabric.space.molecule({"Pack": 1, "Transform": 2})
        cands = victim_candidates(fabric, port, keep)
        assert {c.container_id for c in cands} == {3}

    def test_surplus_atom_is_candidate(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        keep = fabric.space.molecule({"Pack": 1, "Transform": 1})
        cands = victim_candidates(fabric, port, keep)
        # one Transform is surplus, plus the empty container.
        ids = {c.container_id for c in cands}
        assert 3 in ids
        assert ids & {1, 2}

    def test_lru_vs_mru(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        fabric.container(1).touch(100)
        fabric.container(2).touch(50)
        keep = fabric.space.zero()
        lru_pick = LRUPolicy().select(
            [fabric.container(1), fabric.container(2)], now=200
        )
        mru_pick = MRUPolicy().select(
            [fabric.container(1), fabric.container(2)], now=200
        )
        assert lru_pick.container_id == 2
        assert mru_pick.container_id == 1

    def test_highest_id_policy(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        pick = HighestIdPolicy().select(
            [fabric.container(0), fabric.container(2)], now=0
        )
        assert pick.container_id == 2

    def test_reserved_container_excluded(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        port.request(fabric, "SATD", 3, now=5)
        keep = fabric.space.zero()
        cands = victim_candidates(fabric, port, keep)
        assert all(c.container_id != 3 for c in cands)

    def test_no_safe_victim_returns_none(self, mini_catalogue):
        fabric, port = self.loaded_fabric(mini_catalogue)
        port.request(fabric, "SATD", 3, now=5)
        keep = fabric.space.molecule({"Pack": 1, "Transform": 2, "SATD": 1})
        assert choose_victim(fabric, port, keep, LRUPolicy(), now=9) is None


class TestRotationPlanner:
    def test_plan_requests_only_missing(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 4)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, job.finish_at)
        demand = mini_library.space.molecule({"Pack": 1, "Transform": 1, "SATD": 1})
        plan = plan_rotations(
            mini_library, fabric, port, demand, LRUPolicy(), now=job.finish_at
        )
        assert sorted(j.atom for j in plan.jobs) == ["SATD", "Transform"]

    def test_in_flight_atoms_not_requested_again(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 4)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        port.request(fabric, "Pack", 0, now=0)  # scheduled, not yet loaded
        demand = mini_library.space.molecule({"Pack": 1})
        plan = plan_rotations(mini_library, fabric, port, demand, LRUPolicy(), now=0)
        assert plan.jobs == []

    def test_unplaced_recorded_when_fabric_full(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 1)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        demand = mini_library.space.molecule({"Pack": 1, "Transform": 1})
        plan = plan_rotations(mini_library, fabric, port, demand, LRUPolicy(), now=0)
        assert len(plan.jobs) == 1
        assert sum(plan.unplaced.values()) == 1

    def test_static_kinds_ignored(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 2)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        demand = mini_library.space.molecule({"Load": 4, "Pack": 1})
        plan = plan_rotations(mini_library, fabric, port, demand, LRUPolicy(), now=0)
        assert [j.atom for j in plan.jobs] == ["Pack"]

    def test_reallocation_tracked(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 1)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0, owner="B")
        port.advance(fabric, job.finish_at)
        demand = mini_library.space.molecule({"Transform": 1})
        plan = plan_rotations(
            mini_library, fabric, port, demand, LRUPolicy(),
            now=job.finish_at, owner="A",
        )
        assert plan.reallocated == [(0, "B", "A")]

    def test_future_population(self, mini_library):
        fabric = Fabric(mini_library.catalogue, 2)
        port = ReconfigurationPort(mini_library.catalogue, core_mhz=100.0)
        port.request(fabric, "Pack", 0, now=0)
        pop = future_population(fabric, port)
        assert pop.count("Pack") == 1


class TestRisppRuntime:
    def make_runtime(self, mini_library, containers=4, **kw):
        return RisppRuntime(mini_library, containers, core_mhz=100.0, **kw)

    def test_si_runs_in_software_initially(self, mini_library):
        rt = self.make_runtime(mini_library)
        cycles = rt.execute_si("HT", 0)
        assert cycles == 298
        assert rt.stats.sw_executions == 1
        assert rt.si_mode("HT", 0) == "SW"

    def test_forecast_triggers_rotations(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.forecast("HT", 0, expected=100)
        assert rt.stats.rotations_requested > 0
        assert rt.trace.of_kind(EventKind.ROTATION_REQUESTED)

    def test_si_upgrades_after_rotation_completes(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.forecast("HT", 0, expected=100)
        finish = max(j.finish_at for j in rt.port.jobs)
        assert rt.execute_si("HT", finish + 1) < 298
        assert rt.stats.hw_executions == 1

    def test_gradual_upgrade_emits_mode_switch(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.forecast("HT", 0, expected=100)
        rt.execute_si("HT", 1)  # still software
        finish = max(j.finish_at for j in rt.port.jobs)
        rt.execute_si("HT", finish + 1)  # now hardware
        switches = rt.trace.of_kind(EventKind.SI_MODE_SWITCH)
        assert len(switches) == 1
        assert switches[0].detail["from_mode"] == "SW"

    def test_forecast_end_frees_containers_for_other_si(self, mini_library):
        rt = self.make_runtime(mini_library, containers=4)
        rt.forecast("HT", 0, expected=10)
        t1 = max(j.finish_at for j in rt.port.jobs) + 1
        rt.forecast_end("HT", t1)
        rt.forecast("SATD", t1, expected=1000)
        t2 = max(j.finish_at for j in rt.port.jobs) + 1
        assert rt.execute_si("SATD", t2) < 544

    def test_unknown_si_rejected(self, mini_library):
        rt = self.make_runtime(mini_library)
        with pytest.raises(ValueError):
            rt.forecast("NOPE", 0)

    def test_invalid_priority_rejected(self, mini_library):
        rt = self.make_runtime(mini_library)
        with pytest.raises(ValueError):
            rt.forecast("HT", 0, priority=0)

    def test_rotate_on_demand_mode(self, mini_library):
        rt = self.make_runtime(mini_library, forecasting=False)
        # First execution runs in SW but kicks off rotations.
        assert rt.execute_si("HT", 0) == 298
        assert rt.stats.rotations_requested > 0
        finish = max(j.finish_at for j in rt.port.jobs)
        assert rt.execute_si("HT", finish + 1) < 298

    def test_monitor_fine_tunes_weights(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.forecast("HT", 0, expected=50)
        for i in range(5):
            rt.execute_si("HT", 10 + i)
        rt.forecast_end("HT", 100)
        # Second firing should use the blended estimate, not 50.
        tuned = rt.monitor.forecast_fired("main", "HT", 50, now=200)
        assert tuned < 50

    def test_stats_accumulate(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.forecast("HT", 0, expected=10)
        rt.execute_si("HT", 0)
        assert rt.stats.si_executions == 1
        assert rt.stats.replans == 1
        assert rt.stats.si_cycles == 298

    def test_per_task_stats(self, mini_library):
        rt = self.make_runtime(mini_library)
        rt.execute_si("HT", 0, task="A")
        rt.execute_si("HT", 300, task="A")
        rt.execute_si("SATD", 600, task="B")
        assert rt.task_stats["A"].si_executions == 2
        assert rt.task_stats["A"].si_cycles == 2 * 298
        assert rt.task_stats["B"].si_executions == 1
        assert rt.task_stats["B"].sw_executions == 1
        # The global view is the sum of the task views.
        assert rt.stats.si_executions == sum(
            s.si_executions for s in rt.task_stats.values()
        )
