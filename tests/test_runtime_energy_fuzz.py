"""Runtime energy accounting + forecast-pipeline fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forecast import ForecastDecisionFunction, run_forecast_pipeline
from repro.hardware import EnergyModel
from repro.runtime import RisppRuntime
from tests.test_cfg_properties import random_cfg


class TestRuntimeEnergyAccounting:
    def test_no_model_means_zero_energy(self, mini_library):
        rt = RisppRuntime(mini_library, 4)
        rt.forecast("HT", 0, expected=10)
        rt.execute_si("HT", 0)
        assert rt.stats.total_energy_nj() == 0.0

    def test_rotation_energy_accumulates(self, mini_library):
        model = EnergyModel()
        rt = RisppRuntime(mini_library, 4, energy_model=model)
        rt.forecast("HT", 0, expected=100)
        expected = 0.0
        for job in rt.port.jobs:
            kind = mini_library.catalogue.get(job.atom)
            expected += kind.bitstream_bytes * model.rotation_nj_per_byte
        assert rt.stats.rotation_energy_nj == pytest.approx(expected)
        assert expected > 0

    def test_execution_energy_only_in_hardware(self):
        from repro.apps.h264 import build_h264_library

        model = EnergyModel()
        rt = RisppRuntime(build_h264_library(), 4, energy_model=model)
        # Software execution: no SI data path active, zero dynamic energy
        # attributed to the fabric.
        rt.execute_si("HT_4x4", 0)
        assert rt.stats.execution_energy_nj == 0.0
        rt.forecast("HT_4x4", 10, expected=100)
        finish = max(j.finish_at for j in rt.port.jobs)
        rt.execute_si("HT_4x4", finish + 1)
        assert rt.stats.execution_energy_nj > 0.0
        assert rt.task_stats["main"].execution_energy_nj == pytest.approx(
            rt.stats.execution_energy_nj
        )

    def test_forecasting_saves_energy_vs_thrash(self, mini_library):
        # More rotations = more energy: a manager that rotates once spends
        # less rotation energy than one flip-flopping between SIs.
        model = EnergyModel()
        calm = RisppRuntime(mini_library, 4, energy_model=model)
        calm.forecast("HT", 0, expected=1000)
        thrash = RisppRuntime(mini_library, 4, energy_model=model)
        now = 0
        for i in range(4):
            si = ("HT", "SATD")[i % 2]
            other = ("SATD", "HT")[i % 2]
            thrash.forecast_end(other, now)
            thrash.forecast(si, now, expected=1000)
            now += 600_000
        assert (
            thrash.stats.rotation_energy_nj > calm.stats.rotation_energy_nj
        )


class TestForecastPipelineFuzz:
    """The compile-time pipeline must behave on arbitrary profiled CFGs."""

    @settings(max_examples=40, deadline=None)
    @given(random_cfg(), st.floats(50.0, 5000.0))
    def test_pipeline_never_crashes_and_annotations_are_valid(self, cfg, t_rot):
        from repro.core import (
            AtomCatalogue,
            AtomKind,
            MoleculeImpl,
            SILibrary,
            SpecialInstruction,
        )

        catalogue = AtomCatalogue.of([AtomKind("X", bitstream_bytes=1000)])
        space = catalogue.space
        library = SILibrary(
            catalogue,
            [
                SpecialInstruction(
                    "S",
                    space,
                    400,
                    [MoleculeImpl(space.unit("X"), 20)],
                )
            ],
        )
        fdf = ForecastDecisionFunction(t_rot=t_rot, t_sw=400.0, t_hw=20.0)
        annotation = run_forecast_pipeline(cfg, library, {"S": fdf}, 4)
        # Whatever came out is structurally sound.
        annotation.validate_against(cfg)
        for point in annotation.all_points():
            block = cfg.get(point.block_id)
            assert not block.uses_si("S")
            assert point.expected_executions >= 0
