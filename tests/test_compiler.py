"""Tests for the SI-identification compiler passes."""

import pytest

from repro.compiler import (
    Constraints,
    Operation,
    OperationGraph,
    best_candidates,
    candidate_dataflow,
    catalogue_for_candidate,
    enumerate_si_candidates,
    si_from_candidate,
)


def butterfly_graph() -> OperationGraph:
    """A 1-D transform butterfly: the Fig. 9 add/sub flow as scalar ops.

    e0=x0+x3, e1=x1+x2, e2=x1-x2, e3=x0-x3;
    y0=e0+e1, y2=e0-e1, y1=e3+e2, y3=e3-e2.
    """
    return OperationGraph(
        [
            Operation("e0", "add", ("%x0", "%x3")),
            Operation("e1", "add", ("%x1", "%x2")),
            Operation("e2", "sub", ("%x1", "%x2")),
            Operation("e3", "sub", ("%x0", "%x3")),
            Operation("y0", "add", ("e0", "e1")),
            Operation("y2", "sub", ("e0", "e1")),
            Operation("y1", "add", ("e3", "e2")),
            Operation("y3", "sub", ("e3", "e2")),
        ],
        live_outs=("y0", "y1", "y2", "y3"),
    )


def mixed_graph() -> OperationGraph:
    """Arithmetic cluster guarded by a load and a store (must stay out).

    Arithmetic costs two core cycles each (issue + execute) but chains at
    one level per cycle in hardware.
    """
    return OperationGraph(
        [
            Operation("ld", "load", ("%addr",), latency=2),
            Operation("a", "add", ("ld", "%k"), latency=2),
            Operation("b", "shl", ("a",), latency=2),
            Operation("c", "sub", ("b", "ld"), latency=2),
            Operation("st", "store", ("c", "%addr")),
        ],
        live_outs=("st",),
    )


class TestOperationGraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            Operation("", "add")
        with pytest.raises(ValueError):
            Operation("%x", "add")
        with pytest.raises(ValueError):
            Operation("a", "")
        with pytest.raises(ValueError):
            Operation("a", "add", latency=0)
        with pytest.raises(ValueError):
            OperationGraph([Operation("a", "add", ("ghost",))])
        with pytest.raises(ValueError):
            OperationGraph([Operation("a", "add")], live_outs=("nope",))
        with pytest.raises(ValueError):
            OperationGraph(
                [Operation("a", "add"), Operation("a", "sub")]
            )

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            OperationGraph(
                [
                    Operation("a", "add", ("b",)),
                    Operation("b", "add", ("a",)),
                ]
            )

    def test_io_of_subsets(self):
        g = butterfly_graph()
        stage1 = frozenset({"e0", "e1", "e2", "e3"})
        assert g.inputs_of(stage1) == {"%x0", "%x1", "%x2", "%x3"}
        # all stage-1 values are consumed by stage 2 (outside the subset)
        assert g.outputs_of(stage1) == stage1
        everything = frozenset(g.op_ids())
        assert g.outputs_of(everything) == {"y0", "y1", "y2", "y3"}

    def test_convexity(self):
        g = butterfly_graph()
        assert g.is_convex(frozenset({"e0", "e1", "y0"}))
        # e0 -> y0 with y0's other producer e1 outside is still convex;
        # but {e0, y0, y2} with e1 outside feeding both is fine too —
        # a *non*-convex set needs a path out and back in:
        g2 = OperationGraph(
            [
                Operation("a", "add", ("%x",)),
                Operation("b", "add", ("a",)),
                Operation("c", "add", ("b",)),
            ]
        )
        assert not g2.is_convex(frozenset({"a", "c"}))
        assert g2.is_convex(frozenset({"a", "b", "c"}))

    def test_costs(self):
        g = butterfly_graph()
        everything = frozenset(g.op_ids())
        assert g.software_cycles(everything) == 8
        assert g.critical_path_cycles(everything) == 2
        assert g.kinds_of(everything) == {"add": 4, "sub": 4}


class TestEnumeration:
    def test_finds_the_full_butterfly(self):
        g = butterfly_graph()
        candidates = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=4, max_ops=8)
        )
        assert candidates
        best = candidates[0]
        # The whole butterfly is the best candidate: 8 ops in 2 levels.
        assert best.ops == frozenset(g.op_ids())
        assert best.software_cycles == 8
        assert best.hardware_cycles == 2 + 1  # critical path + I/O overhead
        assert best.speedup > 2.5

    def test_io_constraints_prune(self):
        g = butterfly_graph()
        tight = enumerate_si_candidates(
            g, Constraints(max_inputs=2, max_outputs=1, max_ops=8)
        )
        for c in tight:
            assert len(c.inputs) <= 2
            assert len(c.outputs) <= 1

    def test_forbidden_kinds_stay_on_core(self):
        g = mixed_graph()
        candidates = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=2, max_ops=8)
        )
        for c in candidates:
            assert "ld" not in c.ops
            assert "st" not in c.ops

    def test_all_candidates_convex_and_profitable(self):
        g = butterfly_graph()
        for c in enumerate_si_candidates(g):
            assert g.is_convex(c.ops)
            assert c.saved_cycles > 0

    def test_best_candidates_disjoint(self):
        g = butterfly_graph()
        chosen = best_candidates(
            g, Constraints(max_inputs=2, max_outputs=2, max_ops=4), count=3
        )
        seen: set[str] = set()
        for c in chosen:
            assert not (c.ops & seen)
            seen |= c.ops

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            Constraints(max_inputs=0)
        with pytest.raises(ValueError):
            Constraints(min_ops=3, max_ops=2)
        with pytest.raises(ValueError):
            Constraints(io_overhead_cycles=-1)
        with pytest.raises(ValueError):
            best_candidates(butterfly_graph(), count=0)

    def test_explosion_guard(self):
        g = butterfly_graph()
        with pytest.raises(RuntimeError):
            enumerate_si_candidates(g, max_candidates=3)


class TestEmission:
    def test_dataflow_groups_kinds(self):
        g = butterfly_graph()
        candidate = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=4, max_ops=8)
        )[0]
        df = candidate_dataflow(g, candidate)
        # add and sub share the AddSub atom (the Fig. 9 reuse story).
        assert df.executions_per_kind() == {"AddSub": 8}

    def test_catalogue_covers_kinds(self):
        g = mixed_graph()
        candidate = enumerate_si_candidates(g)[0]
        cat = catalogue_for_candidate(g, candidate)
        df = candidate_dataflow(g, candidate)
        for kind in df.executions_per_kind():
            assert kind in cat

    def test_si_from_candidate_end_to_end(self):
        g = butterfly_graph()
        candidate = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=4, max_ops=8)
        )[0]
        si, catalogue, report = si_from_candidate("BUTTERFLY", g, candidate)
        assert si.name == "BUTTERFLY"
        assert report.kept == len(si.implementations)
        assert si.software_cycles == candidate.software_cycles
        # The generated molecules trade atoms against latency.
        atoms = sorted(i.atoms() for i in si.implementations)
        cycles = [i.cycles for i in sorted(si.implementations, key=lambda i: i.atoms())]
        assert atoms == sorted(set(atoms))
        assert cycles[0] >= cycles[-1]

    def test_existing_catalogue_must_cover_kinds(self):
        from repro.core import AtomCatalogue, AtomKind

        g = butterfly_graph()
        candidate = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=4, max_ops=8)
        )[0]
        wrong = AtomCatalogue.of([AtomKind("Unrelated", bitstream_bytes=10)])
        with pytest.raises(ValueError):
            si_from_candidate("X", g, candidate, catalogue=wrong)

    def test_custom_kind_map(self):
        g = butterfly_graph()
        candidate = enumerate_si_candidates(
            g, Constraints(max_inputs=4, max_outputs=4, max_ops=8)
        )[0]
        df = candidate_dataflow(g, candidate, kind_map={"add": "A", "sub": "B"})
        assert set(df.executions_per_kind()) == {"A", "B"}
