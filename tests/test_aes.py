"""Tests for the AES-128 case study: cipher correctness + Fig. 3 pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.aes import (
    AES_SOFTWARE_CYCLES,
    aes_forecast_report,
    build_aes_library,
    build_aes_program,
    decrypt_block,
    encrypt_block,
    encrypt_ecb,
    expand_key,
    gf_mul,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    profile_aes,
    shift_rows,
    sub_bytes,
    xtime,
)
from repro.sim import execute

blocks16 = st.binary(min_size=16, max_size=16)


class TestAESPrimitives:
    def test_xtime_known_values(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47  # wraps modulo the AES polynomial

    def test_gf_mul_fips_example(self):
        # FIPS-197 §4.2.1: {57} x {13} = {fe}
        assert gf_mul(0x57, 0x13) == 0xFE

    @given(st.integers(0, 255))
    def test_gf_mul_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_gf_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_sub_bytes_roundtrip(self, state):
        assert inv_sub_bytes(sub_bytes(state)) == state

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_shift_rows_roundtrip(self, state):
        assert inv_shift_rows(shift_rows(state)) == state

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_mix_columns_roundtrip(self, state):
        assert inv_mix_columns(mix_columns(state)) == state

    def test_key_expansion_fips_vector(self):
        # FIPS-197 Appendix A.1, last round key for the example cipher key.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        rks = expand_key(key)
        assert len(rks) == 11
        assert bytes(rks[10]).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestAESCipher:
    def test_fips_197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert encrypt_block(pt, key).hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_fips_197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert encrypt_block(pt, key).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    @given(blocks16, blocks16)
    @settings(max_examples=25)
    def test_encrypt_decrypt_roundtrip(self, pt, key):
        assert decrypt_block(encrypt_block(pt, key), key) == pt

    def test_block_length_checked(self):
        with pytest.raises(ValueError):
            encrypt_block(b"short", b"0" * 16)
        with pytest.raises(ValueError):
            decrypt_block(b"short", b"0" * 16)

    def test_ecb_multi_block(self):
        key = b"k" * 16
        pt = bytes(range(32))
        ct = encrypt_ecb(pt, key)
        assert len(ct) == 32
        assert ct[:16] == encrypt_block(pt[:16], key)
        with pytest.raises(ValueError):
            encrypt_ecb(b"odd length!", key)


class TestAESProgram:
    def test_ir_program_really_encrypts(self):
        rng = random.Random(7)
        program = build_aes_program()
        for _ in range(5):
            env = {
                "plaintext": bytes(rng.randrange(256) for _ in range(16)),
                "key": bytes(rng.randrange(256) for _ in range(16)),
            }
            result = execute(program, dict(env))
            assert result.env["ciphertext"] == encrypt_block(
                env["plaintext"], env["key"]
            )

    def test_block_execution_counts(self):
        result = execute(
            build_aes_program(),
            {"plaintext": b"\x00" * 16, "key": b"\x01" * 16},
        )
        assert result.block_count("keyexp") == 10
        assert result.block_count("round") == 9
        assert result.block_count("final") == 1
        assert result.si_executions == {
            "KEYEXP": 10,
            "SUBBYTES": 10,
            "MIXCOL": 9,
        }

    def test_profile_aes_counts(self):
        cfg = profile_aes(runs=4, seed=1)
        assert cfg.get("round").exec_count == 4 * 9
        assert cfg.edge_probability("round", "round") == pytest.approx(8 / 9)


class TestAESLibraryAndForecast:
    def test_library_sis(self):
        lib = build_aes_library()
        assert set(lib.names()) == {"SUBBYTES", "MIXCOL", "KEYEXP"}
        for name in lib.names():
            assert lib.get(name).software_cycles == AES_SOFTWARE_CYCLES[name]
            assert lib.get(name).max_expected_speedup() > 5

    def test_report_candidates_precede_usage(self):
        report = aes_forecast_report(runs=4, containers=6)
        assert report.candidates
        # Fig. 3: candidates sit upstream of the SI-using round loop.
        for c in report.candidates:
            assert c.block_id in ("setup", "keyexp", "init_ark")

    def test_report_places_forecasts(self):
        report = aes_forecast_report(runs=4, containers=6)
        points = report.annotation.all_points()
        assert points
        for p in points:
            assert p.block_id in report.cfg.block_ids()

    def test_report_dot_marks_candidates(self):
        report = aes_forecast_report(runs=4, containers=6)
        assert "digraph" in report.dot
        assert "shape=box" in report.dot  # at least one highlighted candidate
