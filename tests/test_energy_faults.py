"""Tests for the energy model and container-failure resilience."""

import pytest

from repro.apps.h264 import build_h264_library
from repro.hardware import TABLE1_SPECS, Fabric, ReconfigurationPort
from repro.hardware.energy import (
    EnergyBreakdown,
    EnergyModel,
    extensible_energy,
    rispp_energy,
)
from repro.runtime import RisppRuntime
from repro.sim import EventKind


@pytest.fixture()
def model():
    return EnergyModel()


@pytest.fixture()
def library():
    return build_h264_library()


class TestEnergyModel:
    def test_rotation_energy_scales_with_bitstream(self, model):
        pack = model.rotation_energy_nj(TABLE1_SPECS["Pack"])
        satd = model.rotation_energy_nj(TABLE1_SPECS["SATD"])
        assert pack > satd  # Pack's BlockRAM-row bitstream is bigger

    def test_static_energy_linear(self, model):
        one = model.static_energy_nj(1024, 1_000_000)
        two = model.static_energy_nj(2048, 1_000_000)
        assert two == pytest.approx(2 * one)
        assert model.static_energy_nj(0, 100) == 0.0

    def test_execution_energy(self, model):
        assert model.execution_energy_nj(517, 24) > 0
        assert model.execution_energy_nj(0, 24) == 0.0

    def test_cycles_equivalent_positive(self, model):
        eq = model.rotation_energy_cycles_equivalent(TABLE1_SPECS["Transform"])
        assert eq > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(leakage_nw_per_slice=-1)
        with pytest.raises(ValueError):
            EnergyModel(core_mhz=0)
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.static_energy_nj(-1, 10)
        with pytest.raises(ValueError):
            m.execution_energy_nj(10, -1)
        with pytest.raises(ValueError):
            m.rotation_energy_cycles_equivalent(
                TABLE1_SPECS["Pack"], core_power_nw=0
            )


class TestPlatformEnergy:
    def workload(self, library):
        chosen = {
            name: library.get(name).fastest_molecule()
            for name in ("SATD_4x4", "DCT_4x4", "HT_4x4")
        }
        executions = {"SATD_4x4": 256, "DCT_4x4": 16, "HT_4x4": 1}
        si_cycles = {n: chosen[n].cycles for n in chosen}
        return chosen, executions, si_cycles

    def test_extensible_leaks_over_everything(self, model, library):
        chosen, executions, si_cycles = self.workload(library)
        window = 10_000_000
        full = extensible_energy(
            model, library, chosen, executions, si_cycles, window
        )
        # Doubling the idle window doubles only the static component.
        longer = extensible_energy(
            model, library, chosen, executions, si_cycles, 2 * window
        )
        assert longer.static_nj == pytest.approx(2 * full.static_nj)
        assert longer.dynamic_nj == pytest.approx(full.dynamic_nj)
        assert full.rotation_nj == 0.0

    def test_rispp_beats_extensible_on_long_idle_windows(self, model, library):
        # The paper's §2 argument: dedicated hardware for *all* hot spots
        # leaks while only one is active.  With the container budget sized
        # to one hot spot, RISPP's leakage is a fraction of the ASIP's.
        chosen, executions, si_cycles = self.workload(library)
        window = 1_000_000_000  # 10 s at 100 MHz: one rotation set amortised
        asip = extensible_energy(
            model, library, chosen, executions, si_cycles, window
        )
        rispp = rispp_energy(
            model,
            library,
            container_slices=1024,
            num_containers=6,
            executions=executions,
            si_cycles=si_cycles,
            active_molecules=chosen,
            rotations=["QuadSub", "Pack", "Transform", "SATD", "Load", "Transform"],
            window_cycles=window,
        )
        assert rispp.rotation_nj > 0
        assert rispp.total_nj < asip.total_nj

    def test_breakdown_total(self):
        b = EnergyBreakdown(static_nj=1.0, dynamic_nj=2.0, rotation_nj=3.0)
        assert b.total_nj == 6.0


class TestContainerFailure:
    def test_failed_container_unusable(self, library):
        fabric = Fabric(library.catalogue, 4)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, job.finish_at)
        lost = fabric.fail_container(0)
        assert lost == "Pack"
        assert fabric.available_atoms().count("Pack") == 0
        with pytest.raises(ValueError):
            port.request(fabric, "SATD", 0, now=job.finish_at)

    def test_pending_rotation_dropped_on_failure(self, library):
        fabric = Fabric(library.catalogue, 2)
        port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0)
        fabric.fail_container(0)
        done = port.advance(fabric, job.finish_at)
        assert done == []
        assert not port.is_reserved(0)
        assert fabric.available_atoms().count("Pack") == 0

    def test_runtime_replans_around_failure(self, library):
        # 4 containers: the selected HT molecule holds exactly one Pack,
        # so losing that container forces the software fallback.
        rt = RisppRuntime(library, 4, core_mhz=100.0)
        rt.forecast("HT_4x4", 0, expected=100)
        finish = max(j.finish_at for j in rt.port.jobs)
        assert rt.execute_si("HT_4x4", finish + 1) < 298  # hardware

        # Kill the container holding the (single) Pack atom.
        victim = rt.fabric.containers_holding("Pack")[0]
        rt.fail_container(victim.container_id, finish + 10)
        events = rt.trace.of_kind(EventKind.CONTAINER_FAILED)
        assert events and events[0].detail["lost_atom"] == "Pack"

        # HT falls back to software until the replacement rotation lands
        # in a *different* container.
        assert rt.execute_si("HT_4x4", finish + 20) == 298
        new_jobs = [j for j in rt.port.jobs if j.requested_at >= finish + 10]
        assert new_jobs, "the manager must schedule a replacement rotation"
        assert all(j.container_id != victim.container_id for j in new_jobs)
        done = max(j.finish_at for j in new_jobs)
        assert rt.execute_si("HT_4x4", done + 1) < 298  # recovered

    def test_all_failed_containers_degrade_to_software(self, library):
        rt = RisppRuntime(library, 2, core_mhz=100.0)
        rt.forecast("HT_4x4", 0, expected=10)
        for cid in range(2):
            rt.fail_container(cid, 10)
        finish = max((j.finish_at for j in rt.port.jobs), default=10)
        # Nothing can ever be loaded; execution stays functional in SW.
        assert rt.execute_si("HT_4x4", finish + 1) == 298

    def test_healthy_containers_view(self, library):
        fabric = Fabric(library.catalogue, 3)
        fabric.fail_container(1)
        assert [c.container_id for c in fabric.healthy_containers()] == [0, 2]
        assert all(c.container_id != 1 for c in fabric.empty_containers())
