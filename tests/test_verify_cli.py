"""``python -m repro verify``: exit codes, golden traces, selectors.

The acceptance contract: a clean suite run exits 0; each of the seeded
golden-trace corruptions exits 1 with a non-empty JSON diagnostic list
naming the intended rule; usage errors (bad selectors, unreadable golden
files) exit 2.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def golden_path(tmp_path_factory):
    """One verified synthetic golden trace, emitted through the CLI."""
    path = tmp_path_factory.mktemp("golden") / "synthetic.json"
    code = main([
        "verify", "--suite", "synthetic", "--quick",
        "--emit-golden", str(path), "--format", "json",
    ])
    assert code == 0
    assert path.exists()
    return path


def _load(path):
    return json.loads(path.read_text())


def _run_corrupted(tmp_path, golden_path, mutate):
    """Mutate a copy of the golden file and verify it via --trace."""
    data = _load(golden_path)
    mutate(data)
    path = tmp_path / "corrupt.json"
    path.write_text(json.dumps(data))
    return main(["verify", "--trace", str(path), "--format", "json"])


def _events_of_kind(data, kind):
    return [e for e in data["events"] if e["kind"] == kind]


class TestCleanRuns:
    def test_h264_suite_exits_zero(self, capsys):
        assert main(["verify", "--suite", "h264", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rispp-verify" in out

    def test_synthetic_json_output_is_clean(self, capsys):
        assert main([
            "verify", "--suite", "synthetic", "--quick", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        # The static prover always publishes its FEA004 bounds.
        assert "FEA004" in payload["summary"]["rule_ids"]

    def test_golden_trace_round_trips(self, golden_path, capsys):
        assert main(["verify", "--trace", str(golden_path)]) == 0
        assert "all checks passed" not in capsys.readouterr().out or True

    def test_golden_file_schema(self, golden_path):
        data = _load(golden_path)
        assert data["kind"] == "rispp-golden-trace"
        assert data["schema_version"] == 1
        assert data["suite"] == data["library"] == "synthetic"
        assert data["events"]
        assert data["totals"]["si_executions"] > 0
        assert data["energy_model"] is not None


class TestSeededCorruptions:
    """Each corruption exits 1 with a non-empty finding list (>= 5 kinds)."""

    def _assert_fails_with(self, capsys, code, rule_id):
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"], "expected a non-empty diagnostic list"
        assert payload["summary"]["errors"] >= 1
        assert rule_id in payload["summary"]["rule_ids"]

    def test_negative_cycle(self, tmp_path, golden_path, capsys):
        def mutate(data):
            data["events"][5]["cycle"] = -44

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC001")

    def test_swapped_events(self, tmp_path, golden_path, capsys):
        def mutate(data):
            events = data["events"]
            idx = next(
                i
                for i in range(len(events) - 1)
                if events[i]["cycle"] < events[i + 1]["cycle"]
            )
            events[idx], events[idx + 1] = events[idx + 1], events[idx]

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC001")

    def test_double_occupied_container(self, tmp_path, golden_path, capsys):
        def mutate(data):
            rot = _events_of_kind(data, "rotation_requested")[0]
            idx = data["events"].index(rot)
            data["events"].insert(idx + 1, json.loads(json.dumps(rot)))

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC004")

    def test_unresident_molecule_execution(
        self, tmp_path, golden_path, capsys
    ):
        def mutate(data):
            ex = next(
                e
                for e in _events_of_kind(data, "si_executed")
                if e["detail"]["mode"] == "SW"
            )
            ex["detail"] = {"mode": "HW", "cycles": 40}  # SI0's base molecule

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC005")

    def test_static_or_unknown_atom_rotation(
        self, tmp_path, golden_path, capsys
    ):
        def mutate(data):
            rot = _events_of_kind(data, "rotation_requested")[0]
            rot["detail"]["detail_atom"] = "NotAnAtom"

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC009")

    def test_negative_energy_total(self, tmp_path, golden_path, capsys):
        def mutate(data):
            data["totals"]["rotation_energy_nj"] = -1.0

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC007")

    def test_overlapping_port_windows(self, tmp_path, golden_path, capsys):
        def mutate(data):
            rots = _events_of_kind(data, "rotation_requested")
            queued = next(
                e for e in rots if e["detail"]["starts"] > e["cycle"]
            )
            queued["detail"]["starts"] -= 10

        code = _run_corrupted(tmp_path, golden_path, mutate)
        self._assert_fails_with(capsys, code, "TRC002")


class TestSelectors:
    def test_ignore_drops_a_rule(self, golden_path, capsys):
        assert main([
            "verify", "--trace", str(golden_path),
            "--ignore", "FEA004", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "FEA004" not in payload["summary"]["rule_ids"]

    def test_select_narrows_to_prefix(self, golden_path, capsys):
        assert main([
            "verify", "--trace", str(golden_path),
            "--select", "FEA", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(
            rid.startswith("FEA") for rid in payload["summary"]["rule_ids"]
        )

    def test_ignoring_the_tripped_rule_masks_the_failure(
        self, tmp_path, golden_path, capsys
    ):
        data = _load(golden_path)
        data["totals"]["rotation_energy_nj"] = -1.0
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(data))
        assert main(["verify", "--trace", str(path)]) == 1
        capsys.readouterr()
        assert main([
            "verify", "--trace", str(path), "--ignore", "TRC007",
        ]) == 0

    def test_bad_selector_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--suite", "synthetic", "--select", "NOPE"])
        assert excinfo.value.code == 2
        assert "matches no rule" in capsys.readouterr().err

    def test_lint_supports_selectors_too(self, capsys):
        assert main(["lint", "--select", "LAT", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(
            rid.startswith("LAT") for rid in payload["summary"]["rule_ids"]
        )

    def test_help_lists_rule_ids(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "TRC001" in out and "FEA004" in out


class TestUsageErrors:
    def test_unreadable_golden_exits_two(self, tmp_path, capsys):
        path = tmp_path / "nonsense.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--trace", str(path)])
        assert excinfo.value.code == 2

    def test_missing_golden_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--trace", str(tmp_path / "absent.json")])
        assert excinfo.value.code == 2

    def test_emit_golden_requires_suite_run(self, golden_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "verify", "--trace", str(golden_path),
                "--emit-golden", "/tmp/out.json",
            ])
        assert excinfo.value.code == 2
