"""Tests for the quantizing encoder: reconstruction and rate-distortion."""

import numpy as np
import pytest

from repro.apps.h264 import EncoderPipeline, macroblock_stream
from repro.runtime import ForecastMonitor


@pytest.fixture(scope="module")
def macroblock():
    return macroblock_stream(1, seed=9)[0]


class TestQuantizingEncoder:
    def test_no_qp_means_no_reconstruction(self, macroblock):
        out = EncoderPipeline().encode_macroblock(macroblock)
        assert out.reconstructed_luma is None
        assert out.luma_levels is None
        with pytest.raises(ValueError):
            out.luma_psnr(macroblock.luma)

    def test_qp_validated(self):
        with pytest.raises(ValueError):
            EncoderPipeline(qp=52)
        with pytest.raises(ValueError):
            EncoderPipeline(qp=-1)

    def test_reconstruction_shape_and_range(self, macroblock):
        out = EncoderPipeline(qp=20).encode_macroblock(macroblock)
        rec = out.reconstructed_luma
        assert rec.shape == (16, 16)
        assert rec.min() >= 0 and rec.max() <= 255
        assert len(out.luma_levels) == 4
        assert out.luma_levels[0][0].shape == (4, 4)

    def test_low_qp_reconstruction_is_nearly_exact(self, macroblock):
        out = EncoderPipeline(qp=0).encode_macroblock(macroblock)
        err = np.abs(out.reconstructed_luma - macroblock.luma).max()
        assert err <= 2

    def test_psnr_decreases_with_qp(self, macroblock):
        psnrs = []
        for qp in (0, 12, 24, 36, 48):
            out = EncoderPipeline(qp=qp).encode_macroblock(macroblock)
            psnrs.append(out.luma_psnr(macroblock.luma))
        assert psnrs == sorted(psnrs, reverse=True)
        assert psnrs[0] > 45  # near-lossless at QP 0
        assert psnrs[-1] < psnrs[0] - 10

    def test_levels_sparser_at_high_qp(self, macroblock):
        def nonzero_levels(qp):
            out = EncoderPipeline(qp=qp).encode_macroblock(macroblock)
            return sum(
                int(np.count_nonzero(out.luma_levels[i][j]))
                for i in range(4)
                for j in range(4)
            )

        # Fewer non-zero levels = fewer bits: the rate side of RD.
        assert nonzero_levels(40) < nonzero_levels(8)

    def test_si_counts_unchanged_by_quantization(self, macroblock):
        plain = EncoderPipeline().encode_macroblock(macroblock)
        quant = EncoderPipeline(qp=24).encode_macroblock(macroblock)
        assert plain.si_counts == quant.si_counts


class TestMonitorHitProbability:
    def test_hit_probability_tracks_misses(self):
        m = ForecastMonitor()
        # Window 1: forecast fires, SI executes -> hit.
        m.forecast_fired("A", "S", 10.0, now=0)
        m.si_executed("A", "S")
        m.forecast_ended("A", "S", now=10)
        # Window 2: forecast fires, nothing executes -> miss.
        m.forecast_fired("A", "S", 10.0, now=20)
        m.forecast_ended("A", "S", now=30)
        stats = m.stats("A", "S")
        assert stats.windows == 2
        assert stats.hit_windows == 1
        assert stats.hit_probability() == pytest.approx(0.5)

    def test_probability_defaults_to_one(self):
        m = ForecastMonitor()
        m.forecast_fired("A", "S", 5.0, now=0)
        assert m.stats("A", "S").hit_probability() == 1.0
