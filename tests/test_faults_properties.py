"""Hypothesis chaos property: recovery holds under *any* fault schedule.

For arbitrary generated :class:`FaultSchedule`\\ s (explicit event lists,
not just seeded draws) driven through the synthetic SI stream:

* the run always completes, with exactly the fault-free execution count
  (no SI call is ever lost — corrupted hardware degrades to software,
  never to a wrong or missing result);
* the trace replays clean through the reference machine, including the
  quarantine/repair lifecycle rules;
* every observed repair (MTTR) stays within the static repair bound;
* once the campaign settles, no corruption or quarantine episode stays
  open — every detected fault was repaired or retired.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_runtime
from repro.bench.suites import build_synthetic_library, run_si_stream
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    static_repair_bound,
)

CONTAINERS = 5
ROUNDS = 4
FORECASTS = [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)]
BLOCKS = [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)]

_LIBRARY = build_synthetic_library()


def _run(injector=None):
    return run_si_stream(
        _LIBRARY,
        FORECASTS,
        BLOCKS,
        containers=CONTAINERS,
        block_rounds=ROUNDS,
        optimize=True,
        fault_injector=injector,
    )


_BASELINE = _run()
_HORIZON = _BASELINE.trace.last_cycle


fault_events = st.builds(
    FaultEvent,
    cycle=st.integers(min_value=0, max_value=_HORIZON),
    kind=st.sampled_from(list(FaultKind)),
    container=st.integers(min_value=0, max_value=CONTAINERS - 1),
)

schedules = st.lists(fault_events, max_size=12).map(FaultSchedule)


@given(
    schedule=schedules,
    scrub_period=st.sampled_from([1_000, 10_000, 50_000]),
    max_retries=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_chaos_recovery_properties(schedule, scrub_period, max_retries):
    injector = FaultInjector(
        schedule,
        scrub_period=scrub_period,
        max_retries=max_retries,
        backoff_cycles=1_000,
    )
    runtime = _run(injector)
    bound = static_repair_bound(
        _LIBRARY,
        CONTAINERS,
        scrub_period=scrub_period,
        max_retries=max_retries,
        backoff_cycles=1_000,
    )

    # Settle the campaign: drain the port, the scrubber and the retries.
    now = max(runtime.trace.last_cycle, _HORIZON)
    for _ in range(8):
        now += bound + scrub_period
        runtime.advance(now)
        if runtime.port.is_idle() and injector.open_episodes() == 0:
            break
    injector.finalize(now)

    # Completion: every SI call executed, same count as fault-free.
    assert runtime.stats.si_executions == _BASELINE.stats.si_executions

    # Every detected fault was eventually repaired or retired.
    assert injector.open_episodes() == 0
    stats = injector.stats
    assert stats.containers_quarantined == (
        stats.containers_repaired
        + (stats.containers_quarantined - stats.containers_repaired)
    )

    # Observed MTTR within the static bound.
    assert stats.mttr_cycles_max <= bound
    assert stats.mttr_cycles() <= bound

    # The trace replays clean through the reference machine.
    report = verify_runtime(runtime, subject="chaos-fuzz")
    assert report.clean(), report.render_text()


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_generated_schedules_are_reproducible(seed):
    a = FaultSchedule.generate(
        seed=seed, horizon=_HORIZON, containers=CONTAINERS, rate=30.0
    )
    b = FaultSchedule.generate(
        seed=seed, horizon=_HORIZON, containers=CONTAINERS, rate=30.0
    )
    assert list(a) == list(b)
