"""Regressions for the run-time bugfixes and the hot-path caches.

Covers the three fixed bugs:

* ``_replan`` clamped every monitor-tuned weight up to 1.0, so an SI the
  monitor had learned was cold kept hogging Atom Containers;
* ``ReconfigurationPort`` kept a phantom ``busy_until`` reservation for
  unstarted jobs whose target container had failed, delaying every later
  rotation behind a bitstream write that would never happen;
* ``Trace.record`` accepted negative/out-of-order cycles (see
  ``test_trace_contract``).

And the optimization layer: the fabric generation counter, the
``best_available`` memo, the replan skip cache and the ``advance`` fast
path must all be *observably invisible* — the optimized runtime emits the
exact trace of the ``optimize=False`` baseline.
"""

import pytest

from repro.apps.h264 import build_h264_library
from repro.bench import H264_MACROBLOCK_CALLS, run_si_stream, trace_signature
from repro.core import select_greedy
from repro.hardware import Fabric, ReconfigurationPort
from repro.runtime import RisppRuntime


@pytest.fixture()
def library():
    return build_h264_library()


class TestWeightClampFix:
    def test_tuned_weight_below_one_reaches_selection(self, library):
        """The monitor's fine-tuned weight is used as-is, not clamped to 1."""
        seen = {}

        def spy(lib, requests, budget, *, loaded=None):
            for r in requests:
                seen[r.si.name] = r.expected_executions
            return select_greedy(lib, requests, budget, loaded=loaded)

        rt = RisppRuntime(library, 6, core_mhz=100.0, selection=spy)
        rt.forecast("DCT_4x4", 0, expected=0.25)
        assert seen["DCT_4x4"] == pytest.approx(0.25)

    def test_cold_si_loses_containers_to_hot_one(self, library, mini_library):
        """An SI the monitor learned is never executed frees its containers.

        HT fires with a large compile-time expectation but never executes;
        the smoothed estimate decays toward zero across re-firings.  Once
        its weight falls below SATD's, selection must stop granting HT the
        containers — with the old ``max(weight, 1.0)`` clamp the decayed
        estimate was invisible and HT kept its Atoms forever.
        """
        rt = RisppRuntime(mini_library, 3, core_mhz=100.0)
        now = 0
        rt.forecast("SATD", now, expected=4.0)
        rt.forecast("HT", now, expected=400.0)
        # HT wins the three containers at first: its weight dwarfs SATD's.
        now = max(j.finish_at for j in rt.port.jobs) + 1
        rt.advance(now)
        assert rt.si_mode("HT", now) != "SW"

        # Re-fire HT's forecast repeatedly with zero executions in between:
        # smoothing 0.5 halves the estimate each window (400 -> ... -> <2).
        for _ in range(9):
            now += 10_000
            rt.forecast("HT", now, expected=400.0)
            now += 10_000
            rt.execute_si("SATD", now)
        now = max(j.finish_at for j in rt.port.jobs) + 1
        rt.advance(now)

        # The decayed weight must have cost HT its exclusive Atom: SATD
        # now runs in hardware (its molecule needs the SATD atom kind,
        # which only fits if HT's selection shrank).
        assert rt.si_mode("SATD", now) != "SW"

    def test_zero_weight_forecast_selects_nothing(self, mini_library):
        """Weight 0 means zero benefit — no containers, software fallback."""
        rt = RisppRuntime(mini_library, 3, core_mhz=100.0)
        rt.forecast("HT", 0, expected=0.0)
        assert rt.port.total_rotations() == 0
        assert rt.execute_si("HT", 10) == 298  # software cycles


class TestPortPhantomReservationFix:
    def _three_queued(self, catalogue):
        fabric = Fabric(catalogue, 4)
        port = ReconfigurationPort(catalogue, core_mhz=100.0)
        j0 = port.request(fabric, "Pack", 0, now=0)
        j1 = port.request(fabric, "Transform", 1, now=0)
        j2 = port.request(fabric, "SATD", 2, now=0)
        assert (j0.started_at, j1.started_at) == (0, j0.finish_at)
        return fabric, port, j0, j1, j2

    def test_unstarted_jobs_pull_forward_after_failure(self, mini_catalogue):
        fabric, port, j0, j1, j2 = self._three_queued(mini_catalogue)
        port.advance(fabric, 10)  # j0 in flight, j1/j2 queued
        phantom_finish = j2.finish_at

        fabric.fail_container(1)  # j1's write will never happen
        port.advance(fabric, 10)

        assert not port.is_reserved(1)
        assert j2.started_at == j0.finish_at  # pulled into j1's old slot
        assert j2.finish_at < phantom_finish
        assert port.busy_until == j2.finish_at

    def test_next_rotation_starts_earlier_than_with_phantom(
        self, mini_catalogue
    ):
        fabric, port, j0, j1, j2 = self._three_queued(mini_catalogue)
        port.advance(fabric, 10)
        phantom_busy = port.busy_until

        fabric.fail_container(1)
        port.advance(fabric, 10)

        j3 = port.request(fabric, "Pack", 3, now=10)
        assert j3.started_at == j2.finish_at
        assert j3.started_at < phantom_busy

    def test_in_flight_job_keeps_its_schedule(self, mini_catalogue):
        fabric, port, j0, j1, j2 = self._three_queued(mini_catalogue)
        port.advance(fabric, 10)  # j0 started
        fabric.fail_container(2)  # kill the *last* queued job's target
        port.advance(fabric, 10)
        assert (j0.started_at, j0.finish_at) == (0, j0.finish_at)
        assert j1.started_at == j0.finish_at  # unchanged: no gap before it
        assert port.busy_until == j1.finish_at

    def test_runtime_fault_injection_shrinks_port_backlog(self, library):
        """End to end: failing a queued container frees the serial port."""
        rt = RisppRuntime(library, 6, core_mhz=100.0)
        rt.forecast("SATD_4x4", 0, expected=256.0)
        queued = [j for j in rt.port.pending_jobs() if not j.started]
        assert len(queued) >= 2, "scenario needs a rotation backlog"
        phantom_busy = rt.port.busy_until

        victim = queued[0].container_id
        rt.fail_container(victim, 1)

        assert rt.port.busy_until < phantom_busy
        survivors = [
            j for j in rt.port.pending_jobs() if j.container_id != victim
        ]
        assert all(j.finish_at <= phantom_busy for j in survivors)


class TestFabricGenerationCache:
    def test_generation_tracks_availability_changes(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        g0 = fabric.generation
        job = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, 0)  # start: eviction + begin_rotation
        g1 = fabric.generation
        assert g1 > g0
        port.advance(fabric, job.finish_at)  # completion
        g2 = fabric.generation
        assert g2 > g1
        fabric.fail_container(1)
        assert fabric.generation > g2

    def test_touch_does_not_invalidate(self, mini_catalogue, mini_library):
        fabric = Fabric(mini_catalogue, 2)
        port = ReconfigurationPort(mini_catalogue, core_mhz=100.0)
        job = port.request(fabric, "Pack", 0, now=0)
        port.advance(fabric, job.finish_at)
        gen = fabric.generation
        before = fabric.available_atoms()
        fabric.touch_atoms(before, now=job.finish_at + 5)
        assert fabric.generation == gen
        # Same generation -> the memoized molecule is returned as-is.
        assert fabric.available_atoms() is before

    def test_cache_disabled_recomputes(self, mini_catalogue):
        fabric = Fabric(mini_catalogue, 2, cache=False)
        a, b = fabric.available_atoms(), fabric.available_atoms()
        assert a == b and a is not b


class TestOptimizedRuntimeEquivalence:
    def test_h264_stream_traces_identical(self, library):
        forecasts = [
            ("SATD_4x4", 256.0), ("DCT_4x4", 24.0),
            ("HT_4x4", 1.0), ("HT_2x2", 2.0),
        ]

        def run(optimize):
            return run_si_stream(
                library, forecasts, list(H264_MACROBLOCK_CALLS),
                containers=6, block_rounds=3, optimize=optimize,
            )

        base, fast = run(False), run(True)
        assert trace_signature(base.trace) == trace_signature(fast.trace)
        assert base.stats.si_cycles == fast.stats.si_cycles
        assert base.stats.hw_executions == fast.stats.hw_executions
        assert base.stats.rotations_requested == fast.stats.rotations_requested
        # The caches actually engaged: redundant replans were skipped...
        assert fast.stats.replans_skipped > 0
        assert base.stats.replans_skipped == 0
        # ...without changing how many effective replans happened.
        assert (
            base.stats.replans
            == fast.stats.replans + fast.stats.replans_skipped
        )

    def test_plan_cache_invalidated_by_failure(self, mini_library):
        """A container failure must force a real replan, not a skip."""
        rt = RisppRuntime(mini_library, 3, core_mhz=100.0)
        rt.forecast("HT", 0, expected=10.0)
        now = max(j.finish_at for j in rt.port.jobs) + 1
        rt.advance(now)
        # Prime the skip cache: an identical no-op replan round.
        rt.forecast("HT", now, expected=10.0)
        replans = rt.stats.replans
        rt.fail_container(0, now + 1)
        assert rt.stats.replans > replans  # not skipped

    def test_advance_fast_path_when_port_idle(self, mini_library):
        rt = RisppRuntime(mini_library, 3, core_mhz=100.0)
        rt.forecast("HT", 0, expected=10.0)
        done = max(j.finish_at for j in rt.port.jobs)
        rt.advance(done)
        assert rt.port.is_idle()
        events = len(rt.trace)
        rt.advance(done + 1_000_000)  # fast path: nothing can change
        assert len(rt.trace) == events
        assert rt.si_mode("HT", done + 1_000_000) != "SW"
