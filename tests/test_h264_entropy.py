"""Tests for the entropy-coding substrate (zigzag, Exp-Golomb, run-level)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.h264.entropy import (
    BitReader,
    BitWriter,
    ZIGZAG_4x4,
    block_bits,
    decode_block,
    encode_block,
    inverse_zigzag,
    macroblock_bits,
    read_se,
    read_ue,
    se_bits,
    ue_bits,
    write_se,
    write_ue,
    zigzag_scan,
)

level_blocks = arrays(np.int64, (4, 4), elements=st.integers(-200, 200))


class TestBits:
    def test_writer_reader_roundtrip(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bit(1)
        r = BitReader(w.bits)
        assert r.read_bits(4) == 0b1011
        assert r.read_bit() == 1
        assert r.exhausted()

    def test_writer_validation(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_reader_exhaustion(self):
        r = BitReader([1])
        r.read_bit()
        with pytest.raises(ValueError):
            r.read_bit()


class TestExpGolomb:
    def test_known_ue_codes(self):
        # Standard table: 0->1, 1->010, 2->011, 3->00100 ...
        expect = {0: [1], 1: [0, 1, 0], 2: [0, 1, 1], 3: [0, 0, 1, 0, 0]}
        for value, bits in expect.items():
            w = BitWriter()
            write_ue(w, value)
            assert w.bits == bits

    @given(st.integers(0, 100_000))
    def test_ue_roundtrip(self, value):
        w = BitWriter()
        write_ue(w, value)
        assert read_ue(BitReader(w.bits)) == value
        assert len(w) == ue_bits(value)

    @given(st.integers(-50_000, 50_000))
    def test_se_roundtrip(self, value):
        w = BitWriter()
        write_se(w, value)
        assert read_se(BitReader(w.bits)) == value
        assert len(w) == se_bits(value)

    def test_ue_rejects_negative(self):
        with pytest.raises(ValueError):
            write_ue(BitWriter(), -1)
        with pytest.raises(ValueError):
            ue_bits(-1)

    @given(st.integers(0, 10_000))
    def test_code_length_monotone(self, value):
        assert ue_bits(value + 1) >= ue_bits(value)


class TestZigzag:
    def test_scan_order_covers_block(self):
        assert len(set(ZIGZAG_4x4)) == 16

    def test_scan_starts_at_dc(self):
        block = np.zeros((4, 4), dtype=np.int64)
        block[0, 0] = 9
        assert zigzag_scan(block)[0] == 9

    @given(level_blocks)
    def test_scan_roundtrip(self, block):
        assert (inverse_zigzag(zigzag_scan(block)) == block).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            zigzag_scan(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            inverse_zigzag([0] * 5)


class TestRunLevel:
    @given(level_blocks)
    @settings(max_examples=60)
    def test_block_roundtrip(self, block):
        bits = encode_block(block)
        decoded = decode_block(BitReader(bits.bits))
        assert (decoded == block).all()

    @given(level_blocks)
    @settings(max_examples=60)
    def test_block_bits_matches_encoding(self, block):
        assert block_bits(block) == len(encode_block(block))

    def test_zero_block_is_cheapest(self):
        zero_cost = block_bits(np.zeros((4, 4), dtype=np.int64))
        assert zero_cost == 1  # ue(0)
        busy = np.ones((4, 4), dtype=np.int64)
        assert block_bits(busy) > zero_cost

    def test_sparser_blocks_cost_fewer_bits(self):
        dense = np.full((4, 4), 3, dtype=np.int64)
        sparse = np.zeros((4, 4), dtype=np.int64)
        sparse[0, 0] = 3
        assert block_bits(sparse) < block_bits(dense)

    def test_macroblock_bits(self):
        grid = [[np.zeros((4, 4), dtype=np.int64)] * 4 for _ in range(4)]
        assert macroblock_bits(grid) == 16  # 16 empty blocks at 1 bit

    def test_corrupt_stream_rejected(self):
        # Claim 17 coefficients: impossible for a 4x4 block.
        w = BitWriter()
        write_ue(w, 17)
        with pytest.raises(ValueError):
            decode_block(BitReader(w.bits))

    def test_rate_decreases_with_qp(self):
        # Tie-in with TQ: higher QP -> fewer bits for the same content.
        from repro.apps.h264 import dct_4x4
        from repro.apps.h264.quant import quantize_4x4

        rng = np.random.default_rng(11)
        block = rng.integers(-128, 128, (4, 4))
        w = dct_4x4(block)
        bits = [block_bits(quantize_4x4(w, qp)) for qp in (0, 12, 24, 36)]
        assert bits == sorted(bits, reverse=True)
