"""The closed loop: compile-time Forecast points driving run-time rotation.

Everything before this module handles one half of RISPP: the forecast
pipeline (§4) produces a :class:`~repro.forecast.annotate.ForecastAnnotation`,
and the run-time manager (§5) reacts to ``forecast``/``execute_si``
calls.  :func:`run_annotated_program` welds them together exactly as the
paper's platform does: an IR program executes block by block; entering a
block that carries an FC Block fires its Forecast points at the manager
(with the compile-time initial values, fine-tuned online by the
monitor); SI calls execute at whatever molecule the fabric currently
offers; plain block cycles advance the clock.

:func:`compile_and_run` is the one-call version: profile the program,
insert the FCs, then execute with rotation — the complete RISPP flow.
Before executing, it runs rispp-lint (:mod:`repro.analysis`) over the
compile-time bundle: ERROR diagnostics abort the run (:class:`LintError`),
WARNINGs surface as Python warnings.  Pass ``lint=False`` to skip.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..cfg.graph import ControlFlowGraph
from ..core.library import SILibrary
from ..forecast import ForecastAnnotation, ForecastDecisionFunction, run_forecast_pipeline
from .executor import profile_program
from .ir import Branch, Exit, Jump, Program

if TYPE_CHECKING:  # runtime.manager imports sim.trace; avoid the cycle
    from ..analysis import DiagnosticReport
    from ..runtime.manager import RisppRuntime


def _enforce(report: "DiagnosticReport") -> None:
    """Fail fast on lint ERRORs; surface WARNINGs without stopping."""
    report.raise_on_error()
    for finding in report.warnings():
        warnings.warn(finding.render(), stacklevel=3)


@dataclass
class AnnotatedRunResult:
    """What one annotated execution produced."""

    total_cycles: int
    core_cycles: int
    si_cycles: int
    block_trace: list[str]
    env: dict
    forecasts_fired: int = 0
    si_executions: dict[str, int] = field(default_factory=dict)

    def si_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.si_cycles / self.total_cycles


def run_annotated_program(
    program: Program,
    annotation: ForecastAnnotation,
    runtime: "RisppRuntime",
    env: dict | None = None,
    *,
    task: str = "main",
    start_cycle: int = 0,
    max_blocks: int = 1_000_000,
    lint: bool = True,
) -> AnnotatedRunResult:
    """Execute ``program`` on the RISPP runtime, honouring the FC blocks.

    The clock advances by each block's plain cycles plus the *actual*
    latency of every SI call (software, partial or full hardware —
    whatever the containers hold when the call happens).
    """
    program.validate()
    annotation.validate_against(program.to_cfg())
    if lint:
        from ..analysis import lint_forecast

        _enforce(
            lint_forecast(
                program.to_cfg(), annotation, subject=f"run:{task}"
            )
        )
    env = env if env is not None else {}
    now = start_cycle
    core_cycles = 0
    si_cycles = 0
    forecasts = 0
    si_counts: dict[str, int] = {}
    trace: list[str] = []
    current = program.entry
    for _ in range(max_blocks):
        block = program.blocks[current]
        trace.append(current)
        # Entering an FC block invokes the run-time system (§4: FCs are
        # combined per block "to ease the run-time computation effort").
        for point in annotation.forecasts_at(current):
            runtime.forecast(
                point.si_name,
                now,
                task=task,
                expected=point.expected_executions,
            )
            forecasts += 1
        core_cycles += block.cycles
        now += block.cycles
        for si_name, calls in block.si_calls.items():
            for _call in range(calls):
                cycles = runtime.execute_si(si_name, now, task=task)
                si_cycles += cycles
                now += cycles
                si_counts[si_name] = si_counts.get(si_name, 0) + 1
        if block.action is not None:
            block.action(env)
        term = block.terminator
        if isinstance(term, Exit):
            return AnnotatedRunResult(
                total_cycles=now - start_cycle,
                core_cycles=core_cycles,
                si_cycles=si_cycles,
                block_trace=trace,
                env=env,
                forecasts_fired=forecasts,
                si_executions=si_counts,
            )
        if isinstance(term, Jump):
            current = term.target
        elif isinstance(term, Branch):
            current = term.if_true if term.condition(env) else term.if_false
        else:  # pragma: no cover - exhaustive over Terminator
            raise TypeError(f"unknown terminator {term!r}")
    raise RuntimeError(f"program did not exit within {max_blocks} blocks")


@dataclass
class CompileAndRunResult:
    """Artifacts of the complete compile-then-run flow."""

    cfg: ControlFlowGraph
    annotation: ForecastAnnotation
    runtime: "RisppRuntime"
    result: AnnotatedRunResult


def compile_and_run(
    program: Program,
    library: SILibrary,
    fdfs: dict[str, ForecastDecisionFunction],
    *,
    containers: int,
    profile_env_factory=None,
    profile_runs: int = 4,
    run_env: dict | None = None,
    distance: str = "expected",
    core_mhz: float = 100.0,
    lint: bool = True,
    optimize: bool = True,
    energy_model=None,
    fault_injector=None,
    metrics=None,
    backend=None,
    wrap=None,
) -> CompileAndRunResult:
    """The full RISPP flow on one program.

    1. Profile the program (§1's step i);
    2. Insert Forecast points (§4: candidates, trimming, placement);
    3. Lint the compile-time bundle (fail fast on ERROR diagnostics);
    4. Execute with the run-time manager rotating Atoms (§5).
    """
    from ..runtime.manager import RisppRuntime

    cfg, _results = profile_program(
        program, env_factory=profile_env_factory, runs=profile_runs
    )
    annotation = run_forecast_pipeline(
        cfg, library, fdfs, containers, distance=distance
    )
    if lint:
        from ..analysis import lint_flow

        # containers stays un-checked here on purpose: running a library
        # on fewer (even zero) containers is a valid pure-SW baseline.
        _enforce(lint_flow(cfg, library, annotation, fdfs=fdfs, subject="flow"))
    runtime = RisppRuntime(
        library, containers, core_mhz=core_mhz, optimize=optimize,
        energy_model=energy_model, faults=fault_injector, metrics=metrics,
        backend=backend,
    )
    if wrap is not None:
        # Recovery hook (repro.recovery): wraps the freshly built runtime
        # so the annotated execution is journaled and resumable.
        runtime = wrap(runtime)
    result = run_annotated_program(
        program, annotation, runtime, dict(run_env or {}), lint=False
    )
    return CompileAndRunResult(
        cfg=cfg, annotation=annotation, runtime=runtime, result=result
    )
