"""Event trace: the machine-readable form of the Fig. 6 timeline.

Every interesting run-time event — forecasts, container reallocations,
rotation starts/completions, SI executions and their SW/HW mode switches
— is recorded as an :class:`Event`.  Benches and tests assert directly on
the event sequence; :meth:`Trace.render_timeline` prints the
human-readable scenario view.

The trace enforces its contract at append time: event cycles are
non-negative and non-decreasing.  Concurrent tasks interleave through one
shared clock (the multi-task simulator always steps the least-advanced
task), so a cycle smaller than the previous event's is a scheduling bug
upstream, not a legal relaxation — :meth:`Trace.record` raises rather
than silently distorting the timeline benches measure.

Event details can be built *lazily*: the run-time manager's hot path
records thousands of events per run, and for most of them the detail
dict is never read.  :meth:`Trace.record_lazy` accepts a zero-argument
factory that is resolved (once) on first access to :attr:`Event.detail`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventKind(enum.Enum):
    """Run-time event categories."""

    FORECAST = "forecast"
    FORECAST_END = "forecast_end"
    REALLOCATION = "reallocation"
    ROTATION_REQUESTED = "rotation_requested"
    ROTATION_STARTED = "rotation_started"
    ROTATION_COMPLETED = "rotation_completed"
    SI_EXECUTED = "si_executed"
    SI_MODE_SWITCH = "si_mode_switch"
    TASK_STEP = "task_step"
    CONTAINER_FAILED = "container_failed"
    FAULT_INJECTED = "fault_injected"
    FAULT_DETECTED = "fault_detected"
    CONTAINER_QUARANTINED = "container_quarantined"
    CONTAINER_REPAIRED = "container_repaired"
    ROTATION_RETRIED = "rotation_retried"


class Event:
    """One timestamped run-time event.

    ``detail`` may be stored as a zero-argument factory; it is resolved
    and cached the first time it is read, so unread details cost nothing
    beyond holding the factory.
    """

    __slots__ = ("cycle", "kind", "task", "si", "_detail")

    def __init__(
        self,
        cycle: int,
        kind: EventKind,
        task: str = "",
        si: str = "",
        detail: dict | Callable[[], dict] | None = None,
    ):
        self.cycle = cycle
        self.kind = kind
        self.task = task
        self.si = si
        self._detail = detail

    @property
    def detail(self) -> dict:
        d = self._detail
        if callable(d):
            d = d()
            self._detail = d
        elif d is None:
            d = {}
            self._detail = d
        return d

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.cycle == other.cycle
            and self.kind == other.kind
            and self.task == other.task
            and self.si == other.si
            and self.detail == other.detail
        )

    # Events carry a mutable detail dict and were never hashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        bits = [f"@{self.cycle}", self.kind.value]
        if self.task:
            bits.append(f"task={self.task}")
        if self.si:
            bits.append(f"si={self.si}")
        if self.detail:
            bits.append(str(self.detail))
        return f"Event({', '.join(bits)})"


class Trace:
    """An append-only, time-ordered event log.

    Appends must carry non-negative, non-decreasing cycles; equal cycles
    are fine (many events legitimately share one cycle — a forecast and
    the rotations it requests, a mode switch and the execution it
    annotates).
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._last_cycle = 0

    def record(
        self,
        cycle: int,
        kind: EventKind,
        *,
        task: str = "",
        si: str = "",
        **detail: Any,
    ) -> Event:
        return self._append(Event(cycle, kind, task, si, detail or None))

    def record_lazy(
        self,
        cycle: int,
        kind: EventKind,
        detail_factory: Callable[[], dict],
        *,
        task: str = "",
        si: str = "",
    ) -> Event:
        """Like :meth:`record`, but the detail dict is built on demand."""
        return self._append(Event(cycle, kind, task, si, detail_factory))

    def _append(self, event: Event) -> Event:
        cycle = event.cycle
        if cycle < 0:
            raise ValueError("event cycle cannot be negative")
        if cycle < self._last_cycle:
            raise ValueError(
                f"out-of-order event: cycle {cycle} after {self._last_cycle} "
                f"({event.kind.value})"
            )
        self._last_cycle = cycle
        self.events.append(event)
        return event

    @property
    def last_cycle(self) -> int:
        """Cycle of the most recent event (0 when empty)."""
        return self._last_cycle

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        # Matches on the slot attributes only — never touches (and thus
        # never materializes) a lazy ``Event.detail``.
        return [e for e in self.events if e.kind is kind]

    def for_task(self, task: str) -> list[Event]:
        return [e for e in self.events if e.task == task]

    def for_si(self, si: str) -> list[Event]:
        return [e for e in self.events if e.si == si]

    def first(self, kind: EventKind, **detail_filter) -> Event | None:
        """Earliest event of ``kind`` whose detail matches the filter.

        Without a detail filter the scan stays on the slot attributes,
        so no lazy detail factory is ever resolved; with one, only the
        details of same-kind events up to the first match materialize.
        """
        if not detail_filter:
            for e in self.events:
                if e.kind is kind:
                    return e
            return None
        items = tuple(detail_filter.items())
        for e in self.events:
            if e.kind is not kind:
                continue
            if all(e.detail.get(k) == v for k, v in items):
                return e
        return None

    def render_timeline(self, *, max_events: int | None = None) -> str:
        """A readable cycle-ordered log (the Fig. 6 presentation)."""
        lines = []
        events = self.events if max_events is None else self.events[:max_events]
        for e in events:
            parts = [f"{e.cycle:>10}", f"{e.kind.value:<20}"]
            if e.task:
                parts.append(f"{e.task:<8}")
            if e.si:
                parts.append(f"{e.si:<10}")
            if e.detail:
                parts.append(
                    " ".join(f"{k}={v}" for k, v in sorted(e.detail.items()))
                )
            lines.append(" ".join(parts))
        return "\n".join(lines)
