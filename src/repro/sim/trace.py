"""Event trace: the machine-readable form of the Fig. 6 timeline.

Every interesting run-time event — forecasts, container reallocations,
rotation starts/completions, SI executions and their SW/HW mode switches
— is recorded as an :class:`Event`.  Benches and tests assert directly on
the event sequence; :meth:`Trace.render_timeline` prints the
human-readable scenario view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """Run-time event categories."""

    FORECAST = "forecast"
    FORECAST_END = "forecast_end"
    REALLOCATION = "reallocation"
    ROTATION_REQUESTED = "rotation_requested"
    ROTATION_STARTED = "rotation_started"
    ROTATION_COMPLETED = "rotation_completed"
    SI_EXECUTED = "si_executed"
    SI_MODE_SWITCH = "si_mode_switch"
    TASK_STEP = "task_step"
    CONTAINER_FAILED = "container_failed"


@dataclass(frozen=True)
class Event:
    """One timestamped run-time event."""

    cycle: int
    kind: EventKind
    task: str = ""
    si: str = ""
    detail: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        bits = [f"@{self.cycle}", self.kind.value]
        if self.task:
            bits.append(f"task={self.task}")
        if self.si:
            bits.append(f"si={self.si}")
        if self.detail:
            bits.append(str(self.detail))
        return f"Event({', '.join(bits)})"


class Trace:
    """An append-only, time-ordered event log."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def record(
        self,
        cycle: int,
        kind: EventKind,
        *,
        task: str = "",
        si: str = "",
        **detail,
    ) -> Event:
        if self.events and cycle < 0:
            raise ValueError("event cycle cannot be negative")
        event = Event(cycle=cycle, kind=kind, task=task, si=si, detail=detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def for_task(self, task: str) -> list[Event]:
        return [e for e in self.events if e.task == task]

    def for_si(self, si: str) -> list[Event]:
        return [e for e in self.events if e.si == si]

    def first(self, kind: EventKind, **detail_filter) -> Event | None:
        """Earliest event of ``kind`` whose detail matches the filter."""
        for e in self.events:
            if e.kind is not kind:
                continue
            if all(e.detail.get(k) == v for k, v in detail_filter.items()):
                return e
        return None

    def render_timeline(self, *, max_events: int | None = None) -> str:
        """A readable cycle-ordered log (the Fig. 6 presentation)."""
        lines = []
        events = self.events if max_events is None else self.events[:max_events]
        for e in events:
            parts = [f"{e.cycle:>10}", f"{e.kind.value:<20}"]
            if e.task:
                parts.append(f"{e.task:<8}")
            if e.si:
                parts.append(f"{e.si:<10}")
            if e.detail:
                parts.append(
                    " ".join(f"{k}={v}" for k, v in sorted(e.detail.items()))
                )
            lines.append(" ".join(parts))
        return "\n".join(lines)
