"""IR interpreter: run programs, collect traces, build profiled CFGs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph

from .ir import Branch, Exit, Jump, Program


@dataclass
class ExecutionResult:
    """Everything one program run produced."""

    block_trace: list[str]
    env: dict
    cycles: int
    si_executions: dict[str, int] = field(default_factory=dict)

    def block_count(self, name: str) -> int:
        return sum(1 for b in self.block_trace if b == name)


def execute(
    program: Program,
    env: dict | None = None,
    *,
    max_blocks: int = 1_000_000,
) -> ExecutionResult:
    """Interpret ``program`` until it exits (or the block budget runs out).

    ``env`` is the mutable environment block actions and branch conditions
    see; it is returned (mutated) in the result.
    """
    program.validate()
    env = env if env is not None else {}
    trace: list[str] = []
    cycles = 0
    si_counts: dict[str, int] = {}
    current = program.entry
    for _ in range(max_blocks):
        block = program.blocks[current]
        trace.append(current)
        cycles += block.cycles
        for si, n in block.si_calls.items():
            si_counts[si] = si_counts.get(si, 0) + n
        if block.action is not None:
            block.action(env)
        term = block.terminator
        if isinstance(term, Exit):
            return ExecutionResult(
                block_trace=trace, env=env, cycles=cycles, si_executions=si_counts
            )
        if isinstance(term, Jump):
            current = term.target
        elif isinstance(term, Branch):
            current = term.if_true if term.condition(env) else term.if_false
        else:  # pragma: no cover - exhaustive over Terminator
            raise TypeError(f"unknown terminator {term!r}")
    raise RuntimeError(
        f"program did not exit within {max_blocks} blocks (infinite loop?)"
    )


def profile_program(
    program: Program,
    env: dict | None = None,
    *,
    runs: int = 1,
    env_factory=None,
    max_blocks: int = 1_000_000,
) -> tuple[ControlFlowGraph, list[ExecutionResult]]:
    """Run the program (possibly several times) and return a profiled CFG.

    ``env_factory(run_index)`` supplies per-run environments (e.g. random
    plaintexts for AES); otherwise each run shares a copy of ``env``.
    """
    if runs < 1:
        raise ValueError("need at least one profiling run")
    cfg = program.to_cfg()
    results: list[ExecutionResult] = []
    block_counts: dict[str, int] = {}
    edge_counts: dict[tuple[str, str], int] = {}
    for i in range(runs):
        if env_factory is not None:
            run_env = env_factory(i)
        else:
            run_env = dict(env) if env is not None else {}
        result = execute(program, run_env, max_blocks=max_blocks)
        results.append(result)
        # Accumulate per run: concatenating traces would fabricate an
        # exit -> entry edge between consecutive runs.
        for block in result.block_trace:
            block_counts[block] = block_counts.get(block, 0) + 1
        for src, dst in zip(result.block_trace, result.block_trace[1:]):
            edge_counts[(src, dst)] = edge_counts.get((src, dst), 0) + 1
    cfg.set_profile(block_counts, edge_counts)
    return cfg, results
