"""Scripted tasks and the quasi-parallel multi-task engine.

The Fig. 6 scenario interleaves two tasks on one core while they share
the Atom Containers.  :class:`ScriptedTask` describes each task as a
sequence of actions (compute, execute an SI n times, fire or end a
forecast); :class:`MultiTaskSimulator` co-schedules the tasks against one
:class:`~repro.runtime.manager.RisppRuntime`, always advancing the task
with the smallest local clock — a behavioural stand-in for the paper's
quasi-parallel execution of Tasks A and B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .trace import EventKind

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from ..runtime.manager import RisppRuntime


@dataclass(frozen=True)
class Compute:
    """Plain core work."""

    cycles: int


@dataclass(frozen=True)
class ExecuteSI:
    """Execute an SI ``times`` times back to back."""

    si_name: str
    times: int = 1


@dataclass(frozen=True)
class Forecast:
    """Fire a forecast point for an SI."""

    si_name: str
    expected: float = 1.0
    priority: float = 1.0


@dataclass(frozen=True)
class ForecastEnd:
    """Declare an SI no longer needed."""

    si_name: str


@dataclass(frozen=True)
class Label:
    """A named marker (the T0..T5 annotations of Fig. 6)."""

    name: str


Action = Compute | ExecuteSI | Forecast | ForecastEnd | Label


@dataclass
class ScriptedTask:
    """One task: a name and its action script."""

    name: str
    actions: list[Action]
    clock: int = 0
    index: int = field(default=0, compare=False)
    #: SI executions already performed of the current ExecuteSI action.
    si_progress: int = field(default=0, compare=False)

    def done(self) -> bool:
        return self.index >= len(self.actions)

    def peek(self) -> Action:
        return self.actions[self.index]


@dataclass
class MultiTaskSimulator:
    """Co-schedules scripted tasks over one RISPP runtime."""

    runtime: "RisppRuntime"
    tasks: list[ScriptedTask]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(names) != len(set(names)):
            raise ValueError("task names must be unique")

    def step(self) -> bool:
        """Execute one step of the least-advanced task; False when done.

        SI executions interleave one at a time — a long ``ExecuteSI``
        batch must not race the shared hardware state past the other
        tasks' clocks.
        """
        runnable = [t for t in self.tasks if not t.done()]
        if not runnable:
            return False
        task = min(runnable, key=lambda t: (t.clock, t.name))
        action = task.actions[task.index]
        now = task.clock
        if isinstance(action, ExecuteSI):
            cycles = self.runtime.execute_si(
                action.si_name, task.clock, task=task.name
            )
            task.clock += cycles
            task.si_progress += 1
            if task.si_progress >= action.times:
                task.si_progress = 0
                task.index += 1
            return True
        task.index += 1
        if isinstance(action, Compute):
            if action.cycles < 0:
                raise ValueError("compute cycles cannot be negative")
            task.clock += action.cycles
        elif isinstance(action, Forecast):
            self.runtime.forecast(
                action.si_name,
                now,
                task=task.name,
                expected=action.expected,
                priority=action.priority,
            )
        elif isinstance(action, ForecastEnd):
            self.runtime.forecast_end(action.si_name, now, task=task.name)
        elif isinstance(action, Label):
            self.labels[f"{task.name}:{action.name}"] = now
            # Drain rotation completions up to `now` first: the label is
            # recorded directly into the trace, and completions that
            # happened earlier must precede it (time-ordered contract).
            self.runtime.advance(now)
            self.runtime.trace.record(
                now, EventKind.TASK_STEP, task=task.name, label=action.name
            )
        else:  # pragma: no cover - exhaustive over Action
            raise TypeError(f"unknown action {action!r}")
        return True

    def run(self, *, max_steps: int = 1_000_000) -> None:
        """Run all tasks to completion."""
        for _ in range(max_steps):
            if not self.step():
                return
        raise RuntimeError(f"simulation exceeded {max_steps} steps")

    def label_time(self, task: str, label: str) -> int:
        """Cycle at which a task passed a :class:`Label`."""
        return self.labels[f"{task}:{label}"]
