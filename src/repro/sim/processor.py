"""Core-processor cost model (the paper's DLX substitute).

"We currently use a DLX core, but conceptually we are not limited to any
specific core" (§6).  All RISPP results depend only on relative
instruction costs, so the behavioural model is a per-class cycle table
for the plain ISA plus the SI issue interface.  Used to derive IR block
cycle costs from instruction mixes and to price the software molecules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A five-stage in-order pipeline's effective costs per instruction class.
DEFAULT_COSTS: dict[str, int] = {
    "alu": 1,
    "shift": 1,
    "mul": 3,
    "load": 2,
    "store": 1,
    "branch": 2,  # average including misprediction bubbles
    "call": 3,
    "nop": 1,
}


@dataclass
class CoreModel:
    """Cycle-cost model of the scalar core."""

    frequency_mhz: float = 100.0
    costs: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    #: Fixed cost of issuing an SI (decode + operand marshalling).
    si_issue_cycles: int = 1

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("core frequency must be positive")
        if self.si_issue_cycles < 0:
            raise ValueError("SI issue cost cannot be negative")
        for kind, cost in self.costs.items():
            if cost < 1:
                raise ValueError(f"cost of {kind!r} must be at least one cycle")

    def instruction_cycles(self, kind: str) -> int:
        """Cycles of one plain instruction."""
        try:
            return self.costs[kind]
        except KeyError:
            raise ValueError(f"unknown instruction class {kind!r}") from None

    def block_cycles(self, mix: dict[str, int]) -> int:
        """Cycles of a basic block given its instruction mix."""
        total = 0
        for kind, count in mix.items():
            if count < 0:
                raise ValueError("instruction counts cannot be negative")
            total += count * self.instruction_cycles(kind)
        return total

    def cycles_to_us(self, cycles: int) -> float:
        """Convert core cycles to microseconds."""
        return cycles / self.frequency_mhz

    def us_to_cycles(self, micros: float) -> int:
        """Convert microseconds to core cycles (rounded)."""
        return round(micros * self.frequency_mhz)
