"""A tiny program IR: enough structure to profile real applications.

The forecast pipeline needs basic-block graphs with *measured* execution
counts, branch behaviour and SI usage (Fig. 3 shows this for AES).  This
IR lets an application be written as named blocks with cycle costs, SI
calls and data-dependent terminators; the executor
(:mod:`repro.sim.executor`) runs it against an environment and produces
the profiled :class:`~repro.cfg.graph.ControlFlowGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cfg.graph import BasicBlock, ControlFlowGraph


@dataclass(frozen=True)
class Jump:
    """Unconditional transfer."""

    target: str


@dataclass(frozen=True)
class Branch:
    """Two-way conditional transfer; ``condition(env) -> bool``."""

    condition: Callable[[dict], bool]
    if_true: str
    if_false: str


@dataclass(frozen=True)
class Exit:
    """Program end."""


Terminator = Jump | Branch | Exit


@dataclass
class IRBlock:
    """One basic block of the IR.

    Parameters
    ----------
    name:
        Unique block name.
    cycles:
        Core cycles of the block's plain instructions (excluding SIs).
    si_calls:
        ``{si_name: calls per block execution}``.
    action:
        Optional side effect on the environment, run on every execution
        (this is what makes the IR a real interpreter: loop counters,
        data transformations, ...).
    terminator:
        Control transfer out of the block.
    """

    name: str
    cycles: int = 1
    si_calls: dict[str, int] = field(default_factory=dict)
    action: Callable[[dict], None] | None = None
    terminator: Terminator = field(default_factory=Exit)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("IR block needs a name")
        if self.cycles < 0:
            raise ValueError("block cycles cannot be negative")
        for si, n in self.si_calls.items():
            if n < 1:
                raise ValueError(f"SI call count for {si!r} must be positive")


class Program:
    """A named collection of IR blocks with a single entry."""

    def __init__(self, entry: str):
        self.entry = entry
        self.blocks: dict[str, IRBlock] = {}

    def add(self, block: IRBlock) -> IRBlock:
        if block.name in self.blocks:
            raise ValueError(f"duplicate IR block {block.name!r}")
        self.blocks[block.name] = block
        return block

    def block(
        self,
        name: str,
        *,
        cycles: int = 1,
        si_calls: dict[str, int] | None = None,
        action: Callable[[dict], None] | None = None,
        terminator: Terminator | None = None,
    ) -> IRBlock:
        """Convenience constructor-and-add."""
        return self.add(
            IRBlock(
                name,
                cycles=cycles,
                si_calls=si_calls or {},
                action=action,
                terminator=terminator if terminator is not None else Exit(),
            )
        )

    def validate(self) -> None:
        """Check the entry and all terminator targets exist."""
        if self.entry not in self.blocks:
            raise ValueError(f"entry block {self.entry!r} missing")
        for block in self.blocks.values():
            term = block.terminator
            targets: tuple[str, ...]
            if isinstance(term, Jump):
                targets = (term.target,)
            elif isinstance(term, Branch):
                targets = (term.if_true, term.if_false)
            else:
                targets = ()
            for t in targets:
                if t not in self.blocks:
                    raise ValueError(
                        f"block {block.name!r} targets unknown block {t!r}"
                    )

    def successors_of(self, name: str) -> tuple[str, ...]:
        term = self.blocks[name].terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            if term.if_true == term.if_false:
                return (term.if_true,)
            return (term.if_true, term.if_false)
        return ()

    def to_cfg(self) -> ControlFlowGraph:
        """The structural BB graph (unprofiled)."""
        self.validate()
        cfg = ControlFlowGraph(entry=self.entry)
        for block in self.blocks.values():
            cfg.add_block(
                BasicBlock(
                    block.name,
                    cycles=block.cycles,
                    si_usages=dict(block.si_calls),
                )
            )
        for block in self.blocks.values():
            for succ in self.successors_of(block.name):
                cfg.add_edge(block.name, succ)
        return cfg
