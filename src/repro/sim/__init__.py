"""Simulation substrate: program IR, interpreter, core model, tasks, trace."""

from .executor import ExecutionResult, execute, profile_program
from .integration import (
    AnnotatedRunResult,
    CompileAndRunResult,
    compile_and_run,
    run_annotated_program,
)
from .ir import Branch, Exit, IRBlock, Jump, Program
from .processor import DEFAULT_COSTS, CoreModel
from .task import (
    Action,
    Compute,
    ExecuteSI,
    Forecast,
    ForecastEnd,
    Label,
    MultiTaskSimulator,
    ScriptedTask,
)
from .trace import Event, EventKind, Trace

__all__ = [
    "Action",
    "AnnotatedRunResult",
    "Branch",
    "CompileAndRunResult",
    "Compute",
    "CoreModel",
    "DEFAULT_COSTS",
    "Event",
    "EventKind",
    "ExecuteSI",
    "ExecutionResult",
    "Exit",
    "Forecast",
    "ForecastEnd",
    "IRBlock",
    "Jump",
    "Label",
    "MultiTaskSimulator",
    "Program",
    "ScriptedTask",
    "Trace",
    "compile_and_run",
    "execute",
    "profile_program",
    "run_annotated_program",
]
