"""The fault injector: delivery, scrubbing, quarantine and repair.

The injector plugs into :meth:`RisppRuntime.advance`: the manager asks
:meth:`FaultInjector.next_cycle` for the earliest due fault/scrub/retry
event, drains rotation completions up to that cycle, then lets
:meth:`FaultInjector.step` fire it — so every fault sees exactly the
hardware state of its own cycle and the trace stays chronological.

Recovery model (the state machine drawn in ``docs/faults.md``):

* A **transient** SEU corrupts a loaded container *silently*: the
  container keeps reporting its Atom (the planner and execution path
  still trust it) until the periodic readback scrubber visits — at the
  first multiple of ``scrub_period`` after the injection — or an
  ordinary rotation overwrites the container first (self-heal).
* On detection the container is **quarantined** (its Atom dropped, the
  container barred from ordinary rotations) and a **repair rotation**
  re-loading the lost Atom is pushed through the normal SelectMap port;
  if the planner already queued a rotation into that container, that
  pending job is adopted as the repair.  The repair completing releases
  the quarantine and re-admits the container.
* A **write error** aborts whatever bitstream transfer is in flight;
  the job is retried with exponential backoff (``backoff_cycles * 2^n``)
  up to ``max_retries`` times, after which a planner job is abandoned
  (and the forecast replanned) while a repair job retires its container
  for good.
* A **permanent** defect retires the container immediately.

All bookkeeping is deterministic given the schedule, and every decision
is traced (``FAULT_INJECTED`` / ``FAULT_DETECTED`` /
``CONTAINER_QUARANTINED`` / ``CONTAINER_REPAIRED`` /
``ROTATION_RETRIED``) so rispp-verify can replay it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..runtime import events
from .model import FaultEvent, FaultKind, FaultSchedule
from .stats import ResilienceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.si import SpecialInstruction
    from ..hardware.reconfig import RotationJob
    from ..obs import MetricRegistry
    from ..runtime.manager import RisppRuntime


@dataclass
class _Episode:
    """One fault's life from injection to resolution."""

    container: int
    atom: str
    injected_at: int
    detected_at: int | None = None


@dataclass
class _Retry:
    """A rescheduled bitstream write waiting out its backoff."""

    due: int
    container: int
    atom: str
    owner: str | None
    repair: bool


class FaultInjector:
    """Deliver a :class:`FaultSchedule` and recover from it."""

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        scrub_period: int = 10_000,
        max_retries: int = 3,
        backoff_cycles: int = 1_000,
        backoff_ladder: Sequence[int] | None = None,
    ):
        if scrub_period < 1:
            raise ValueError("scrub period must be positive")
        if max_retries < 0:
            raise ValueError("retry budget cannot be negative")
        if backoff_cycles < 1:
            raise ValueError("backoff must be positive")
        ladder: tuple[int, ...] | None = None
        if backoff_ladder is not None:
            ladder = tuple(int(step) for step in backoff_ladder)
            if max_retries < 1:
                raise ValueError("a backoff ladder needs a positive retry budget")
            if len(ladder) != max_retries:
                raise ValueError(
                    f"backoff ladder has {len(ladder)} steps for "
                    f"{max_retries} retries; one delay per retry"
                )
            if any(step < 1 for step in ladder):
                raise ValueError("backoff ladder steps must be positive")
            if any(b < a for a, b in zip(ladder, ladder[1:])):
                raise ValueError(
                    "backoff ladder steps must be non-decreasing, got "
                    f"{list(ladder)}"
                )
        self.schedule = schedule
        self.scrub_period = scrub_period
        self.max_retries = max_retries
        self.backoff_cycles = backoff_cycles
        self.backoff_ladder = ladder
        self.stats = ResilienceStats()
        self._events: list[FaultEvent] = list(schedule)
        self._cursor = 0
        #: Open silent-corruption episodes, by container id.
        self._corrupted: dict[int, _Episode] = {}
        #: Detected episodes waiting for their repair rotation.
        self._quarantined: dict[int, _Episode] = {}
        #: Backed-off writes waiting to be re-queued.
        self._retries: list[_Retry] = []
        #: Write attempts consumed per (container, atom) job identity.
        self._attempts: dict[tuple[int, str], int] = {}
        #: The in-flight repair job per quarantined container.
        self._repair_of: dict[int, "RotationJob"] = {}
        self._last_mark = 0
        self._runtime: "RisppRuntime | None" = None
        self._bind_metrics(None)

    # -- wiring -----------------------------------------------------------

    def attach(self, runtime: "RisppRuntime") -> None:
        """Bind to one runtime (called by ``RisppRuntime.__init__``)."""
        if self._runtime is not None and self._runtime is not runtime:
            raise ValueError("fault injector is already attached to a runtime")
        for event in self._events:
            if (
                event.kind is not FaultKind.WRITE_ERROR
                and event.container >= len(runtime.fabric)
            ):
                raise ValueError(
                    f"fault schedule targets container {event.container}, "
                    f"but the fabric has {len(runtime.fabric)} containers"
                )
        self._runtime = runtime
        self._bind_metrics(runtime.metrics)

    def _bind_metrics(self, metrics: "MetricRegistry | None") -> None:
        """Adopt the attached runtime's registry (DISABLED before attach)."""
        from ..obs import DISABLED

        obs = metrics if metrics is not None else DISABLED
        self._obs_on = obs.enabled
        injected = obs.counter("faults_injected_total")
        self._m_injected = {
            kind: injected.labels(kind=kind.value) for kind in FaultKind
        }
        self._m_repair_cycles = obs.histogram("repair_cycles")
        self._m_quarantine = obs.gauge("quarantine_depth")
        self._m_degraded = obs.counter("degraded_cycles_total")

    def schedule_fault(self, event: FaultEvent) -> None:
        """Append a fault event at run time (model-checking drivers).

        rispp-explore drives faults as explicit *actions* rather than a
        pre-baked schedule, so the injector accepts late additions.  The
        event must not predate already-delivered events (the trace is
        chronological), and — once attached — its container must exist.
        """
        import bisect

        if self._cursor > 0 and event.cycle < self._events[self._cursor - 1].cycle:
            raise ValueError(
                f"cannot schedule a fault at cycle {event.cycle}: events up "
                f"to cycle {self._events[self._cursor - 1].cycle} were "
                "already delivered"
            )
        if (
            self._runtime is not None
            and event.kind is not FaultKind.WRITE_ERROR
            and event.container >= len(self._runtime.fabric)
        ):
            raise ValueError(
                f"fault targets container {event.container}, but the fabric "
                f"has {len(self._runtime.fabric)} containers"
            )
        bisect.insort(self._events, event, lo=self._cursor)

    # -- clock interface (called by RisppRuntime.advance) -----------------

    def next_cycle(self, now: int) -> int | None:
        """Earliest due fault / scrub detection / retry at or before ``now``."""
        best: int | None = None
        if self._cursor < len(self._events):
            cycle = self._events[self._cursor].cycle
            if cycle <= now:
                best = cycle
        for episode in self._corrupted.values():
            due = self._detect_at(episode)
            if due <= now and (best is None or due < best):
                best = due
        for retry in self._retries:
            if retry.due <= now and (best is None or retry.due < best):
                best = retry.due
        return best

    def step(self, runtime: "RisppRuntime", t: int) -> None:
        """Fire everything due at cycle ``t`` (injections, scrubs, retries).

        The manager guarantees rotation completions up to ``t`` are
        already processed, so injections see the state of their cycle.
        Follow-on work (detections of fresh injections, backed-off
        retries) is always due *strictly after* ``t``, so the manager's
        drain loop terminates.
        """
        self._mark(t)
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].cycle <= t
        ):
            event = self._events[self._cursor]
            self._cursor += 1
            self._inject(runtime, event, t)
        for container_id in sorted(self._corrupted):
            episode = self._corrupted[container_id]
            if self._detect_at(episode) <= t:
                self._detect(runtime, container_id, t)
        for retry in [r for r in self._retries if r.due <= t]:
            self._retries.remove(retry)
            self._run_retry(runtime, retry, t)

    # -- injection --------------------------------------------------------

    def _inject(self, runtime: "RisppRuntime", event: FaultEvent, t: int) -> None:
        self.stats.faults_injected += 1
        if self._obs_on:
            self._m_injected[event.kind].inc()
        if event.kind is FaultKind.TRANSIENT:
            self.stats.transients += 1
            self._inject_transient(runtime, event.container, t)
        elif event.kind is FaultKind.WRITE_ERROR:
            self.stats.write_errors += 1
            self._inject_write_error(runtime, t)
        else:
            self.stats.permanents += 1
            self._inject_permanent(runtime, event.container, t)

    def _inject_transient(
        self, runtime: "RisppRuntime", container_id: int, t: int
    ) -> None:
        container = runtime.fabric.container(container_id)
        if not container.is_available() or container.corrupted:
            # Nothing loaded to upset (or the damage is already done).
            self.stats.faults_no_effect += 1
            runtime.publish(
                events.FaultInjected(
                    t,
                    fault=FaultKind.TRANSIENT.value,
                    container=container_id,
                    atom=None,
                    effect="none",
                )
            )
            return
        atom = container.mark_corrupted()
        self._corrupted[container_id] = _Episode(container_id, atom, t)
        runtime.publish(
            events.FaultInjected(
                t,
                fault=FaultKind.TRANSIENT.value,
                container=container_id,
                atom=atom,
                effect="corrupted",
            )
        )

    def _inject_write_error(self, runtime: "RisppRuntime", t: int) -> None:
        job = runtime.port.abort_active(runtime.fabric, t)
        if job is None:
            self.stats.faults_no_effect += 1
            runtime.publish(
                events.FaultInjected(
                    t,
                    fault=FaultKind.WRITE_ERROR.value,
                    container=None,
                    atom=None,
                    effect="none",
                )
            )
            return
        runtime.publish(
            events.FaultInjected(
                t,
                fault=FaultKind.WRITE_ERROR.value,
                container=job.container_id,
                atom=job.atom,
                effect="write_aborted",
                task=job.owner or "",
            )
        )
        key = (job.container_id, job.atom)
        attempts = self._attempts.get(key, 0)
        if attempts >= self.max_retries:
            self._attempts.pop(key, None)
            if job.repair:
                # The repair write cannot get through: retire the
                # container (the episode closes via on_container_failed).
                self.stats.containers_retired += 1
                runtime._fail_container_at(job.container_id, t)
            else:
                self.stats.jobs_abandoned += 1
                runtime._request_replan(t)
            return
        self._attempts[key] = attempts + 1
        due = t + self._backoff_for(attempts)
        self.stats.rotation_retries += 1
        runtime.publish(
            events.RotationRetried(
                t,
                task=job.owner or "",
                container=job.container_id,
                atom=job.atom,
                attempt=attempts + 1,
                retry_at=due,
            )
        )
        self._retries.append(
            _Retry(due, job.container_id, job.atom, job.owner, job.repair)
        )

    def _backoff_for(self, attempts: int) -> int:
        """Backoff delay before retry ``attempts + 1`` (explicit ladder
        when configured, exponential doubling otherwise)."""
        if self.backoff_ladder is not None:
            return self.backoff_ladder[attempts]
        return self.backoff_cycles * (2**attempts)

    def _inject_permanent(
        self, runtime: "RisppRuntime", container_id: int, t: int
    ) -> None:
        container = runtime.fabric.container(container_id)
        if container.failed:
            self.stats.faults_no_effect += 1
            runtime.publish(
                events.FaultInjected(
                    t,
                    fault=FaultKind.PERMANENT.value,
                    container=container_id,
                    atom=None,
                    effect="none",
                )
            )
            return
        runtime.publish(
            events.FaultInjected(
                t,
                fault=FaultKind.PERMANENT.value,
                container=container_id,
                atom=container.atom,
                effect="failed",
            )
        )
        self.stats.containers_retired += 1
        runtime._fail_container_at(container_id, t)

    # -- scrubbing & repair -----------------------------------------------

    def _detect_at(self, episode: _Episode) -> int:
        """The scrubber visit that finds the episode: the first readback
        pass strictly after the injection."""
        return (episode.injected_at // self.scrub_period + 1) * self.scrub_period

    def _detect(self, runtime: "RisppRuntime", container_id: int, t: int) -> None:
        episode = self._corrupted.pop(container_id)
        container = runtime.fabric.container(container_id)
        if not container.corrupted:
            # An ordinary rotation overwrote the container first; the
            # corruption never surfaced (counted when noticed, here).
            self.stats.faults_overwritten += 1
            return
        episode.detected_at = t
        self.stats.faults_detected += 1
        self.stats.detection_cycles_total += t - episode.injected_at
        runtime.publish(
            events.FaultDetected(
                t,
                container=container_id,
                atom=episode.atom,
                injected_at=episode.injected_at,
                latency=t - episode.injected_at,
            )
        )
        lost = container.quarantine()
        self.stats.containers_quarantined += 1
        if self._obs_on:
            self._m_quarantine.inc()
        runtime.publish(
            events.ContainerQuarantined(t, container=container_id, atom=lost)
        )
        self._quarantined[container_id] = episode
        if runtime.port.is_reserved(container_id):
            # The planner already queued a rotation into this container;
            # it overwrites the bad configuration, so adopt it as the
            # repair instead of double-booking the port.
            self._adopt_repair(runtime, container_id)
        else:
            job = runtime.port.request(
                runtime.fabric,
                episode.atom,
                container_id,
                t,
                owner=container.owner,
                repair=True,
            )
            runtime._record_rotation_request(job, t, repair=True)
            self._repair_of[container_id] = job

    def _adopt_repair(self, runtime: "RisppRuntime", container_id: int) -> None:
        for job in runtime.port.pending_jobs():
            if job.container_id == container_id and not job.completed:
                job.repair = True
                self._repair_of[container_id] = job
                return

    def _run_retry(self, runtime: "RisppRuntime", retry: _Retry, t: int) -> None:
        container = runtime.fabric.container(retry.container)
        if container.failed:
            return  # superseded by a permanent defect
        if runtime.port.is_reserved(retry.container):
            if retry.repair:
                # Defensive: some job claimed the quarantined container;
                # it must be the repair's successor — track it as such.
                self._adopt_repair(runtime, retry.container)
            return
        if retry.repair and not container.quarantined:
            return  # released some other way; nothing left to repair
        if not retry.repair and container.quarantined:
            return  # the quarantine repair path owns the container now
        if container.is_available() and container.atom == retry.atom:
            return  # the planner already reloaded the atom
        job = runtime.port.request(
            runtime.fabric,
            retry.atom,
            retry.container,
            t,
            owner=retry.owner,
            repair=retry.repair,
        )
        runtime._record_rotation_request(job, t, repair=retry.repair)
        if retry.repair:
            self._repair_of[retry.container] = job

    # -- runtime callbacks ------------------------------------------------

    def on_rotation_completed(self, runtime: "RisppRuntime", job: "RotationJob") -> None:
        """A rotation finished: settle overwrites, repairs and retries."""
        container_id = job.container_id
        episode = self._corrupted.get(container_id)
        if episode is not None and not runtime.fabric.container(
            container_id
        ).corrupted:
            self._mark(job.finish_at)
            self._corrupted.pop(container_id)
            self.stats.faults_overwritten += 1
        self._attempts.pop((container_id, job.atom), None)
        if self._repair_of.get(container_id) is job:
            self._mark(job.finish_at)
            self._repair_of.pop(container_id)
            repaired = self._quarantined.pop(container_id)
            runtime.fabric.container(container_id).release_quarantine()
            mttr = job.finish_at - repaired.injected_at
            self.stats.containers_repaired += 1
            self.stats.mttr_cycles_total += mttr
            self.stats.mttr_cycles_max = max(self.stats.mttr_cycles_max, mttr)
            if self._obs_on:
                self._m_repair_cycles.observe(mttr)
                self._m_quarantine.dec()
            runtime.publish(
                events.ContainerRepaired(
                    job.finish_at,
                    task=job.owner or "",
                    container=container_id,
                    atom=job.atom,
                    injected_at=repaired.injected_at,
                    mttr=mttr,
                )
            )

    def on_container_failed(self, container_id: int, now: int) -> None:
        """A container was retired: close any open episode bookkeeping."""
        self._mark(now)
        self._corrupted.pop(container_id, None)
        if self._quarantined.pop(container_id, None) is not None and self._obs_on:
            self._m_quarantine.dec()
        self._repair_of.pop(container_id, None)
        self._attempts = {
            key: n for key, n in self._attempts.items() if key[0] != container_id
        }
        self._retries = [r for r in self._retries if r.container != container_id]

    def note_execution(
        self, runtime: "RisppRuntime", si: "SpecialInstruction", now: int
    ) -> None:
        """An SI fell back to software; attribute it to faults if the
        atoms lost to open quarantines would have enabled a molecule."""
        if not self._quarantined:
            return
        self._mark(now)
        lost_counts: dict[str, int] = {}
        for episode in self._quarantined.values():
            lost_counts[episode.atom] = lost_counts.get(episode.atom, 0) + 1
        available = runtime.fabric.available_atoms()
        restored = available + available.space.molecule(lost_counts)
        if si.best_available(restored) is not None:
            self.stats.sw_fallback_executions += 1

    def finalize(self, now: int) -> None:
        """Close the degraded-time integral at the end of a run."""
        self._mark(now)

    # -- accounting -------------------------------------------------------

    def _mark(self, t: int) -> None:
        """Advance the degraded-cycles integral to cycle ``t``."""
        if t > self._last_mark:
            if self._corrupted or self._quarantined:
                self.stats.degraded_cycles += t - self._last_mark
                if self._obs_on:
                    self._m_degraded.inc(t - self._last_mark)
            self._last_mark = t

    def open_episodes(self) -> int:
        """Corruption/quarantine episodes still unresolved (for tests)."""
        return len(self._corrupted) + len(self._quarantined)
