"""Resilience accounting: what the fabric survived and what it cost.

All counters are cycles or event counts derived purely from the
deterministic simulation, so a :class:`ResilienceStats` block is
reproducible byte-for-byte given the same seed.  The glossary lives in
``docs/faults.md``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class ResilienceStats:
    """Aggregate fault/recovery counters of one chaos run."""

    #: Scheduled faults that were delivered (regardless of effect).
    faults_injected: int = 0
    #: Faults that found nothing to damage (empty container, idle port,
    #: already-failed container).
    faults_no_effect: int = 0
    transients: int = 0
    write_errors: int = 0
    permanents: int = 0
    #: Silent corruptions the scrubber caught.
    faults_detected: int = 0
    #: Silent corruptions healed by an ordinary rotation overwriting the
    #: container before the scrubber ever saw them.
    faults_overwritten: int = 0
    containers_quarantined: int = 0
    containers_repaired: int = 0
    #: Containers permanently retired (permanent defects plus repairs
    #: that exhausted their retry budget).
    containers_retired: int = 0
    #: Bitstream writes re-queued after a mid-write error.
    rotation_retries: int = 0
    #: Non-repair rotation jobs abandoned after ``max_retries`` failures.
    jobs_abandoned: int = 0
    #: SI executions that ran in software *because* fault recovery had
    #: atoms out of service (the SI would have had a hardware molecule
    #: with the quarantined atoms restored).
    sw_fallback_executions: int = 0
    #: Cycles during which at least one corruption/quarantine episode was
    #: open (the fabric ran degraded).
    degraded_cycles: int = 0
    #: Injection-to-detection cycles summed over detected faults.
    detection_cycles_total: int = 0
    #: Injection-to-repair cycles summed over repaired containers.
    mttr_cycles_total: int = 0
    #: Worst single repair (compared against the static repair bound).
    mttr_cycles_max: int = 0

    def mttr_cycles(self) -> float:
        """Mean time to repair, in cycles (0.0 with no repairs)."""
        if not self.containers_repaired:
            return 0.0
        return self.mttr_cycles_total / self.containers_repaired

    def to_dict(self) -> dict[str, object]:
        out = asdict(self)
        out["mttr_cycles"] = round(self.mttr_cycles(), 3)
        return out
