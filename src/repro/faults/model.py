"""The fault model: kinds, events and deterministic schedules.

A :class:`FaultSchedule` is the *entire* source of nondeterminism in a
chaos run: it is either written out explicitly (tests) or generated from
a seed (chaos CLI / CI fuzz).  Given the same schedule, the injector and
the runtime are fully deterministic, so resilience reports are
byte-identical across runs — the property the acceptance gate checks.

Fault kinds, following the configuration-upset literature:

``TRANSIENT``
    An SEU flips configuration bits of a *loaded* container.  The Atom
    keeps reporting as present but is silently wrong until a rotation
    overwrites it or the readback scrubber detects it.
``WRITE_ERROR``
    The SelectMap transfer in flight at that cycle is corrupted; the
    partial bitstream is useless and the write must be retried.  The
    targeted container is whichever one the port happens to be writing —
    the event's ``container`` field is ignored.
``PERMANENT``
    A fabric defect: the container is retired for good.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


class FaultKind(enum.Enum):
    """Categories of injected faults."""

    TRANSIENT = "transient"
    WRITE_ERROR = "write_error"
    PERMANENT = "permanent"


#: Relative likelihood of each kind in generated schedules.  SEUs
#: dominate on real fabrics; permanent defects are rare.
_KIND_WEIGHTS: Sequence[tuple[FaultKind, int]] = (
    (FaultKind.TRANSIENT, 7),
    (FaultKind.WRITE_ERROR, 2),
    (FaultKind.PERMANENT, 1),
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* strikes *container* at *cycle*.

    ``container`` is ignored for ``WRITE_ERROR`` (the fault hits the
    write in flight on the single port, whichever container it targets).
    """

    cycle: int
    kind: FaultKind
    container: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("fault cycle cannot be negative")
        if self.container < 0:
            raise ValueError("fault container id cannot be negative")

    def sort_key(self) -> tuple[int, str, int]:
        """Chronological, with a stable tie-break for same-cycle events."""
        return (self.cycle, self.kind.value, self.container)

    def __lt__(self, other: "FaultEvent") -> bool:
        if not isinstance(other, FaultEvent):
            return NotImplemented
        return self.sort_key() < other.sort_key()


class FaultSchedule:
    """A deterministic, time-ordered list of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: list[FaultEvent] = sorted(events)

    @classmethod
    def generate(
        cls,
        *,
        seed: int,
        horizon: int,
        containers: int,
        rate: float = 2.0,
        kind_weights: Sequence[tuple[FaultKind, int]] = _KIND_WEIGHTS,
    ) -> "FaultSchedule":
        """Draw a schedule from a seeded RNG.

        ``rate`` is the expected number of faults per million cycles over
        ``horizon`` cycles; the draw is deterministic in ``(seed,
        horizon, containers, rate, kind_weights)``.
        """
        if horizon < 0:
            raise ValueError("horizon cannot be negative")
        if containers < 1:
            raise ValueError("schedule needs at least one container")
        if rate < 0:
            raise ValueError("fault rate cannot be negative")
        rng = random.Random(seed)
        count = round(rate * horizon / 1_000_000)
        kinds = [k for k, w in kind_weights for _ in range(w)]
        events = []
        for _ in range(count):
            events.append(
                FaultEvent(
                    cycle=rng.randrange(horizon) if horizon else 0,
                    kind=rng.choice(kinds),
                    container=rng.randrange(containers),
                )
            )
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def counts(self) -> dict[str, int]:
        """Events per kind (for the chaos report header)."""
        out = {kind.value: 0 for kind in FaultKind}
        for e in self.events:
            out[e.kind.value] += 1
        return out
