"""``repro.faults`` — deterministic fault injection and recovery.

The rotating fabric's dominant real-world failure modes on Virtex-class
parts are configuration-memory upsets (SEUs) and SelectMap write errors
(see PAPERS.md: Carmichael et al. on Virtex SEU correction, Li/Hauck on
reconfiguration management).  This package models them deterministically:

* :class:`FaultSchedule` — a seeded (or explicit) timeline of
  :class:`FaultEvent`\\ s: transient SEUs in loaded containers, mid-write
  bitstream corruption, and permanent container defects;
* :class:`FaultInjector` — delivers the schedule into the simulation
  clock through ``RisppRuntime.advance``, runs the periodic
  readback-scrubber that detects silent corruption, quarantines and
  repairs containers through the normal rotation port (bounded retry,
  exponential backoff), and accumulates :class:`ResilienceStats`;
* :func:`run_chaos_suite` / ``python -m repro chaos`` — seeded chaos
  runs of the bench suites with a deterministic resilience report, a
  verified trace and a functional-equivalence check against the
  fault-free baseline;
* :func:`static_repair_bound` — the provable worst-case
  detect-plus-repair latency (MTTR ceiling) for a library/fabric pair.

Everything is reproducible: same seed, same schedule, same trace, same
report — byte for byte.  The fault model and recovery state machine are
documented in ``docs/faults.md``.
"""

from .chaos import (
    CHAOS_SUITES,
    chaos_ok,
    render_chaos_report,
    run_chaos_suite,
    static_repair_bound,
)
from .injector import FaultInjector
from .model import FaultEvent, FaultKind, FaultSchedule
from .stats import ResilienceStats

__all__ = [
    "CHAOS_SUITES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "ResilienceStats",
    "chaos_ok",
    "render_chaos_report",
    "run_chaos_suite",
    "static_repair_bound",
]
