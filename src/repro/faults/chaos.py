"""Chaos runs: seeded fault campaigns over the shipped suites.

``run_chaos_suite`` drives one of the three repository workloads
(``aes``/``h264``/``synthetic``) twice — once fault-free to fix the
campaign horizon and the functional baseline, once under a
:class:`FaultSchedule` drawn from the seed — then checks three things:

* the chaos trace replays cleanly through rispp-verify (including the
  quarantine/repair rules TRC014/TRC015);
* the run is functionally indistinguishable from the fault-free
  baseline (the AES suite compares ciphertext environments; the SI
  stream suites compare execution counts — every call completes);
* every observed repair landed within :func:`static_repair_bound`, the
  static worst case derived from the scrub period, the port backlog
  bound and the retry backoff ladder.

Reports are plain dicts of JSON-safe deterministic values (no
timestamps), so ``python -m repro chaos --seed N --format json`` is
byte-identical across runs — the acceptance gate of the fault work.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

from ..core.library import SILibrary
from .injector import FaultInjector
from .model import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import MetricRegistry
    from ..recovery import RecoveryPlan
    from ..runtime.manager import RisppRuntime
    from ..sim.integration import CompileAndRunResult

CHAOS_SCHEMA_VERSION = 1
CHAOS_KIND = "rispp-chaos-report"

#: Suites the chaos CLI can fuzz (the same three the verifier ships).
CHAOS_SUITES = ("aes", "h264", "synthetic")


def static_repair_bound(
    library: SILibrary,
    containers: int,
    *,
    scrub_period: int,
    max_retries: int,
    backoff_cycles: int,
    backoff_ladder: "Sequence[int] | None" = None,
) -> int:
    """Sound worst-case injection-to-repair latency, in cycles.

    A transient fault is detected at most ``scrub_period`` cycles after
    injection (the next readback pass).  The repair rotation then rides
    the normal serial port: one attempt costs at most the port backlog
    bound (``containers`` worst-case writes), and every mid-write fault
    costs one more attempt plus its backoff (the explicit ladder when
    configured, exponential doubling of ``backoff_cycles`` otherwise),
    up to ``max_retries`` extra attempts.  Summing the three terms bounds
    the MTTR of every *repaired* container; retired containers never
    count.
    """
    from ..analysis.feasibility import port_backlog_bound

    backlog = port_backlog_bound(library, containers)
    if backoff_ladder is not None:
        backoff_total = sum(backoff_ladder)
    else:
        backoff_total = sum(backoff_cycles * 2**i for i in range(max_retries))
    return scrub_period + (1 + max_retries) * backlog + backoff_total


# -- suite scenarios ----------------------------------------------------------


def _h264_config() -> dict[str, Any]:
    from ..apps.h264 import build_h264_library
    from ..bench.suites import H264_MACROBLOCK_CALLS

    return {
        "library": build_h264_library(),
        "forecasts": [
            ("SATD_4x4", 256.0), ("DCT_4x4", 24.0),
            ("HT_4x4", 1.0), ("HT_2x2", 2.0),
        ],
        "blocks": list(H264_MACROBLOCK_CALLS),
        "containers": 6,
        "rounds": {"quick": 3, "full": 8},
    }


def _synthetic_config() -> dict[str, Any]:
    from ..bench.suites import build_synthetic_library

    return {
        "library": build_synthetic_library(),
        "forecasts": [
            ("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0),
        ],
        "blocks": [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)],
        "containers": 5,
        "rounds": {"quick": 6, "full": 20},
    }


def _run_stream(
    config: dict[str, Any],
    *,
    quick: bool,
    injector: FaultInjector | None,
    metrics: "MetricRegistry | None" = None,
    wrap: Any = None,
) -> "RisppRuntime":
    from ..bench.suites import run_si_stream
    from ..recovery import query

    rounds = config["rounds"]["quick" if quick else "full"]
    runtime = run_si_stream(
        config["library"],
        config["forecasts"],
        config["blocks"],
        containers=config["containers"],
        block_rounds=rounds,
        optimize=True,
        fault_injector=injector,
        metrics=metrics,
        wrap=wrap,
    )
    # Journaled state query: on a resumed run the underlying runtime is
    # already past this point, so the answer must come from the journal.
    end = query(runtime, "last_cycle")
    for si_name, _ in config["forecasts"]:
        runtime.forecast_end(si_name, end)
    return runtime


def _run_aes(
    *,
    injector: FaultInjector | None,
    metrics: "MetricRegistry | None" = None,
    wrap: Any = None,
) -> "CompileAndRunResult":
    from ..apps.aes import (
        build_aes_library,
        build_aes_program,
        default_aes_fdfs,
    )
    from ..sim.integration import compile_and_run

    def env_factory(i: int) -> dict[str, bytes]:
        return {
            "plaintext": bytes([i % 256] * 16),
            "key": bytes([(255 - i) % 256] * 16),
        }

    with warnings.catch_warnings():
        # Library advisories (dominated molecules etc.) belong to `lint`.
        warnings.simplefilter("ignore")
        return compile_and_run(
            build_aes_program(),
            build_aes_library(),
            default_aes_fdfs(),
            containers=6,
            profile_env_factory=env_factory,
            run_env={"plaintext": b"\x21" * 16, "key": b"\x42" * 16},
            profile_runs=2,
            fault_injector=injector,
            metrics=metrics,
            wrap=wrap,
        )


def _quiesce(
    runtime: "RisppRuntime",
    injector: FaultInjector,
    *,
    horizon: int,
    bound: int,
) -> int:
    """Advance past the campaign until recovery fully settles.

    Every scheduled fault lies before ``horizon``; each open episode
    resolves within ``bound`` cycles of its trigger, so a few bound-sized
    steps always drain the port, the scrubber queue and the retry list.
    Returns the cycle the run settled at (the degraded-time cut-off).
    """
    from ..recovery import query

    now = max(query(runtime, "last_cycle"), horizon)
    for _ in range(8):
        now += bound + injector.scrub_period
        runtime.advance(now)
        if (
            query(runtime, "port_idle")
            and query(runtime, "open_episodes") == 0
        ):
            break
    # Not journaled: finalize only runs after the journal is exhausted
    # (the drained handoff re-issues every journaled command first), so
    # a resumed run applies it exactly once, like the original would.
    injector.finalize(now)
    return now


# -- the chaos driver ---------------------------------------------------------


def run_chaos_suite(
    name: str,
    *,
    seed: int,
    fault_rate: float = 5.0,
    quick: bool = False,
    scrub_period: int = 10_000,
    max_retries: int = 3,
    backoff_cycles: int = 1_000,
    survivable_failures: int = 1,
    recovery: "RecoveryPlan | None" = None,
) -> dict[str, Any]:
    """One seeded chaos campaign over a shipped suite; returns the report.

    Deterministic in its arguments: same seed, same report — byte for
    byte once rendered with sorted keys.  A ``recovery`` plan journals
    and checkpoints the chaos run (the fault-free baseline re-runs from
    scratch — it is cheap and deterministic), folds rule TRC016 into the
    report's trace verdict, and keeps the report itself unchanged: a
    cleanly resumed campaign renders byte-identical to an uninterrupted
    one.
    """
    from ..analysis.feasibility import prove_feasibility
    from ..analysis.verify import verify_runtime

    if name not in CHAOS_SUITES:
        raise ValueError(
            f"unknown chaos suite {name!r}; choose from {sorted(CHAOS_SUITES)}"
        )

    # Fault-free reference run: fixes the campaign horizon and the
    # functional baseline the chaos run must match.
    if name == "aes":
        baseline_flow = _run_aes(injector=None)
        baseline_rt = baseline_flow.runtime
        library = baseline_rt.library
        containers = len(baseline_rt.fabric)
    else:
        config = _h264_config() if name == "h264" else _synthetic_config()
        baseline_rt = _run_stream(config, quick=quick, injector=None)
        library = config["library"]
        containers = config["containers"]
    horizon = baseline_rt.trace.last_cycle

    schedule = FaultSchedule.generate(
        seed=seed, horizon=horizon, containers=containers, rate=fault_rate
    )
    injector = FaultInjector(
        schedule,
        scrub_period=scrub_period,
        max_retries=max_retries,
        backoff_cycles=backoff_cycles,
    )
    bound = static_repair_bound(
        library,
        containers,
        scrub_period=scrub_period,
        max_retries=max_retries,
        backoff_cycles=backoff_cycles,
    )

    # The chaos run proper — instrumented, so the report can embed a
    # deterministic telemetry snapshot (the shared ``metrics`` key).
    from ..obs import MetricRegistry
    from ..obs.exporters import snapshot

    registry = MetricRegistry()
    wrap = recovery.wrap if recovery is not None else None
    if name == "aes":
        chaos_flow = _run_aes(injector=injector, metrics=registry, wrap=wrap)
        runtime = chaos_flow.runtime
        functional_match = chaos_flow.result.env == baseline_flow.result.env
    else:
        runtime = _run_stream(
            config, quick=quick, injector=injector, metrics=registry, wrap=wrap
        )
        # Stream suites carry no data environment; "functionally equal"
        # means every SI call completed, exactly as many as fault-free.
        functional_match = (
            runtime.stats.si_executions == baseline_rt.stats.si_executions
        )
    settled_at = _quiesce(runtime, injector, horizon=horizon, bound=bound)

    verify_report = verify_runtime(runtime, subject=f"chaos:{name}")
    if recovery is not None:
        from ..recovery import verify_resume

        verify_report.merge(
            verify_resume(runtime, recovery.store, subject=f"chaos:{name}")
        )
        runtime.close()
    feasibility = prove_feasibility(
        library,
        containers,
        survivable_failures=survivable_failures,
        subject=f"chaos:{name}",
    )
    stats = injector.stats
    mttr_within_bound = stats.mttr_cycles_max <= bound
    return {
        "schema_version": CHAOS_SCHEMA_VERSION,
        "kind": CHAOS_KIND,
        "suite": name,
        "seed": seed,
        "quick": quick,
        "fault_rate": fault_rate,
        "containers": containers,
        "recovery": {
            "scrub_period": scrub_period,
            "max_retries": max_retries,
            "backoff_cycles": backoff_cycles,
            "survivable_failures": survivable_failures,
        },
        "horizon_cycles": horizon,
        "settled_cycle": settled_at,
        "schedule": {
            "events": len(schedule),
            "by_kind": schedule.counts(),
        },
        "resilience": stats.to_dict(),
        "repair_bound_cycles": bound,
        "mttr_within_bound": mttr_within_bound,
        "open_episodes": injector.open_episodes(),
        "trace": {
            "events": len(runtime.trace),
            "verified": verify_report.ok(),
            "findings": [d.render() for d in verify_report.errors()],
        },
        "feasibility": {
            "degraded_warnings": [
                d.render() for d in feasibility.report.by_rule("FEA005")
            ],
        },
        "functional": {
            "checked": True,
            "match": functional_match,
            "si_executions": runtime.stats.si_executions,
            "baseline_si_executions": baseline_rt.stats.si_executions,
        },
        "totals": asdict(runtime.stats),
        "metrics": snapshot(registry, deterministic_only=True),
    }


def chaos_ok(report: dict[str, Any]) -> bool:
    """The pass/fail verdict the CLI and CI turn into an exit code."""
    return bool(
        report["trace"]["verified"]
        and report["mttr_within_bound"]
        and report["functional"]["match"]
        and report["open_episodes"] == 0
    )


def render_chaos_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of one chaos report."""
    res = report["resilience"]
    lines = [
        f"chaos suite {report['suite']!r} "
        f"(seed {report['seed']}, rate {report['fault_rate']}/Mcycle, "
        f"{'quick' if report['quick'] else 'full'})",
        f"  horizon: {report['horizon_cycles']} cycles, "
        f"{report['schedule']['events']} scheduled fault(s) "
        f"{report['schedule']['by_kind']}",
        f"  injected: {res['faults_injected']} "
        f"(transient {res['transients']}, write-error {res['write_errors']}, "
        f"permanent {res['permanents']}; no-effect {res['faults_no_effect']})",
        f"  detected: {res['faults_detected']} "
        f"(overwritten first: {res['faults_overwritten']})",
        f"  quarantined: {res['containers_quarantined']}, "
        f"repaired: {res['containers_repaired']}, "
        f"retired: {res['containers_retired']}",
        f"  retries: {res['rotation_retries']}, "
        f"abandoned jobs: {res['jobs_abandoned']}",
        f"  degraded cycles: {res['degraded_cycles']}, "
        f"SW fallbacks due to faults: {res['sw_fallback_executions']}",
        f"  MTTR: mean {res['mttr_cycles']} cycles, "
        f"max {res['mttr_cycles_max']} "
        f"(static bound {report['repair_bound_cycles']}: "
        f"{'within' if report['mttr_within_bound'] else 'EXCEEDED'})",
        f"  trace: {report['trace']['events']} event(s), "
        f"verified: {report['trace']['verified']}",
    ]
    for finding in report["trace"]["findings"]:
        lines.append(f"    {finding}")
    for warning in report["feasibility"]["degraded_warnings"]:
        lines.append(f"  {warning}")
    functional = report["functional"]
    lines.append(
        f"  functional vs fault-free baseline: "
        f"{'match' if functional['match'] else 'MISMATCH'} "
        f"({functional['si_executions']} SI executions)"
    )
    lines.append(f"  verdict: {'PASS' if chaos_ok(report) else 'FAIL'}")
    return "\n".join(lines)
