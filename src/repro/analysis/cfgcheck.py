"""CFG profile well-formedness checks (rules CFG001..CFG007).

The §4 forecast pipeline consumes a profiled BB graph; its probability
and distance solvers assume a stochastically well-formed profile.  These
checks verify that shape statically:

* CFG001 — the graph names an entry block that exists;
* CFG002 — per block, out-edge probabilities sum to 1 (the branch
  distribution the reach-probability Markov solvers integrate);
* CFG003 — every edge probability lies in [0, 1];
* CFG004 — blocks unreachable from the entry (their forecast stats are
  vacuous: probability 0, distance ∞);
* CFG005 — the SCC segmentation is a partition of the block set (the
  paper's "tree of strongly connected components" precondition);
* CFG006 — profile counts (block executions, edge traversals) are
  non-negative;
* CFG007 — flow conservation of a profiled graph: a non-entry block's
  execution count matches its incoming traversals, a non-exit block's
  its outgoing ones (trace-derived profiles always satisfy this; a
  violation means the counts were edited or merged inconsistently).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..cfg.graph import ControlFlowGraph
from ..cfg.scc import condense
from .diagnostics import Diagnostic
from .registry import LintContext, checker, diag


def _subject(cfg: ControlFlowGraph, ctx: LintContext) -> str:
    return ctx.subject or f"cfg:{len(cfg)}-blocks"


def reachable_from_entry(cfg: ControlFlowGraph) -> set[str]:
    """Blocks reachable from the entry (empty set when no valid entry)."""
    if cfg.entry is None or cfg.entry not in cfg:
        return set()
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.successors(stack.pop()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


@checker("cfg-profile", "cfg", ControlFlowGraph)
def check_cfg(cfg: ControlFlowGraph, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = _subject(cfg, ctx)

    if cfg.entry is None or cfg.entry not in cfg:
        yield diag(
            "CFG001",
            f"entry block {cfg.entry!r} is missing from the graph",
            subject=subject, location="entry", entry=cfg.entry,
        )
    else:
        reachable = reachable_from_entry(cfg)
        for block_id in cfg.block_ids():
            if block_id not in reachable:
                yield diag(
                    "CFG004",
                    f"block {block_id!r} is unreachable from the entry "
                    f"{cfg.entry!r}",
                    subject=subject, location=f"block {block_id}",
                    block=block_id,
                )

    for block in cfg.blocks():
        if block.exec_count < 0:
            yield diag(
                "CFG006",
                f"block {block.block_id!r} has a negative execution count "
                f"({block.exec_count})",
                subject=subject, location=f"block {block.block_id}",
                block=block.block_id, count=block.exec_count,
            )
    for edge in cfg.edges():
        if edge.count < 0:
            yield diag(
                "CFG006",
                f"edge {edge.src!r}->{edge.dst!r} has a negative traversal "
                f"count ({edge.count})",
                subject=subject, location=f"edge {edge.src}->{edge.dst}",
                src=edge.src, dst=edge.dst, count=edge.count,
            )

    for block_id in cfg.block_ids():
        successors = cfg.successors(block_id)
        if not successors:
            continue
        probabilities = [cfg.edge_probability(block_id, s) for s in successors]
        for succ, p in zip(successors, probabilities):
            if p < -ctx.tolerance or p > 1 + ctx.tolerance:
                yield diag(
                    "CFG003",
                    f"edge {block_id!r}->{succ!r} has probability {p!r}, "
                    "outside [0, 1]",
                    subject=subject, location=f"edge {block_id}->{succ}",
                    src=block_id, dst=succ, probability=p,
                )
        total = sum(probabilities)
        if abs(total - 1.0) > ctx.tolerance:
            yield diag(
                "CFG002",
                f"out-edge probabilities of block {block_id!r} sum to "
                f"{total!r}, not 1",
                subject=subject, location=f"block {block_id}",
                block=block_id, total=total,
            )

    yield from _check_scc_partition(cfg, subject)
    yield from _check_flow_conservation(cfg, subject)


def _check_scc_partition(cfg: ControlFlowGraph, subject: str) -> Iterator[Diagnostic]:
    """CFG005: the condensation's SCCs must partition the block set."""
    condensation = condense(cfg)
    block_ids = set(cfg.block_ids())
    seen: dict[str, int] = {}
    for node in condensation.nodes:
        for member in node.members:
            if member not in block_ids:
                yield diag(
                    "CFG005",
                    f"SCC {node.scc_id} contains unknown block {member!r}",
                    subject=subject, location=f"scc {node.scc_id}",
                    scc=node.scc_id, block=member,
                )
            elif member in seen:
                yield diag(
                    "CFG005",
                    f"block {member!r} appears in SCC {seen[member]} and "
                    f"SCC {node.scc_id}",
                    subject=subject, location=f"block {member}",
                    block=member, sccs=[seen[member], node.scc_id],
                )
            else:
                seen[member] = node.scc_id
            if condensation.scc_of.get(member) != node.scc_id and member in block_ids:
                yield diag(
                    "CFG005",
                    f"block {member!r} is mapped to SCC "
                    f"{condensation.scc_of.get(member)} but listed in SCC "
                    f"{node.scc_id}",
                    subject=subject, location=f"block {member}",
                    block=member, scc=node.scc_id,
                )
    for missing in sorted(block_ids - set(seen)):
        yield diag(
            "CFG005",
            f"block {missing!r} is covered by no SCC",
            subject=subject, location=f"block {missing}", block=missing,
        )


def _check_flow_conservation(
    cfg: ControlFlowGraph, subject: str
) -> Iterator[Diagnostic]:
    """CFG007: profiled execution counts must match edge traversals."""
    if all(e.count == 0 for e in cfg.edges()):
        return  # unprofiled graph: nothing to conserve
    # Each profiled run enters once at the entry and may stop anywhere
    # (exit blocks, max-block cutoffs), so a per-block outflow deficit of
    # up to one per run is legitimate.
    entry_runs = 0
    if cfg.entry is not None and cfg.entry in cfg:
        entry_runs = cfg.get(cfg.entry).exec_count
    for block in cfg.blocks():
        block_id = block.block_id
        preds = cfg.predecessors(block_id)
        succs = cfg.successors(block_id)
        if preds and block_id != cfg.entry:
            inflow = sum(cfg.edge(p, block_id).count for p in preds)
            if inflow != block.exec_count:
                yield diag(
                    "CFG007",
                    f"block {block_id!r} executed {block.exec_count} times "
                    f"but its incoming edges carry {inflow} traversals",
                    subject=subject, location=f"block {block_id}",
                    block=block_id, exec_count=block.exec_count, inflow=inflow,
                )
        if succs:
            outflow = sum(cfg.edge(block_id, s).count for s in succs)
            deficit = block.exec_count - outflow
            if deficit < 0 or deficit > entry_runs:
                yield diag(
                    "CFG007",
                    f"block {block_id!r} executed {block.exec_count} times "
                    f"but its outgoing edges carry {outflow} traversals",
                    subject=subject, location=f"block {block_id}",
                    block=block_id, exec_count=block.exec_count,
                    outflow=outflow,
                )
