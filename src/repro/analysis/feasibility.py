"""Static worst-case rotation-latency prover (rules FEA001..FEA005).

From a molecule library, an Atom Container budget and (optionally) a
Forecast placement alone — *no simulation* — the prover derives:

* a **per-SI worst-case rotation latency**: for every loadable hardware
  molecule the atoms beyond the static baseline follow from the lattice
  residual (§3.1, ``restricted(m) ∸ baseline``); writing them through the
  single SelectMap port costs the sum of their bitstream latencies, and
  the serial queue in front of them is bounded by the other containers'
  worst bitstream (pending jobs reserve distinct containers, so at most
  ``C - k`` foreign writes can precede the ``k`` of our molecule);
* **upgrade starvation** (FEA001): a forecast whose hot spot is closer
  than the *cheapest* hardware upgrade — even an idle port cannot write
  the minimal molecule in time, so the FDF's break-even assumption can
  never hold for it;
* **dead molecules / atoms** (FEA002/FEA003): molecules whose container
  demand exceeds the platform or that need an atom kind without a
  bitstream can never be loaded by any reachable schedule, and atom
  kinds used only by such molecules never reach a container at all.

FEA004 is informational: it publishes the proven bounds (the bench and
verify drivers cross-check them against observed rotation latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from ..core.library import SILibrary
from ..core.si import MoleculeImpl, SpecialInstruction
from ..hardware.atom_specs import SELECTMAP_BYTES_PER_US
from ..hardware.reconfig import ReconfigurationPort
from .diagnostics import Diagnostic, DiagnosticReport
from .registry import FeasibilityArtifact, LintContext, checker, diag


def rotation_cycle_table(
    library: SILibrary,
    *,
    core_mhz: float = 100.0,
    bytes_per_us: float | None = None,
) -> dict[str, int]:
    """Rotation latency (cycles) per rotatable atom kind of the library.

    Kinds without a bitstream size are omitted — they can never be
    written through the port, which the prover reports as dead.
    """
    port = ReconfigurationPort(
        library.catalogue,
        core_mhz=core_mhz,
        bytes_per_us=(
            bytes_per_us if bytes_per_us is not None else SELECTMAP_BYTES_PER_US
        ),
    )
    table: dict[str, int] = {}
    for kind in library.catalogue.reconfigurable_kinds():
        if kind.bitstream_bytes > 0:
            table[kind.name] = port.rotation_cycles(kind.name)
    return table


@dataclass(frozen=True)
class MoleculeFeasibility:
    """Static verdict on one hardware molecule."""

    si_name: str
    index: int
    cycles: int
    #: Atom instances beyond the static baseline (what rotations must load).
    demand: dict[str, int]
    container_demand: int
    #: Serial port time to write the demand; ``None`` when unwritable.
    write_cycles: int | None
    loadable: bool
    reason: str = ""


@dataclass(frozen=True)
class SIRotationBound:
    """Proven worst-case rotation latency of one SI's hardware upgrade."""

    si_name: str
    loadable: bool
    #: Demand vector of the worst loadable molecule.
    demand: dict[str, int]
    #: Port time writing that molecule's own atoms.
    write_cycles: int
    #: Worst-case wait behind foreign writes ((C - k) * max bitstream).
    queue_cycles: int
    #: Cheapest path to *any* hardware speedup (idle port, minimal
    #: molecule); ``None`` when no molecule is loadable at all.
    min_upgrade_cycles: int | None

    @property
    def bound_cycles(self) -> int:
        return self.write_cycles + self.queue_cycles

    def to_dict(self) -> dict[str, object]:
        return {
            "si": self.si_name,
            "loadable": self.loadable,
            "demand": dict(self.demand),
            "write_cycles": self.write_cycles,
            "queue_cycles": self.queue_cycles,
            "bound_cycles": self.bound_cycles,
            "min_upgrade_cycles": self.min_upgrade_cycles,
        }


@dataclass
class FeasibilityResult:
    """Everything the prover derived for one (library, containers) pair."""

    containers: int
    max_rotation_cycles: int
    port_backlog_cycles: int
    bounds: dict[str, SIRotationBound]
    molecules: list[MoleculeFeasibility]
    report: DiagnosticReport

    def to_dict(self) -> dict[str, object]:
        return {
            "containers": self.containers,
            "max_rotation_cycles": self.max_rotation_cycles,
            "port_backlog_cycles": self.port_backlog_cycles,
            "per_si": {
                name: bound.to_dict() for name, bound in self.bounds.items()
            },
            "dead_molecules": [
                {"si": m.si_name, "molecule": m.index, "reason": m.reason}
                for m in self.molecules
                if not m.loadable
            ],
        }


def _molecule_feasibility(
    library: SILibrary,
    si: SpecialInstruction,
    index: int,
    impl: MoleculeImpl,
    containers: int,
    table: dict[str, int],
) -> MoleculeFeasibility:
    baseline = library.baseline_molecule()
    beyond = library.restricted_to_reconfigurable(impl.molecule) - baseline
    demand = beyond.as_dict()
    container_demand = library.container_demand(impl.molecule)
    unwritable = sorted(k for k in beyond.kinds_used() if k not in table)
    if unwritable:
        return MoleculeFeasibility(
            si_name=si.name, index=index, cycles=impl.cycles, demand=demand,
            container_demand=container_demand, write_cycles=None,
            loadable=False,
            reason=f"atom kind(s) {unwritable} have no bitstream",
        )
    write = sum(count * table[kind] for kind, count in demand.items())
    if container_demand > containers:
        return MoleculeFeasibility(
            si_name=si.name, index=index, cycles=impl.cycles, demand=demand,
            container_demand=container_demand, write_cycles=write,
            loadable=False,
            reason=(
                f"needs {container_demand} containers, platform has "
                f"{containers}"
            ),
        )
    return MoleculeFeasibility(
        si_name=si.name, index=index, cycles=impl.cycles, demand=demand,
        container_demand=container_demand, write_cycles=write, loadable=True,
    )


def prove_feasibility(
    library: SILibrary,
    containers: int,
    *,
    placements: object = (),
    core_mhz: float = 100.0,
    bytes_per_us: float | None = None,
    survivable_failures: int | None = None,
    subject: str = "",
) -> FeasibilityResult:
    """Run the static prover; returns bounds plus a diagnostic report.

    ``placements`` is a sequence of
    :class:`~repro.forecast.placement.ForecastPoint` (anything exposing
    ``si_name``, ``block_id`` and ``distance``); it unlocks the FEA001
    starvation rule.  ``survivable_failures`` (``k``) unlocks the FEA005
    degraded-mode rule: with ``k`` containers lost to faults, the
    remaining ``containers - k`` must still hold every forecast SI's
    largest loadable molecule, or a chaos run silently degrades to
    all-software execution.
    """
    if containers < 0:
        raise ValueError("container count cannot be negative")
    if survivable_failures is not None and survivable_failures < 0:
        raise ValueError("survivable-failure budget cannot be negative")
    table = rotation_cycle_table(
        library, core_mhz=core_mhz, bytes_per_us=bytes_per_us
    )
    max_rot = max(table.values(), default=0)
    report = DiagnosticReport()
    molecules: list[MoleculeFeasibility] = []
    bounds: dict[str, SIRotationBound] = {}

    for si in library:
        per_si: list[MoleculeFeasibility] = []
        for index, impl in enumerate(si.implementations):
            verdict = _molecule_feasibility(
                library, si, index, impl, containers, table
            )
            molecules.append(verdict)
            per_si.append(verdict)
            if not verdict.loadable:
                report.append(diag(
                    "FEA002",
                    f"molecule {index} of SI {si.name!r} "
                    f"({verdict.cycles} cycles) can never be loaded: "
                    f"{verdict.reason}",
                    subject=subject,
                    location=f"SI {si.name} / molecule {index}",
                    si=si.name,
                    molecule=index,
                    reason=verdict.reason,
                ))
        loadable = [
            m for m in per_si if m.loadable and m.write_cycles is not None
        ]
        if loadable:
            worst = max(loadable, key=lambda m: (m.write_cycles or 0))
            write = worst.write_cycles or 0
            jobs = sum(worst.demand.values())
            queue = max(0, containers - jobs) * max_rot
            min_upgrade = min(m.write_cycles or 0 for m in loadable)
            bounds[si.name] = SIRotationBound(
                si_name=si.name, loadable=True, demand=dict(worst.demand),
                write_cycles=write, queue_cycles=queue,
                min_upgrade_cycles=min_upgrade,
            )
        else:
            bounds[si.name] = SIRotationBound(
                si_name=si.name, loadable=False, demand={},
                write_cycles=0, queue_cycles=0, min_upgrade_cycles=None,
            )
        bound = bounds[si.name]
        report.append(diag(
            "FEA004",
            f"SI {si.name!r}: worst-case rotation latency "
            f"{bound.bound_cycles} cycles "
            f"(write {bound.write_cycles} + queue {bound.queue_cycles})"
            if bound.loadable
            else f"SI {si.name!r}: no loadable hardware molecule",
            subject=subject,
            location=f"SI {si.name}",
            **bound.to_dict(),
        ))

    # Dead atoms: kinds demanded beyond the baseline only by molecules
    # that can never be loaded never reach a container.
    users: dict[str, list[MoleculeFeasibility]] = {}
    for verdict in molecules:
        for kind in verdict.demand:
            users.setdefault(kind, []).append(verdict)
    for kind in sorted(users):
        if all(not m.loadable for m in users[kind]):
            dead_sis = sorted({m.si_name for m in users[kind]})
            report.append(diag(
                "FEA003",
                f"atom kind {kind!r} is demanded only by unloadable "
                f"molecules (of SIs {dead_sis}); no reachable schedule "
                "ever rotates it in",
                subject=subject,
                location=f"atom {kind}",
                atom=kind,
                sis=dead_sis,
            ))

    # Upgrade starvation: the FDF assumed the rotation amortises before
    # the hot spot, but even an idle port cannot make it in time.
    for point in placements:  # type: ignore[attr-defined]
        si_name = getattr(point, "si_name", None)
        if si_name is None or si_name not in library:
            continue
        distance = float(getattr(point, "distance", 0.0))
        bound = bounds[si_name]
        if bound.min_upgrade_cycles is None:
            report.append(diag(
                "FEA001",
                f"forecast for SI {si_name!r} at block "
                f"{getattr(point, 'block_id', '?')!r} can never be "
                "satisfied: the SI has no loadable hardware molecule",
                subject=subject,
                location=f"block {getattr(point, 'block_id', '?')}",
                si=si_name,
            ))
        elif distance < bound.min_upgrade_cycles:
            report.append(diag(
                "FEA001",
                f"forecast for SI {si_name!r} at block "
                f"{getattr(point, 'block_id', '?')!r} fires "
                f"{distance:.0f} cycles before its hot spot, but the "
                f"cheapest hardware upgrade needs "
                f"{bound.min_upgrade_cycles} cycles even on an idle port",
                subject=subject,
                location=f"block {getattr(point, 'block_id', '?')}",
                si=si_name,
                distance=distance,
                min_upgrade_cycles=bound.min_upgrade_cycles,
            ))

    # Degraded-mode feasibility: after k container failures the surviving
    # fabric must still hold each (forecast) SI's largest loadable
    # molecule — otherwise a chaos run quietly falls back to software.
    if survivable_failures is not None:
        degraded = containers - survivable_failures
        forecast_sis = sorted(
            {
                name
                for name in (
                    getattr(point, "si_name", None)
                    for point in placements  # type: ignore[attr-defined]
                )
                if name is not None and name in library
            }
        ) or sorted(si.name for si in library)
        loadable_by_si: dict[str, list[MoleculeFeasibility]] = {}
        for verdict in molecules:
            if verdict.loadable:
                loadable_by_si.setdefault(verdict.si_name, []).append(verdict)
        for si_name in forecast_sis:
            best = loadable_by_si.get(si_name)
            if not best:
                continue  # no loadable molecule at all: FEA002/FEA004 cover it
            largest = max(best, key=lambda m: (m.container_demand, -m.cycles))
            if largest.container_demand > degraded:
                report.append(diag(
                    "FEA005",
                    f"SI {si_name!r}: largest loadable molecule needs "
                    f"{largest.container_demand} containers, but surviving "
                    f"{survivable_failures} container failure(s) leaves only "
                    f"{degraded} of {containers} — the fabric degrades below "
                    "the SI's full hardware molecule",
                    subject=subject,
                    location=f"SI {si_name}",
                    si=si_name,
                    container_demand=largest.container_demand,
                    degraded_containers=degraded,
                    survivable_failures=survivable_failures,
                ))

    return FeasibilityResult(
        containers=containers,
        max_rotation_cycles=max_rot,
        port_backlog_cycles=containers * max_rot,
        bounds=bounds,
        molecules=molecules,
        report=report,
    )


def port_backlog_bound(library: SILibrary, containers: int) -> int:
    """Sound bound on any single rotation's request-to-finish latency.

    Every pending job reserves a distinct container, so at most
    ``containers`` jobs (this one included) ever sit on the serial port,
    each writing for at most the worst bitstream latency.  Container
    failures only *pull jobs forward* (the queue gap closes), so the
    bound survives fault injection.
    """
    table = rotation_cycle_table(library)
    return containers * max(table.values(), default=0)


@checker("feasibility-prover", "feasibility", FeasibilityArtifact)
def check_feasibility(
    artifact: FeasibilityArtifact, ctx: LintContext
) -> Iterator[Diagnostic]:
    subject = artifact.subject or ctx.subject or "feasibility"
    result = prove_feasibility(
        artifact.library,
        artifact.containers,
        placements=artifact.placements,
        core_mhz=artifact.core_mhz,
        bytes_per_us=artifact.bytes_per_us,
        survivable_failures=artifact.survivable_failures,
        subject=subject,
    )
    yield from result.report
