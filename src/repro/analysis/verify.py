"""rispp-verify drivers: replay traces, prove feasibility, golden files.

Three entry points tie the reference machine (:mod:`.machine`) and the
static prover (:mod:`.feasibility`) to the rest of the repository:

* :func:`verify_runtime` / :func:`verify_trace` — check a live
  :class:`~repro.runtime.manager.RisppRuntime` (the bench harness calls
  this so "optimized == baseline" means *both traces verify* and their
  signatures match, not merely raw list equality);
* :func:`run_verify_suite` — run one of the three shipped scenarios
  (``h264``/``aes``/``synthetic``), verify its trace and prove the
  library's feasibility bounds (``python -m repro verify --suite ...``);
* :func:`golden_from_runtime` / :func:`write_golden` /
  :func:`load_golden` — serialise a verified run to a golden-trace JSON
  file that CI archives and re-verifies (``--emit-golden`` /
  ``--trace``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..core.library import SILibrary
from ..hardware.energy import EnergyModel
from ..sim.trace import Event, EventKind
from .diagnostics import DiagnosticReport
from .feasibility import FeasibilityResult, prove_feasibility
from .registry import LintContext, TraceArtifact, run_checks

if TYPE_CHECKING:
    from ..runtime.manager import RisppRuntime

GOLDEN_SCHEMA_VERSION = 1
GOLDEN_KIND = "rispp-golden-trace"

#: Suites the verify CLI can run end to end (also valid golden libraries).
VERIFY_SUITES = ("aes", "h264", "synthetic")


def build_library(name: str) -> SILibrary:
    """The shipped library behind one suite/golden-trace name."""
    if name == "h264":
        from ..apps.h264 import build_h264_library

        return build_h264_library()
    if name == "aes":
        from ..apps.aes import build_aes_library

        return build_aes_library()
    if name == "synthetic":
        from ..bench.suites import build_synthetic_library

        return build_synthetic_library()
    if name.startswith("explore-"):
        from .explore import build_explore_library

        return build_explore_library(name)
    raise ValueError(
        f"unknown library {name!r}; choose from "
        f"{sorted(VERIFY_SUITES) + ['explore-small', 'explore-tiny']}"
    )


# -- trace verification -------------------------------------------------------


def verify_trace(
    events: "Sequence[Event]",
    library: SILibrary,
    *,
    containers: int,
    core_mhz: float = 100.0,
    bytes_per_us: float | None = None,
    static_multiplicity: int = 16,
    totals: "dict[str, float] | None" = None,
    energy_model: EnergyModel | None = None,
    subject: str = "trace",
) -> DiagnosticReport:
    """Replay ``events`` against the reference machine; return findings."""
    artifact = TraceArtifact(
        events=events,
        library=library,
        containers=containers,
        core_mhz=core_mhz,
        bytes_per_us=bytes_per_us,
        static_multiplicity=static_multiplicity,
        totals=totals,
        energy_model=energy_model,
        subject=subject,
    )
    return run_checks(
        artifact, context=LintContext(subject=subject), families=("trace",)
    )


def verify_runtime(
    runtime: "RisppRuntime", *, subject: str = "runtime"
) -> DiagnosticReport:
    """Verify a live runtime's trace, totals and energy accounting."""
    return verify_trace(
        runtime.trace.events,
        runtime.library,
        containers=len(runtime.fabric),
        core_mhz=runtime.port.core_mhz,
        bytes_per_us=runtime.port.bytes_per_us,
        static_multiplicity=runtime.fabric.static_multiplicity,
        totals=asdict(runtime.stats),
        energy_model=runtime.energy_model,
        subject=subject,
    )


# -- golden traces ------------------------------------------------------------


@dataclass
class GoldenTrace:
    """A deserialised golden-trace file, ready to verify."""

    suite: str
    library_name: str
    artifact: TraceArtifact


def golden_from_runtime(
    runtime: "RisppRuntime", *, suite: str, library_name: str | None = None
) -> dict[str, object]:
    """Serialise one finished run to the golden-trace JSON schema."""
    energy = runtime.energy_model
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "kind": GOLDEN_KIND,
        "suite": suite,
        "library": library_name if library_name is not None else suite,
        "containers": len(runtime.fabric),
        "core_mhz": runtime.port.core_mhz,
        "bytes_per_us": runtime.port.bytes_per_us,
        "static_multiplicity": runtime.fabric.static_multiplicity,
        "totals": asdict(runtime.stats),
        "energy_model": asdict(energy) if energy is not None else None,
        "events": [
            {
                "cycle": e.cycle,
                "kind": e.kind.value,
                "task": e.task,
                "si": e.si,
                "detail": dict(e.detail),
            }
            for e in runtime.trace.events
        ],
    }


def write_golden(golden: "dict[str, object]", path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=None, separators=(",", ":"))
        fh.write("\n")


def load_golden(path: str) -> GoldenTrace:
    """Load and validate a golden-trace file; rebuilds its library."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return golden_from_dict(data)


def golden_from_dict(data: "dict[str, object]") -> GoldenTrace:
    if data.get("kind") != GOLDEN_KIND:
        raise ValueError(
            f"not a golden-trace file (kind={data.get('kind')!r})"
        )
    if data.get("schema_version") != GOLDEN_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported golden-trace schema {data.get('schema_version')!r}"
        )
    library_name = str(data["library"])
    library = build_library(library_name)
    raw_energy = data.get("energy_model")
    energy = None
    if isinstance(raw_energy, dict):
        energy = EnergyModel(**raw_energy)
    raw_events = data.get("events")
    if not isinstance(raw_events, list):
        raise ValueError("golden-trace file carries no event list")
    events = [
        Event(
            int(e["cycle"]),
            EventKind(e["kind"]),
            str(e.get("task", "")),
            str(e.get("si", "")),
            dict(e["detail"]) if e.get("detail") else None,
        )
        for e in raw_events
    ]
    totals = data.get("totals")
    artifact = TraceArtifact(
        events=events,
        library=library,
        containers=int(data["containers"]),  # type: ignore[call-overload]
        core_mhz=float(data.get("core_mhz", 100.0)),  # type: ignore[arg-type]
        bytes_per_us=(
            float(data["bytes_per_us"])  # type: ignore[arg-type]
            if data.get("bytes_per_us") is not None
            else None
        ),
        static_multiplicity=int(data.get("static_multiplicity", 16)),  # type: ignore[call-overload]
        totals=dict(totals) if isinstance(totals, dict) else None,
        energy_model=energy,
        subject=f"golden:{data.get('suite', library_name)}",
    )
    return GoldenTrace(
        suite=str(data.get("suite", library_name)),
        library_name=library_name,
        artifact=artifact,
    )


def verify_golden(golden: GoldenTrace) -> DiagnosticReport:
    return run_checks(
        golden.artifact,
        context=LintContext(subject=golden.artifact.subject),
        families=("trace",),
    )


# -- shipped suite scenarios --------------------------------------------------


@dataclass
class VerifyResult:
    """One suite run: trace findings + static feasibility bounds."""

    suite: str
    report: DiagnosticReport
    feasibility: FeasibilityResult
    trace_events: int
    runtime: "RisppRuntime | None" = None

    def exit_code(self) -> int:
        return self.report.exit_code()


def _scenario_h264(*, quick: bool) -> "tuple[RisppRuntime, list[object]]":
    from ..apps.h264 import build_h264_library
    from ..bench.suites import H264_MACROBLOCK_CALLS, run_si_stream

    library = build_h264_library()
    forecasts = [
        ("SATD_4x4", 256.0), ("DCT_4x4", 24.0),
        ("HT_4x4", 1.0), ("HT_2x2", 2.0),
    ]
    runtime = run_si_stream(
        library,
        forecasts,
        list(H264_MACROBLOCK_CALLS),
        containers=6,
        block_rounds=3 if quick else 8,
        optimize=True,
        energy_model=EnergyModel(),
    )
    for si_name, _ in forecasts:
        runtime.forecast_end(si_name, runtime.trace.last_cycle)
    runtime.advance(runtime.trace.last_cycle + 10_000_000)
    return runtime, []


def _scenario_aes(*, quick: bool) -> "tuple[RisppRuntime, list[object]]":
    import warnings

    from ..apps.aes import (
        build_aes_library,
        build_aes_program,
        default_aes_fdfs,
    )
    from ..sim.integration import compile_and_run

    del quick  # one AES run is already CI-sized

    def env_factory(i: int) -> dict[str, bytes]:
        return {
            "plaintext": bytes([i % 256] * 16),
            "key": bytes([(255 - i) % 256] * 16),
        }

    with warnings.catch_warnings():
        # Library advisories (dominated molecules etc.) belong to `lint`.
        warnings.simplefilter("ignore")
        flow = compile_and_run(
            build_aes_program(),
            build_aes_library(),
            default_aes_fdfs(),
            containers=6,
            profile_env_factory=env_factory,
            run_env={"plaintext": b"\x21" * 16, "key": b"\x42" * 16},
            profile_runs=2,
            energy_model=EnergyModel(),
        )
    flow.runtime.advance(flow.runtime.trace.last_cycle + 10_000_000)
    return flow.runtime, list(flow.annotation.all_points())


def _scenario_synthetic(*, quick: bool) -> "tuple[RisppRuntime, list[object]]":
    from ..bench.suites import build_synthetic_library
    from ..runtime.manager import RisppRuntime

    library = build_synthetic_library()
    runtime = RisppRuntime(
        library, 5, core_mhz=100.0, energy_model=EnergyModel()
    )
    forecasts = [("SI0", 16.0), ("SI1", 8.0), ("SI2", 4.0), ("SI3", 2.0)]
    blocks = [("SI0", 16), ("SI1", 8), ("SI2", 4), ("SI3", 2)]
    rounds = 6 if quick else 12
    now = 10_000
    for round_no in range(rounds):
        for si_name, expected in forecasts:
            runtime.forecast(si_name, now, expected=expected)
        for si_name, calls in blocks:
            for _ in range(calls):
                now += runtime.execute_si(si_name, now)
        if round_no == rounds // 2:
            # Fault injection: the dropped/resequenced port queue and the
            # replacement rotations must all verify too.
            runtime.fail_container(1, now)
            now += 1_000
        # Inter-round gap sized so rotations (~58k-87k cycles each on the
        # serial port) land mid-run and the SW -> HW upgrade is exercised.
        now += 60_000
    runtime.forecast_end("SI3", now)
    runtime.advance(now + 10_000_000)
    return runtime, []


_SCENARIOS = {
    "aes": _scenario_aes,
    "h264": _scenario_h264,
    "synthetic": _scenario_synthetic,
}


def run_verify_suite(
    name: str,
    *,
    quick: bool = False,
    survivable_failures: int | None = None,
) -> VerifyResult:
    """Run one shipped scenario, verify its trace, prove feasibility."""
    try:
        scenario = _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown verify suite {name!r}; choose from {sorted(_SCENARIOS)}"
        ) from None
    runtime, placements = scenario(quick=quick)
    report = verify_runtime(runtime, subject=f"suite:{name}")
    feasibility = prove_feasibility(
        runtime.library,
        len(runtime.fabric),
        placements=placements,
        core_mhz=runtime.port.core_mhz,
        bytes_per_us=runtime.port.bytes_per_us,
        survivable_failures=survivable_failures,
        subject=f"suite:{name}",
    )
    return VerifyResult(
        suite=name,
        report=report,
        feasibility=feasibility,
        trace_events=len(runtime.trace),
        runtime=runtime,
    )


def verify_golden_result(golden: GoldenTrace) -> VerifyResult:
    """Verify a golden trace and prove its library's feasibility."""
    artifact = golden.artifact
    report = verify_golden(golden)
    feasibility = prove_feasibility(
        artifact.library,
        artifact.containers,
        core_mhz=artifact.core_mhz,
        bytes_per_us=artifact.bytes_per_us,
        subject=artifact.subject,
    )
    return VerifyResult(
        suite=golden.suite,
        report=report,
        feasibility=feasibility,
        trace_events=len(list(artifact.events)),
    )
