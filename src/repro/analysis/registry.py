"""Checker registry and artifact dispatch of rispp-lint.

The rule *catalogue* lives in :mod:`.rules` (one declaration per
invariant, shared by lint, verify and explore); this module re-exports it
for backwards compatibility.  Checker functions (one per artifact aspect)
register via the :func:`checker` decorator and are dispatched by artifact
type through :func:`run_checks` — the single driver the CLI, the
integration layer and the tests share.

Artifact types understood by the driver:

* :class:`~repro.core.library.SILibrary` — lattice + library checks;
* :class:`~repro.cfg.graph.ControlFlowGraph` — CFG profile checks;
* :class:`ForecastArtifact` — forecast placements against their CFG;
* :class:`ScheduleArtifact` — a dataflow schedule against its molecule;
* :class:`RotationLog` — reconfiguration-port job sequences;
* :class:`TraceArtifact` — a recorded run-time event trace, replayed
  against the reference state machine (rispp-verify);
* :class:`FeasibilityArtifact` — a library + FC placement + AC count,
  proven feasible without simulation (rispp-verify).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from .diagnostics import Diagnostic, DiagnosticReport
from .rules import (  # noqa: F401 - re-exported for backwards compatibility
    RULES,
    Rule,
    diag,
    expand_selectors,
    rule,
    rules_of_family,
)

if TYPE_CHECKING:  # imported lazily to keep the module import-light
    from ..cfg.graph import ControlFlowGraph
    from ..core.atom import AtomCatalogue
    from ..core.library import SILibrary
    from ..core.molecule import Molecule
    from ..core.schedule import Dataflow, Schedule
    from ..forecast.fdf import ForecastDecisionFunction
    from ..forecast.placement import ForecastPoint
    from ..hardware.energy import EnergyModel
    from ..hardware.reconfig import ReconfigurationPort, RotationJob
    from ..runtime.events import EventBus
    from ..sim.trace import Event, Trace


# ---------------------------------------------------------------------------
# Artifact wrappers
# ---------------------------------------------------------------------------


@dataclass
class ForecastArtifact:
    """Forecast placements to be checked against their CFG.

    ``points`` accepts a raw placement list or anything exposing
    ``all_points()`` (a :class:`~repro.forecast.annotate.ForecastAnnotation`).
    ``fdfs`` and ``library`` unlock the offset and SI-membership rules.
    """

    cfg: "ControlFlowGraph"
    points: Sequence["ForecastPoint"]
    fdfs: "dict[str, ForecastDecisionFunction] | None" = None
    library: "SILibrary | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        if hasattr(self.points, "all_points"):
            self.points = self.points.all_points()  # type: ignore[union-attr]
        self.points = list(self.points)


@dataclass
class ScheduleArtifact:
    """A list-scheduler result bound to the dataflow and molecule it priced."""

    dataflow: "Dataflow"
    molecule: "Molecule"
    schedule: "Schedule"
    unconstrained_kinds: tuple[str, ...] = ()
    issue_overhead: int = 0
    subject: str = ""


@dataclass
class RotationLog:
    """A sequence of reconfiguration-port jobs (one port, serialised)."""

    jobs: Sequence["RotationJob"]
    catalogue: "AtomCatalogue | None" = None
    #: Expected rotation latency per atom kind (cycles); derived from the
    #: port when built via :meth:`from_port`, else optional.
    rotation_cycles: dict[str, int] | None = None
    subject: str = ""

    @classmethod
    def from_port(cls, port: "ReconfigurationPort", *, subject: str = "") -> "RotationLog":
        cycles: dict[str, int] = {}
        for job in port.jobs:
            if job.atom not in cycles:
                try:
                    cycles[job.atom] = port.rotation_cycles(job.atom)
                except ValueError:
                    pass  # the checker reports static/brandless atoms itself
        return cls(
            jobs=list(port.jobs),
            catalogue=port.catalogue,
            rotation_cycles=cycles,
            subject=subject,
        )


@dataclass
class TraceArtifact:
    """A recorded run-time trace plus the platform that produced it.

    ``events`` accepts a :class:`~repro.sim.trace.Trace` or a plain event
    sequence (e.g. deserialised from a golden-trace file).  ``totals``
    unlocks the TRC007 accounting rules (pass the runtime's
    ``RuntimeStats`` as a dict); ``energy_model`` additionally checks the
    energy totals.
    """

    events: "Sequence[Event] | Trace"
    library: "SILibrary"
    containers: int
    core_mhz: float = 100.0
    bytes_per_us: "float | None" = None
    static_multiplicity: int = 16
    totals: "dict[str, float] | None" = None
    energy_model: "EnergyModel | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        self.events = list(self.events)


@dataclass
class FeasibilityArtifact:
    """A library + AC budget (+ optional FC placement) to prove feasible.

    The prover needs no simulation: worst-case rotation latencies follow
    from the molecule lattice and the serialised-port model alone.
    """

    library: "SILibrary"
    containers: int
    placements: "Sequence[ForecastPoint]" = ()
    core_mhz: float = 100.0
    bytes_per_us: "float | None" = None
    #: Survivable-failure budget for the FEA005 degraded-mode rule;
    #: ``None`` disables the rule.
    survivable_failures: "int | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        self.placements = list(self.placements)


@dataclass
class EventBusArtifact:
    """A runtime event bus whose wiring is held to the documented default.

    ``bus`` defaults to a fresh :func:`~repro.runtime.events.default_bus`
    — the wiring every :class:`~repro.runtime.manager.RisppRuntime` gets
    unless a caller injects its own.
    """

    bus: "EventBus | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        if self.bus is None:
            from ..runtime.events import default_bus

            self.bus = default_bus()


# ---------------------------------------------------------------------------
# Checker registry and driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintContext:
    """Cross-checker configuration shared by one :func:`run_checks` run."""

    #: Atom Containers of the target platform; ``None`` skips capacity rules.
    containers: int | None = None
    #: Numeric tolerance for probability sums and float comparisons.
    tolerance: float = 1e-6
    #: Fallback subject label for artifacts that don't carry their own.
    subject: str = ""


CheckFn = Callable[[object, LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Checker:
    """A registered check: name, rule family, artifact dispatch, function."""

    name: str
    family: str
    applies_to: tuple[type[object], ...]
    fn: CheckFn

    def run(self, artifact: object, context: LintContext) -> list[Diagnostic]:
        return list(self.fn(artifact, context))


_CHECKERS: dict[str, Checker] = {}


def checker(
    name: str, family: str, applies_to: type[object] | tuple[type[object], ...]
) -> Callable[[CheckFn], CheckFn]:
    """Register a checker function under ``name`` for the given artifact types."""
    types = applies_to if isinstance(applies_to, tuple) else (applies_to,)

    def register(fn: CheckFn) -> CheckFn:
        if name in _CHECKERS:
            raise ValueError(f"duplicate checker {name!r}")
        _CHECKERS[name] = Checker(name=name, family=family, applies_to=types, fn=fn)
        return fn

    return register


def checkers(family: str | None = None) -> list[Checker]:
    """All registered checkers, optionally restricted to one rule family."""
    _ensure_loaded()
    found = list(_CHECKERS.values())
    if family is not None:
        found = [c for c in found if c.family == family]
    return found


def checkers_for(artifact: object) -> list[Checker]:
    """The checkers whose dispatch types match ``artifact``."""
    _ensure_loaded()
    return [c for c in _CHECKERS.values() if isinstance(artifact, c.applies_to)]


def _ensure_loaded() -> None:
    """Import the checker modules exactly once (registration side effects)."""
    from . import (  # noqa: F401
        cfgcheck,
        eventcheck,
        feasibility,
        forecastcheck,
        lattice,
        library,
        schedcheck,
        tracecheck,
    )


def _iter_artifacts(artifacts: object) -> Iterator[object]:
    if isinstance(artifacts, (list, tuple)):
        for artifact in artifacts:
            yield artifact
    else:
        yield artifacts


def run_checks(
    artifacts: object,
    *,
    context: LintContext | None = None,
    families: Iterable[str] | None = None,
) -> DiagnosticReport:
    """Run every applicable registered checker over the given artifact(s).

    ``artifacts`` is one artifact or a list/tuple of them; unknown artifact
    types are ignored (callers may mix domain objects freely).  ``families``
    restricts the run to the named rule families.
    """
    ctx = context if context is not None else LintContext()
    wanted = set(families) if families is not None else None
    report = DiagnosticReport()
    for artifact in _iter_artifacts(artifacts):
        for chk in checkers_for(artifact):
            if wanted is not None and chk.family not in wanted:
                continue
            report.extend(chk.run(artifact, ctx))
    return report
