"""Rule catalogue and checker registry of rispp-lint.

Every invariant the checker enforces is declared once, here, as a
:class:`Rule` with a stable ID, a default severity and the paper section
it formalises.  Checker functions (one per artifact aspect) register via
the :func:`checker` decorator and are dispatched by artifact type through
:func:`run_checks` — the single driver the CLI, the integration layer and
the tests share.

Artifact types understood by the driver:

* :class:`~repro.core.library.SILibrary` — lattice + library checks;
* :class:`~repro.cfg.graph.ControlFlowGraph` — CFG profile checks;
* :class:`ForecastArtifact` — forecast placements against their CFG;
* :class:`ScheduleArtifact` — a dataflow schedule against its molecule;
* :class:`RotationLog` — reconfiguration-port job sequences;
* :class:`TraceArtifact` — a recorded run-time event trace, replayed
  against the reference state machine (rispp-verify);
* :class:`FeasibilityArtifact` — a library + FC placement + AC count,
  proven feasible without simulation (rispp-verify).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from .diagnostics import Diagnostic, DiagnosticReport, Severity

if TYPE_CHECKING:  # imported lazily to keep the module import-light
    from ..cfg.graph import ControlFlowGraph
    from ..core.atom import AtomCatalogue
    from ..core.library import SILibrary
    from ..core.molecule import Molecule
    from ..core.schedule import Dataflow, Schedule
    from ..forecast.fdf import ForecastDecisionFunction
    from ..forecast.placement import ForecastPoint
    from ..hardware.energy import EnergyModel
    from ..hardware.reconfig import ReconfigurationPort, RotationJob
    from ..sim.trace import Event, Trace


# ---------------------------------------------------------------------------
# The rule catalogue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One declared invariant."""

    rule_id: str
    family: str
    severity: Severity
    title: str
    paper_ref: str = ""


RULES: dict[str, Rule] = {}


def _rule(rule_id: str, family: str, severity: Severity, title: str, paper_ref: str) -> None:
    if rule_id in RULES:  # pragma: no cover - catalogue authoring error
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULES[rule_id] = Rule(rule_id, family, severity, title, paper_ref)


# -- lattice family (§3.1 / §3.2): the Molecule vector algebra --------------
_rule("LAT001", "lattice", Severity.ERROR,
      "union/intersection absorption law violated", "§3.1")
_rule("LAT002", "lattice", Severity.ERROR,
      "residual operator violates its bounding laws", "§3.1")
_rule("LAT003", "lattice", Severity.ERROR,
      "Rep(S) outside its lattice bounds [inf(S), sup(S)]", "§3.2")
_rule("LAT004", "lattice", Severity.ERROR,
      "molecule lives outside its SI's atom space", "§3.1")

# -- library family: SI/catalogue coherence ---------------------------------
_rule("LIB001", "library", Severity.ERROR,
      "SI has no usable software molecule", "§3.2")
_rule("LIB002", "library", Severity.ERROR,
      "SI built over a different atom space than its library", "§3.1")
_rule("LIB003", "library", Severity.WARNING,
      "hardware molecule is Pareto-dominated", "Fig. 13")
_rule("LIB004", "library", Severity.ERROR,
      "SI cannot fit the configured Atom Containers", "§3/§5")
_rule("LIB005", "library", Severity.WARNING,
      "hardware molecule exceeds the configured Atom Containers", "§3/§5")
_rule("LIB006", "library", Severity.WARNING,
      "hardware molecule not faster than the software molecule", "§4.1")
_rule("LIB007", "library", Severity.ERROR,
      "SI offers no hardware molecule", "§3.2")
_rule("LIB008", "library", Severity.WARNING,
      "atom kind unused by every SI of the library", "Fig. 2")

# -- cfg family (§4): profile well-formedness -------------------------------
_rule("CFG001", "cfg", Severity.ERROR,
      "entry block missing or unknown", "§4")
_rule("CFG002", "cfg", Severity.ERROR,
      "out-edge probabilities do not sum to 1", "§4.1")
_rule("CFG003", "cfg", Severity.ERROR,
      "edge probability outside [0, 1]", "§4.1")
_rule("CFG004", "cfg", Severity.WARNING,
      "block unreachable from the entry", "§4")
_rule("CFG005", "cfg", Severity.ERROR,
      "SCC segmentation is not a partition of the blocks", "§4.1")
_rule("CFG006", "cfg", Severity.ERROR,
      "negative profile count", "§4.1")
_rule("CFG007", "cfg", Severity.WARNING,
      "profiled edge counts violate flow conservation", "§4.1")

# -- forecast family (§4.1/§4.2): FC placements -----------------------------
_rule("FC001", "forecast", Severity.ERROR,
      "forecast point targets an unknown block", "§4.2")
_rule("FC002", "forecast", Severity.ERROR,
      "forecast names an SI absent from the library", "§4.2")
_rule("FC003", "forecast", Severity.ERROR,
      "no use of the SI is reachable from the forecast block", "§4.2")
_rule("FC004", "forecast", Severity.ERROR,
      "forecast initial values out of range", "§4.2")
_rule("FC005", "forecast", Severity.ERROR,
      "expected executions below the FDF break-even offset", "§4.1")
_rule("FC006", "forecast", Severity.WARNING,
      "forecast block does not dominate any use of its SI", "§4.2")
_rule("FC007", "forecast", Severity.ERROR,
      "duplicate forecast for the same (block, SI) pair", "§4.2")

# -- schedule family (§3 / §5): dataflow schedules and rotations ------------
_rule("SCH001", "schedule", Severity.ERROR,
      "two operations overlap on one atom instance", "§3")
_rule("SCH002", "schedule", Severity.ERROR,
      "operation placed on an atom instance the molecule does not offer", "§3")
_rule("SCH003", "schedule", Severity.ERROR,
      "operation timing violates the dataflow (dependency or latency)", "§3")
_rule("SCH004", "schedule", Severity.ERROR,
      "makespan below the latest operation finish", "§3")
_rule("SCH005", "schedule", Severity.ERROR,
      "scheduled operations do not match the dataflow", "§3")
_rule("ROT001", "schedule", Severity.ERROR,
      "rotations overlap on the single reconfiguration port", "§5")
_rule("ROT002", "schedule", Severity.ERROR,
      "overlapping reservations of one Atom Container", "§5")
_rule("ROT003", "schedule", Severity.ERROR,
      "rotation job timing inconsistent", "§5")
_rule("ROT004", "schedule", Severity.ERROR,
      "rotation of a static atom kind", "§3")

# -- trace family (§3/§5): model-based replay of recorded run traces --------
_rule("TRC001", "trace", Severity.ERROR,
      "event cycles negative or out of order", "§5")
_rule("TRC002", "trace", Severity.ERROR,
      "rotations overlap on the single reconfiguration port", "§5")
_rule("TRC003", "trace", Severity.ERROR,
      "event references an unknown or failed Atom Container", "§5")
_rule("TRC004", "trace", Severity.ERROR,
      "Atom Container occupancy inconsistent with the replayed state", "§3/§5")
_rule("TRC005", "trace", Severity.ERROR,
      "SI executed without its molecule's atoms resident", "§3.1")
_rule("TRC006", "trace", Severity.ERROR,
      "SI execution mode/latency matches no library molecule", "§3.2")
_rule("TRC007", "trace", Severity.ERROR,
      "run totals inconsistent with the per-event deltas", "§1/§2")
_rule("TRC008", "trace", Severity.ERROR,
      "rotation timing deviates from the SelectMap port model", "§5")
_rule("TRC009", "trace", Severity.ERROR,
      "rotation of a static or unknown atom kind", "§3")
_rule("TRC010", "trace", Severity.ERROR,
      "event references an SI absent from the library", "§4.2")
_rule("TRC011", "trace", Severity.ERROR,
      "execution-mode switch bookkeeping inconsistent", "Fig. 6")
_rule("TRC012", "trace", Severity.ERROR,
      "forecast carries an invalid expectation or priority", "§4.2")
_rule("TRC013", "trace", Severity.ERROR,
      "SI did not execute the best available molecule", "§5")
_rule("TRC014", "trace", Severity.ERROR,
      "fault/recovery lifecycle inconsistent with the replayed state", "§5")
_rule("TRC015", "trace", Severity.ERROR,
      "quarantined Atom Container serves work", "§5")

# -- feasibility family (§4/§5): static worst-case rotation guarantees ------
_rule("FEA001", "feasibility", Severity.WARNING,
      "forecast can never be satisfied before its hot spot", "§4.1")
_rule("FEA002", "feasibility", Severity.WARNING,
      "molecule can never be loaded on this platform", "§3/§5")
_rule("FEA003", "feasibility", Severity.WARNING,
      "atom kind only used by unloadable molecules", "§3")
_rule("FEA004", "feasibility", Severity.INFO,
      "worst-case rotation latency bound", "§5")
_rule("FEA005", "feasibility", Severity.WARNING,
      "degraded fabric cannot hold an SI's largest hardware molecule", "§5")


def rule(rule_id: str) -> Rule:
    """Look up a rule; raises ``KeyError`` for unknown IDs."""
    return RULES[rule_id]


def rules_of_family(family: str) -> list[Rule]:
    return [r for r in RULES.values() if r.family == family]


def expand_selectors(selectors: Iterable[str]) -> set[str]:
    """Expand ``--select``/``--ignore`` patterns into concrete rule IDs.

    A selector matches case-insensitively by rule-ID prefix, so ``TRC``
    selects the whole trace family and ``trc005`` one rule.  An empty or
    unmatched selector raises ``ValueError`` — a typo silently selecting
    nothing would defeat the point of filtering.
    """
    expanded: set[str] = set()
    for selector in selectors:
        prefix = selector.strip().upper()
        matched = [rid for rid in RULES if prefix and rid.startswith(prefix)]
        if not matched:
            raise ValueError(
                f"selector {selector!r} matches no rule ID "
                f"(families: {sorted({r.family for r in RULES.values()})})"
            )
        expanded.update(matched)
    return expanded


def diag(
    rule_id: str,
    message: str,
    *,
    subject: str = "",
    location: str = "",
    severity: Severity | None = None,
    **context: object,
) -> Diagnostic:
    """Build a diagnostic for a catalogued rule (default severity from it)."""
    r = RULES[rule_id]
    return Diagnostic(
        rule_id=rule_id,
        severity=severity if severity is not None else r.severity,
        message=message,
        subject=subject,
        location=location,
        context=context,
    )


# ---------------------------------------------------------------------------
# Artifact wrappers
# ---------------------------------------------------------------------------


@dataclass
class ForecastArtifact:
    """Forecast placements to be checked against their CFG.

    ``points`` accepts a raw placement list or anything exposing
    ``all_points()`` (a :class:`~repro.forecast.annotate.ForecastAnnotation`).
    ``fdfs`` and ``library`` unlock the offset and SI-membership rules.
    """

    cfg: "ControlFlowGraph"
    points: Sequence["ForecastPoint"]
    fdfs: "dict[str, ForecastDecisionFunction] | None" = None
    library: "SILibrary | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        if hasattr(self.points, "all_points"):
            self.points = self.points.all_points()  # type: ignore[union-attr]
        self.points = list(self.points)


@dataclass
class ScheduleArtifact:
    """A list-scheduler result bound to the dataflow and molecule it priced."""

    dataflow: "Dataflow"
    molecule: "Molecule"
    schedule: "Schedule"
    unconstrained_kinds: tuple[str, ...] = ()
    issue_overhead: int = 0
    subject: str = ""


@dataclass
class RotationLog:
    """A sequence of reconfiguration-port jobs (one port, serialised)."""

    jobs: Sequence["RotationJob"]
    catalogue: "AtomCatalogue | None" = None
    #: Expected rotation latency per atom kind (cycles); derived from the
    #: port when built via :meth:`from_port`, else optional.
    rotation_cycles: dict[str, int] | None = None
    subject: str = ""

    @classmethod
    def from_port(cls, port: "ReconfigurationPort", *, subject: str = "") -> "RotationLog":
        cycles: dict[str, int] = {}
        for job in port.jobs:
            if job.atom not in cycles:
                try:
                    cycles[job.atom] = port.rotation_cycles(job.atom)
                except ValueError:
                    pass  # the checker reports static/brandless atoms itself
        return cls(
            jobs=list(port.jobs),
            catalogue=port.catalogue,
            rotation_cycles=cycles,
            subject=subject,
        )


@dataclass
class TraceArtifact:
    """A recorded run-time trace plus the platform that produced it.

    ``events`` accepts a :class:`~repro.sim.trace.Trace` or a plain event
    sequence (e.g. deserialised from a golden-trace file).  ``totals``
    unlocks the TRC007 accounting rules (pass the runtime's
    ``RuntimeStats`` as a dict); ``energy_model`` additionally checks the
    energy totals.
    """

    events: "Sequence[Event] | Trace"
    library: "SILibrary"
    containers: int
    core_mhz: float = 100.0
    bytes_per_us: "float | None" = None
    static_multiplicity: int = 16
    totals: "dict[str, float] | None" = None
    energy_model: "EnergyModel | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        self.events = list(self.events)


@dataclass
class FeasibilityArtifact:
    """A library + AC budget (+ optional FC placement) to prove feasible.

    The prover needs no simulation: worst-case rotation latencies follow
    from the molecule lattice and the serialised-port model alone.
    """

    library: "SILibrary"
    containers: int
    placements: "Sequence[ForecastPoint]" = ()
    core_mhz: float = 100.0
    bytes_per_us: "float | None" = None
    #: Survivable-failure budget for the FEA005 degraded-mode rule;
    #: ``None`` disables the rule.
    survivable_failures: "int | None" = None
    subject: str = ""

    def __post_init__(self) -> None:
        self.placements = list(self.placements)


# ---------------------------------------------------------------------------
# Checker registry and driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintContext:
    """Cross-checker configuration shared by one :func:`run_checks` run."""

    #: Atom Containers of the target platform; ``None`` skips capacity rules.
    containers: int | None = None
    #: Numeric tolerance for probability sums and float comparisons.
    tolerance: float = 1e-6
    #: Fallback subject label for artifacts that don't carry their own.
    subject: str = ""


CheckFn = Callable[[object, LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Checker:
    """A registered check: name, rule family, artifact dispatch, function."""

    name: str
    family: str
    applies_to: tuple[type, ...]
    fn: CheckFn

    def run(self, artifact: object, context: LintContext) -> list[Diagnostic]:
        return list(self.fn(artifact, context))


_CHECKERS: dict[str, Checker] = {}


def checker(
    name: str, family: str, applies_to: type | tuple[type, ...]
) -> Callable[[CheckFn], CheckFn]:
    """Register a checker function under ``name`` for the given artifact types."""
    types = applies_to if isinstance(applies_to, tuple) else (applies_to,)

    def register(fn: CheckFn) -> CheckFn:
        if name in _CHECKERS:
            raise ValueError(f"duplicate checker {name!r}")
        _CHECKERS[name] = Checker(name=name, family=family, applies_to=types, fn=fn)
        return fn

    return register


def checkers(family: str | None = None) -> list[Checker]:
    """All registered checkers, optionally restricted to one rule family."""
    _ensure_loaded()
    found = list(_CHECKERS.values())
    if family is not None:
        found = [c for c in found if c.family == family]
    return found


def checkers_for(artifact: object) -> list[Checker]:
    """The checkers whose dispatch types match ``artifact``."""
    _ensure_loaded()
    return [c for c in _CHECKERS.values() if isinstance(artifact, c.applies_to)]


def _ensure_loaded() -> None:
    """Import the checker modules exactly once (registration side effects)."""
    from . import (  # noqa: F401
        cfgcheck,
        feasibility,
        forecastcheck,
        lattice,
        library,
        schedcheck,
        tracecheck,
    )


def _iter_artifacts(artifacts: object) -> Iterator[object]:
    if isinstance(artifacts, (list, tuple)):
        for artifact in artifacts:
            yield artifact
    else:
        yield artifacts


def run_checks(
    artifacts: object,
    *,
    context: LintContext | None = None,
    families: Iterable[str] | None = None,
) -> DiagnosticReport:
    """Run every applicable registered checker over the given artifact(s).

    ``artifacts`` is one artifact or a list/tuple of them; unknown artifact
    types are ignored (callers may mix domain objects freely).  ``families``
    restricts the run to the named rule families.
    """
    ctx = context if context is not None else LintContext()
    wanted = set(families) if families is not None else None
    report = DiagnosticReport()
    for artifact in _iter_artifacts(artifacts):
        for chk in checkers_for(artifact):
            if wanted is not None and chk.family not in wanted:
                continue
            report.extend(chk.run(artifact, ctx))
    return report
