"""Library coherence checks (rules LIB001..LIB008).

An :class:`~repro.core.library.SILibrary` is the contract between the
compile-time forecast pipeline and the run-time manager; these checks
verify that contract without running a simulation:

* LIB001 — every SI has a usable software molecule (the plain-ISA
  fallback the gradual SW→HW upgrade path relies on);
* LIB002 — all SIs share the library's :class:`AtomSpace`;
* LIB003 — Pareto-dominated hardware molecules (dead catalogue weight:
  the run-time's ``best_available`` will never pick them);
* LIB004 — the SI's *minimal* molecule must fit the configured Atom
  Container count, else the SI can never leave software;
* LIB005 — individual molecules beyond the container count (reachable
  only on a larger platform);
* LIB006 — hardware molecules not faster than software can never
  amortise a rotation (the FDF's ``T_sw > T_hw`` precondition);
* LIB007 — an SI without hardware molecules (post-construction mutation);
* LIB008 — catalogue atom kinds no SI uses (dead fabric area).

Capacity rules (LIB004/LIB005) only run when the :class:`LintContext`
carries a container count — a library is not wrong per se on a smaller
platform, merely unusable there.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.library import SILibrary
from ..core.si import SpecialInstruction
from .diagnostics import Diagnostic
from .registry import LintContext, checker, diag


def _subject(library: SILibrary, ctx: LintContext) -> str:
    return ctx.subject or f"library:{len(library)}-SIs"


def _dominating_impl(si: SpecialInstruction, idx: int) -> int | None:
    """Index of a molecule that component-wise dominates molecule ``idx``.

    Molecule ``j`` dominates ``i`` when ``m_j <= m_i`` (it fits whenever
    ``i`` fits) and is not slower, with at least one strict improvement —
    then ``best_available`` can never select ``i``.
    """
    impl = si.implementations[idx]
    for j, other in enumerate(si.implementations):
        if j == idx:
            continue
        if other.molecule.space != impl.molecule.space:
            continue
        if (
            other.molecule <= impl.molecule
            and other.cycles <= impl.cycles
            and (other.molecule != impl.molecule or other.cycles < impl.cycles)
        ):
            return j
    return None


@checker("library-coherence", "library", SILibrary)
def check_library(library: SILibrary, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = _subject(library, ctx)
    reconfigurable = library.catalogue.reconfigurable_names()

    for si in library:
        loc = f"SI {si.name}"
        if si.space != library.space:
            yield diag(
                "LIB002",
                f"SI {si.name!r} was built over atom space {si.space!r}, "
                f"not the library's {library.space!r}",
                subject=subject, location=loc, si=si.name,
            )
            continue  # the remaining checks assume a shared space

        if si.software_cycles < 1:
            yield diag(
                "LIB001",
                f"SI {si.name!r} has software_cycles={si.software_cycles}; "
                "the software molecule must cost at least one cycle",
                subject=subject, location=loc, si=si.name,
                software_cycles=si.software_cycles,
            )

        if not si.implementations:
            yield diag(
                "LIB007",
                f"SI {si.name!r} offers no hardware molecule",
                subject=subject, location=loc, si=si.name,
            )
            continue

        for idx, impl in enumerate(si.implementations):
            impl_loc = f"{loc} / molecule {idx}"
            dominator = _dominating_impl(si, idx)
            if dominator is not None:
                yield diag(
                    "LIB003",
                    f"molecule {idx} of SI {si.name!r} "
                    f"({abs(impl.molecule)} atoms, {impl.cycles} cycles) is "
                    f"dominated by molecule {dominator}: the run-time's "
                    "best_available can never pick it",
                    subject=subject, location=impl_loc, si=si.name,
                    molecule=idx, dominated_by=dominator,
                    atoms=abs(impl.molecule), cycles=impl.cycles,
                )
            if impl.cycles >= si.software_cycles > 0:
                yield diag(
                    "LIB006",
                    f"molecule {idx} of SI {si.name!r} needs {impl.cycles} "
                    f"cycles, not faster than software ({si.software_cycles}); "
                    "a rotation towards it can never amortise",
                    subject=subject, location=impl_loc, si=si.name,
                    molecule=idx, cycles=impl.cycles,
                    software_cycles=si.software_cycles,
                )

        if ctx.containers is not None:
            minimal_demand = min(
                library.container_demand(impl.molecule)
                for impl in si.implementations
            )
            if minimal_demand > ctx.containers:
                yield diag(
                    "LIB004",
                    f"SI {si.name!r} needs at least {minimal_demand} Atom "
                    f"Containers but the platform offers {ctx.containers}; "
                    "the SI can never leave its software molecule",
                    subject=subject, location=loc, si=si.name,
                    minimal_demand=minimal_demand, containers=ctx.containers,
                )
            else:
                for idx, impl in enumerate(si.implementations):
                    demand = library.container_demand(impl.molecule)
                    if demand > ctx.containers:
                        yield diag(
                            "LIB005",
                            f"molecule {idx} of SI {si.name!r} occupies "
                            f"{demand} containers, beyond the platform's "
                            f"{ctx.containers}; it is unreachable here",
                            subject=subject,
                            location=f"{loc} / molecule {idx}",
                            si=si.name, molecule=idx, demand=demand,
                            containers=ctx.containers,
                        )

    used_kinds: set[str] = set()
    for si in library:
        if si.space != library.space:
            continue
        for molecule in si.molecules():
            used_kinds.update(molecule.kinds_used())
    for kind in library.space.kinds:
        if kind not in used_kinds:
            yield diag(
                "LIB008",
                f"atom kind {kind!r} is in the catalogue but no SI molecule "
                "uses it",
                subject=subject, location=f"atom {kind}", kind=kind,
            )
