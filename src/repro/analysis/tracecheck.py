"""Trace replay checker (rules TRC001..TRC013).

The actual model lives in :class:`~repro.analysis.machine.ReferenceMachine`;
this module registers it with the checker registry so a
:class:`~repro.analysis.registry.TraceArtifact` flows through the same
:func:`~repro.analysis.registry.run_checks` driver as every other
artifact (and honours family filtering, contexts and subjects).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from ..sim.trace import Event
from .diagnostics import Diagnostic
from .machine import ReferenceMachine
from .registry import LintContext, TraceArtifact, checker


@checker("trace-replay", "trace", TraceArtifact)
def check_trace(artifact: TraceArtifact, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = artifact.subject or ctx.subject or "trace"
    machine = ReferenceMachine(
        artifact.library,
        artifact.containers,
        core_mhz=artifact.core_mhz,
        bytes_per_us=artifact.bytes_per_us,
        static_multiplicity=artifact.static_multiplicity,
        totals=artifact.totals,
        energy_model=artifact.energy_model,
        subject=subject,
    )
    events: Sequence[Event] = artifact.events  # type: ignore[assignment]
    yield from machine.verify(events)
