"""Event-bus wiring checker (rules EVT001..EVT003).

The runtime core publishes typed events through
:mod:`repro.runtime.events`; the trace byte-identity contract with the
pre-bus loop rests on three structural facts, each machine-checked
here against an :class:`~repro.analysis.registry.EventBusArtifact`:

* **EVT001** — the live bus wiring (per event type, in dispatch order)
  is exactly :data:`~repro.runtime.events.DEFAULT_WIRING`, the
  documented ordering of ``docs/events.md``.
* **EVT002** — for every traced event, the trace recorder runs first
  (:data:`~repro.runtime.events.PRIORITY_TRACE`, strictly below every
  other priority band), so state-mutating handlers cannot perturb what
  lands in the trace row.
* **EVT003** — the event taxonomy covers the trace vocabulary: each
  event's ``TRACE_KIND`` is unique, and every
  :class:`~repro.sim.trace.EventKind` is either produced by exactly one
  bus event or declared bus-external in
  :data:`~repro.runtime.events.NON_BUS_KINDS`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

from .diagnostics import Diagnostic
from .registry import EventBusArtifact, LintContext, checker
from .rules import diag


@checker("event-wiring", "events", EventBusArtifact)
def check_event_bus(
    artifact: EventBusArtifact, ctx: LintContext
) -> Iterator[Diagnostic]:
    from ..runtime.events import (
        DEFAULT_WIRING,
        EVENT_TYPES,
        NON_BUS_KINDS,
        PRIORITY_TRACE,
    )
    from ..sim.trace import EventKind

    bus = artifact.bus
    assert bus is not None  # __post_init__ fills in the default bus
    subject = artifact.subject or ctx.subject or "events:bus"

    # EVT001: live wiring == documented wiring, order included.
    documented: dict[str, list[tuple[int, str]]] = {
        event_type.__name__: [] for event_type in EVENT_TYPES
    }
    for event_type, priority, handler in DEFAULT_WIRING:
        documented[event_type.__name__].append((priority, handler.__name__))
    live = bus.wiring()
    for name, expected in documented.items():
        actual = list(live.get(name, ()))
        if actual != expected:
            yield diag(
                "EVT001",
                f"wiring of {name} diverges from the documented default: "
                f"expected {expected}, bus dispatches {actual}",
                subject=subject,
                location=name,
                expected=[list(e) for e in expected],
                actual=[list(a) for a in actual],
            )

    # EVT002: trace handlers go first, and only they sit in the trace band.
    for event_type in EVENT_TYPES:
        subs = bus.subscriptions(event_type)
        name = event_type.__name__
        if event_type.TRACE_KIND is not None:
            if not subs:
                yield diag(
                    "EVT002",
                    f"traced event {name} has no subscribed handlers; "
                    "its trace rows would silently vanish",
                    subject=subject,
                    location=name,
                )
                continue
            first = subs[0]
            if first.priority != PRIORITY_TRACE:
                yield diag(
                    "EVT002",
                    f"first handler of traced event {name} is "
                    f"{first.name} at priority {first.priority}, not a "
                    f"trace recorder at {PRIORITY_TRACE}",
                    subject=subject,
                    location=name,
                    handler=first.name,
                    priority=first.priority,
                )
        for sub in subs:
            if sub.priority == PRIORITY_TRACE and not sub.name.startswith(
                "_trace"
            ):
                yield diag(
                    "EVT002",
                    f"handler {sub.name} of {name} occupies the trace "
                    "priority band but is not a trace recorder",
                    subject=subject,
                    location=name,
                    handler=sub.name,
                )

    # EVT003: TRACE_KIND is injective and, with NON_BUS_KINDS, covers
    # the whole trace vocabulary.
    kind_sources: dict[EventKind, list[str]] = {}
    for event_type in EVENT_TYPES:
        kind = event_type.TRACE_KIND
        if kind is not None:
            kind_sources.setdefault(kind, []).append(event_type.__name__)
    for kind, sources in sorted(kind_sources.items(), key=lambda kv: kv[0].value):
        if len(sources) > 1:
            yield diag(
                "EVT003",
                f"trace kind {kind.value} is claimed by multiple events: "
                f"{', '.join(sources)}",
                subject=subject,
                location=kind.value,
                events=sources,
            )
    uncovered = sorted(
        k.value for k in EventKind if k not in kind_sources and k not in NON_BUS_KINDS
    )
    if uncovered:
        yield diag(
            "EVT003",
            "trace kinds neither produced by a bus event nor declared "
            f"bus-external: {', '.join(uncovered)}",
            subject=subject,
            kinds=uncovered,
        )
    stale = sorted(
        k.value for k in NON_BUS_KINDS if k in kind_sources
    )
    if stale:
        yield diag(
            "EVT003",
            "trace kinds declared bus-external but produced by a bus "
            f"event: {', '.join(stale)}",
            subject=subject,
            kinds=stale,
        )

    # A duplicate (event, handler) subscription would double-apply state
    # transitions while keeping the wiring table superficially plausible.
    for event_type in EVENT_TYPES:
        names = Counter(s.name for s in bus.subscriptions(event_type))
        for handler_name, count in sorted(names.items()):
            if count > 1:
                yield diag(
                    "EVT001",
                    f"handler {handler_name} is subscribed to "
                    f"{event_type.__name__} {count} times",
                    subject=subject,
                    location=event_type.__name__,
                    handler=handler_name,
                    count=count,
                )
