"""Docs/code cross-checker: keep the prose honest (CI ``docs`` job).

Scans ``docs/*.md`` and ``README.md`` and fails when documentation
references drift from the code:

* ``src/repro/...`` file paths that do not exist in the repository;
* relative markdown links (``[text](path)``) whose target is missing;
* analysis rule IDs (``LAT001`` .. ``AUD011``) absent from the
  :data:`repro.analysis.registry.RULES` registry;
* ``rispp_*`` metric names absent from the :mod:`repro.obs` catalogue;
* catalogue metrics *not documented* in ``docs/observability.md`` — the
  metric table must cover every declared family.

Fenced code blocks are skipped for the rule-ID and metric-name checks:
examples there may legitimately show invalid IDs (e.g. the "unknown
rule" error message in ``docs/analysis.md``).

Run as ``python -m repro.analysis.docs_check [repo_root]``; exit code 0
when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Families of rule IDs the analysis registries declare.
_RULE_ID = re.compile(r"\b(?:LAT|LIB|CFG|FC|SCH|ROT|TRC|FEA|MC|AUD)\d{3}\b")
#: Exported metric names (the ``rispp_`` namespace) as written in prose.
_METRIC_NAME = re.compile(r"\brispp_[a-z][a-z0-9_]*\b")
#: Literal repository paths under the package root.
_SRC_PATH = re.compile(r"\bsrc/repro/[A-Za-z0-9_/.-]*[A-Za-z0-9_]")
#: Markdown inline links: [text](target).
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*(```|~~~)")

#: Metric-name suffixes Prometheus synthesises for histograms; they are
#: valid in prose even though the catalogue only declares the base name.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@dataclass(frozen=True)
class Finding:
    """One documentation defect."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def _doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _iter_lines(path: Path) -> list[tuple[int, str, bool]]:
    """(line_number, text, inside_fenced_code_block) per line."""
    out: list[tuple[int, str, bool]] = []
    fenced = False
    for number, text in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _FENCE.match(text):
            fenced = not fenced
            out.append((number, text, True))
            continue
        out.append((number, text, fenced))
    return out


def _known_metric_names() -> set[str]:
    from ..obs.catalogue import METRICS

    names: set[str] = set()
    for spec in METRICS.values():
        names.add(spec.full_name)
        if spec.type == "histogram":
            for suffix in _HISTOGRAM_SUFFIXES:
                names.add(spec.full_name + suffix)
    return names


def _code_identifiers(root: Path) -> set[str]:
    """``rispp_*`` identifiers appearing in the source tree.

    Docs legitimately reference code named ``rispp_*`` (e.g. the
    ``rispp_area``/``rispp_energy`` functions of ``repro.hardware``);
    exported metric names never appear literally in code (the
    ``rispp_`` namespace is prepended at export time), so a token found
    in the source is a code reference, not a stale metric name.
    """
    found: set[str] = set()
    src = root / "src" / "repro"
    if not src.is_dir():
        return found
    for path in sorted(src.rglob("*.py")):
        found.update(_METRIC_NAME.findall(path.read_text(encoding="utf-8")))
    return found


def _check_file(
    path: Path,
    root: Path,
    rule_ids: set[str],
    metric_names: set[str],
    code_names: set[str],
) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    findings: list[Finding] = []
    for number, text, fenced in _iter_lines(path):
        # Paths and links are checked everywhere — a code block quoting a
        # nonexistent file is just as stale as prose doing it.
        for match in _SRC_PATH.finditer(text):
            target = match.group(0)
            if not (root / target).exists():
                findings.append(
                    Finding(rel, number, f"path {target!r} does not exist")
                )
        for match in _MD_LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                findings.append(
                    Finding(rel, number, f"broken link target {target!r}")
                )
        if fenced:
            continue
        for match in _RULE_ID.finditer(text):
            rule = match.group(0)
            if rule not in rule_ids:
                findings.append(
                    Finding(rel, number, f"unknown rule ID {rule!r}")
                )
        for match in _METRIC_NAME.finditer(text):
            name = match.group(0)
            if name not in metric_names and name not in code_names:
                findings.append(
                    Finding(
                        rel, number,
                        f"metric {name!r} is not declared in the "
                        "repro.obs catalogue",
                    )
                )
    return findings


def _check_observability_coverage(root: Path) -> list[Finding]:
    """Every declared metric family must appear in docs/observability.md."""
    from ..obs.catalogue import METRICS

    doc = root / "docs" / "observability.md"
    rel = doc.relative_to(root).as_posix()
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/observability.md is missing; it must catalogue "
                f"all {len(METRICS)} declared metrics",
            )
        ]
    text = doc.read_text(encoding="utf-8")
    findings: list[Finding] = []
    for spec in METRICS.values():
        if spec.full_name not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"declared metric {spec.full_name!r} is not "
                    "documented in the metric catalogue",
                )
            )
    return findings


#: Rule families whose every member must appear in ``docs/analysis.md``
#: (the verifier TRC/FEA, model-checker MC and source-audit AUD
#: catalogues live there; lint families are documented per-module).
_DOCUMENTED_FAMILIES = ("trace", "feasibility", "explore", "audit")


def _check_rule_coverage(root: Path) -> list[Finding]:
    """Every TRC/FEA/MC/AUD rule must appear in docs/analysis.md."""
    from .registry import rules_of_family

    doc = root / "docs" / "analysis.md"
    rel = doc.relative_to(root).as_posix()
    rules = [r for fam in _DOCUMENTED_FAMILIES for r in rules_of_family(fam)]
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/analysis.md is missing; it must catalogue the "
                f"{len(rules)} verifier/model-checking/audit rules",
            )
        ]
    text = doc.read_text(encoding="utf-8")
    findings: list[Finding] = []
    for r in rules:
        if r.rule_id not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"declared {r.family} rule {r.rule_id!r} is not "
                    "documented in the rule catalogue",
                )
            )
    return findings


def check_docs(root: Path) -> list[Finding]:
    """All documentation findings for the repository at ``root``."""
    from .registry import RULES

    rule_ids = set(RULES)
    metric_names = _known_metric_names()
    code_names = _code_identifiers(root)
    findings: list[Finding] = []
    for path in _doc_files(root):
        findings.extend(
            _check_file(path, root, rule_ids, metric_names, code_names)
        )
    findings.extend(_check_observability_coverage(root))
    findings.extend(_check_rule_coverage(root))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else Path.cwd()
    if not (root / "docs").is_dir():
        print(f"docs-check: no docs/ directory under {root}", file=sys.stderr)
        return 1
    findings = check_docs(root)
    for finding in findings:
        print(finding.render())
    checked = ", ".join(p.name for p in _doc_files(root))
    status = "FAIL" if findings else "OK"
    print(f"docs-check: {status} ({len(findings)} finding(s); checked {checked})")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
