"""Docs/code cross-checker: keep the prose honest (CI ``docs`` job).

Scans ``docs/*.md`` and ``README.md`` and fails when documentation
references drift from the code:

* ``src/repro/...`` file paths that do not exist in the repository;
* relative markdown links (``[text](path)``) whose target is missing;
* analysis rule IDs (``LAT001`` .. ``AUD011``) absent from the
  :data:`repro.analysis.registry.RULES` registry;
* ``rispp_*`` metric names absent from the :mod:`repro.obs` catalogue;
* catalogue metrics *not documented* in ``docs/observability.md`` — the
  metric table must cover every declared family;
* the runtime event taxonomy against ``docs/events.md`` — every bus
  event, handler and priority band documented, no stale names;
* the service surface against ``docs/serving.md`` — every endpoint of
  :data:`repro.serve.ENDPOINTS` and every scenario field documented,
  no phantom endpoints;
* the README CLI table against :data:`repro.cli.TOOL_COMMANDS` — every
  tool has a row, every row names a real tool, and every ``--flag`` a
  row shows exists in that tool's ``--help``.

Fenced code blocks are skipped for the rule-ID and metric-name checks:
examples there may legitimately show invalid IDs (e.g. the "unknown
rule" error message in ``docs/analysis.md``).

Run as ``python -m repro.analysis.docs_check [repo_root]``; exit code 0
when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Families of rule IDs the analysis registries declare.
_RULE_ID = re.compile(r"\b(?:LAT|LIB|CFG|FC|SCH|ROT|TRC|FEA|MC|AUD|EVT)\d{3}\b")
#: Exported metric names (the ``rispp_`` namespace) as written in prose.
_METRIC_NAME = re.compile(r"\brispp_[a-z][a-z0-9_]*\b")
#: Literal repository paths under the package root.
_SRC_PATH = re.compile(r"\bsrc/repro/[A-Za-z0-9_/.-]*[A-Za-z0-9_]")
#: Markdown inline links: [text](target).
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*(```|~~~)")

#: Metric-name suffixes Prometheus synthesises for histograms; they are
#: valid in prose even though the catalogue only declares the base name.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@dataclass(frozen=True)
class Finding:
    """One documentation defect."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def _doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _iter_lines(path: Path) -> list[tuple[int, str, bool]]:
    """(line_number, text, inside_fenced_code_block) per line."""
    out: list[tuple[int, str, bool]] = []
    fenced = False
    for number, text in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _FENCE.match(text):
            fenced = not fenced
            out.append((number, text, True))
            continue
        out.append((number, text, fenced))
    return out


def _known_metric_names() -> set[str]:
    from ..obs.catalogue import METRICS

    names: set[str] = set()
    for spec in METRICS.values():
        names.add(spec.full_name)
        if spec.type == "histogram":
            for suffix in _HISTOGRAM_SUFFIXES:
                names.add(spec.full_name + suffix)
    return names


def _code_identifiers(root: Path) -> set[str]:
    """``rispp_*`` identifiers appearing in the source tree.

    Docs legitimately reference code named ``rispp_*`` (e.g. the
    ``rispp_area``/``rispp_energy`` functions of ``repro.hardware``);
    exported metric names never appear literally in code (the
    ``rispp_`` namespace is prepended at export time), so a token found
    in the source is a code reference, not a stale metric name.
    """
    found: set[str] = set()
    src = root / "src" / "repro"
    if not src.is_dir():
        return found
    for path in sorted(src.rglob("*.py")):
        found.update(_METRIC_NAME.findall(path.read_text(encoding="utf-8")))
    return found


def _check_file(
    path: Path,
    root: Path,
    rule_ids: set[str],
    metric_names: set[str],
    code_names: set[str],
) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    findings: list[Finding] = []
    for number, text, fenced in _iter_lines(path):
        # Paths and links are checked everywhere — a code block quoting a
        # nonexistent file is just as stale as prose doing it.
        for match in _SRC_PATH.finditer(text):
            target = match.group(0)
            if not (root / target).exists():
                findings.append(
                    Finding(rel, number, f"path {target!r} does not exist")
                )
        for match in _MD_LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                findings.append(
                    Finding(rel, number, f"broken link target {target!r}")
                )
        if fenced:
            continue
        for match in _RULE_ID.finditer(text):
            rule = match.group(0)
            if rule not in rule_ids:
                findings.append(
                    Finding(rel, number, f"unknown rule ID {rule!r}")
                )
        for match in _METRIC_NAME.finditer(text):
            name = match.group(0)
            if name not in metric_names and name not in code_names:
                findings.append(
                    Finding(
                        rel, number,
                        f"metric {name!r} is not declared in the "
                        "repro.obs catalogue",
                    )
                )
    return findings


def _check_observability_coverage(root: Path) -> list[Finding]:
    """Every declared metric family must appear in docs/observability.md."""
    from ..obs.catalogue import METRICS

    doc = root / "docs" / "observability.md"
    rel = doc.relative_to(root).as_posix()
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/observability.md is missing; it must catalogue "
                f"all {len(METRICS)} declared metrics",
            )
        ]
    text = doc.read_text(encoding="utf-8")
    findings: list[Finding] = []
    for spec in METRICS.values():
        if spec.full_name not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"declared metric {spec.full_name!r} is not "
                    "documented in the metric catalogue",
                )
            )
    return findings


#: Rule families whose every member must appear in ``docs/analysis.md``
#: (the verifier TRC/FEA, model-checker MC, source-audit AUD and
#: event-bus EVT catalogues live there; the remaining lint families are
#: documented per-module).
_DOCUMENTED_FAMILIES = ("trace", "feasibility", "explore", "audit", "events")


def _check_rule_coverage(root: Path) -> list[Finding]:
    """Every TRC/FEA/MC/AUD rule must appear in docs/analysis.md."""
    from .registry import rules_of_family

    doc = root / "docs" / "analysis.md"
    rel = doc.relative_to(root).as_posix()
    rules = [r for fam in _DOCUMENTED_FAMILIES for r in rules_of_family(fam)]
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/analysis.md is missing; it must catalogue the "
                f"{len(rules)} verifier/model-checking/audit rules",
            )
        ]
    text = doc.read_text(encoding="utf-8")
    findings: list[Finding] = []
    for r in rules:
        if r.rule_id not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"declared {r.family} rule {r.rule_id!r} is not "
                    "documented in the rule catalogue",
                )
            )
    return findings


#: Backticked identifiers in ``docs/events.md`` that look like bus event
#: names (CamelCase ending in the taxonomy's participle vocabulary).
_EVENTISH = re.compile(
    r"`([A-Z][A-Za-z]*(?:Fired|Ended|Executed|Switched|Requested|Completed"
    r"|Reallocated|Failed|Injected|Detected|Quarantined|Repaired|Retried)"
    r"|Tick)`"
)
#: Backticked handler names (``_trace_forecast`` style) in the docs.
_HANDLERISH = re.compile(r"`(_[a-z][a-z0-9_]*)`")
#: Backticked priority-band constants.
_PRIORITYISH = re.compile(r"`(PRIORITY_[A-Z_]+)`")


def _check_events_coverage(root: Path) -> list[Finding]:
    """``docs/events.md`` ↔ the live taxonomy, both directions.

    Forward: every event type, every default-wiring handler and every
    priority band must appear in the doc.  Reverse: every backticked
    event/handler/priority token in the doc must exist in
    :mod:`repro.runtime.events`.
    """
    from ..runtime import events as ev

    doc = root / "docs" / "events.md"
    rel = doc.relative_to(root).as_posix()
    event_names = {t.__name__ for t in ev.EVENT_TYPES}
    handler_names = {handler.__name__ for _, _, handler in ev.DEFAULT_WIRING}
    priority_names = {
        name for name in dir(ev) if name.startswith("PRIORITY_")
    }
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/events.md is missing; it must document the "
                f"{len(event_names)}-event taxonomy and its wiring",
            )
        ]
    findings: list[Finding] = []
    text = doc.read_text(encoding="utf-8")
    for name in sorted(event_names):
        if name not in text:
            findings.append(
                Finding(rel, 1, f"bus event {name!r} is not documented")
            )
    for name in sorted(handler_names):
        if name not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"default-wiring handler {name!r} is not documented",
                )
            )
    for name in sorted(priority_names):
        if name not in text:
            findings.append(
                Finding(rel, 1, f"priority band {name!r} is not documented")
            )
    for number, line, fenced in _iter_lines(doc):
        if fenced:
            continue
        for match in _EVENTISH.finditer(line):
            if match.group(1) not in event_names:
                findings.append(
                    Finding(
                        rel, number,
                        f"unknown bus event {match.group(1)!r}; the "
                        "taxonomy is repro.runtime.events.EVENT_TYPES",
                    )
                )
        for match in _HANDLERISH.finditer(line):
            if match.group(1) not in handler_names:
                findings.append(
                    Finding(
                        rel, number,
                        f"unknown handler {match.group(1)!r}; not part "
                        "of repro.runtime.events.DEFAULT_WIRING",
                    )
                )
        for match in _PRIORITYISH.finditer(line):
            if match.group(1) not in priority_names:
                findings.append(
                    Finding(
                        rel, number,
                        f"unknown priority band {match.group(1)!r}",
                    )
                )
    return findings


#: ``METHOD /path`` endpoint tokens as written in ``docs/serving.md``.
_ENDPOINTISH = re.compile(r"\b(GET|POST|PUT|DELETE|PATCH|HEAD)\s+(/[a-z]*)")


def _check_serving_coverage(root: Path) -> list[Finding]:
    """``docs/serving.md`` ↔ the daemon surface, both directions.

    Forward: every endpoint of :data:`repro.serve.ENDPOINTS` and every
    scenario field of :data:`repro.serve.SCENARIO_DEFAULTS` must appear
    in the doc.  Reverse: every ``METHOD /path`` token the doc shows
    must be a real endpoint.
    """
    from ..serve import ENDPOINTS, SCENARIO_DEFAULTS

    doc = root / "docs" / "serving.md"
    rel = doc.relative_to(root).as_posix()
    endpoints = {(method, path) for method, path, _ in ENDPOINTS}
    if not doc.exists():
        return [
            Finding(
                rel, 1,
                "docs/serving.md is missing; it must document the "
                f"{len(endpoints)} service endpoints",
            )
        ]
    findings: list[Finding] = []
    text = doc.read_text(encoding="utf-8")
    for method, path in sorted(endpoints):
        if f"{method} {path}" not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"endpoint '{method} {path}' is not documented",
                )
            )
    for field in sorted(SCENARIO_DEFAULTS):
        if f"`{field}`" not in text:
            findings.append(
                Finding(
                    rel, 1,
                    f"scenario request field {field!r} is not documented",
                )
            )
    for number, line, _fenced in _iter_lines(doc):
        # Endpoint tokens are checked inside code fences too: a fenced
        # curl example hitting a phantom endpoint is exactly the drift
        # this check exists to catch.
        for match in _ENDPOINTISH.finditer(line):
            if (match.group(1), match.group(2)) not in endpoints:
                findings.append(
                    Finding(
                        rel, number,
                        f"unknown endpoint '{match.group(1)} "
                        f"{match.group(2)}'; the surface is "
                        "repro.serve.ENDPOINTS",
                    )
                )
    return findings


#: CLI long flags (``--flag``) as written in README table rows.
_FLAG = re.compile(r"--[a-z][a-z0-9-]*")
#: Non-tool README table commands that need no TOOL_COMMANDS entry.
_CLI_EXTRAS = frozenset({"list", "all"})


def _check_cli_surface(root: Path) -> list[Finding]:
    """README CLI table ↔ :data:`repro.cli.TOOL_COMMANDS`, both directions.

    Every tool command must have a table row; every row's command must
    be a real tool (or ``list``/``all``/a ``<figN>`` placeholder); every
    ``--flag`` a tool's row mentions must appear in that tool's
    ``--help`` output.
    """
    from ..cli import TOOL_COMMANDS, tool_help

    readme = root / "README.md"
    rel = "README.md"
    if not readme.exists():
        return [Finding(rel, 1, "README.md is missing")]
    findings: list[Finding] = []
    seen: set[str] = set()
    help_flags: dict[str, set[str]] = {}
    for number, line, fenced in _iter_lines(readme):
        if fenced or not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if not cells or not cells[0].startswith("`"):
            continue
        first = re.match(r"`([^`]+)`", cells[0])
        if first is None:
            continue
        words = first.group(1).split()
        command = words[0]
        # Only command-shaped tokens: README also tables filenames
        # (examples/) and paths, which are not CLI rows.
        if "." in command or "/" in command:
            continue
        if command.startswith("<") or command in _CLI_EXTRAS:
            continue
        if command not in TOOL_COMMANDS:
            findings.append(
                Finding(
                    rel, number,
                    f"CLI table row names unknown tool {command!r}; "
                    "the surface is repro.cli.TOOL_COMMANDS",
                )
            )
            continue
        seen.add(command)
        if command not in help_flags:
            help_flags[command] = set(_FLAG.findall(tool_help(command)))
        for flag in _FLAG.findall(line):
            if flag not in help_flags[command]:
                findings.append(
                    Finding(
                        rel, number,
                        f"flag {flag!r} is not accepted by "
                        f"'repro {command}' (per its --help)",
                    )
                )
    for command in sorted(set(TOOL_COMMANDS) - seen):
        findings.append(
            Finding(
                rel, 1,
                f"tool 'repro {command}' has no row in the README "
                "CLI table",
            )
        )
    return findings


def check_docs(root: Path) -> list[Finding]:
    """All documentation findings for the repository at ``root``."""
    from .registry import RULES

    rule_ids = set(RULES)
    metric_names = _known_metric_names()
    code_names = _code_identifiers(root)
    findings: list[Finding] = []
    for path in _doc_files(root):
        findings.extend(
            _check_file(path, root, rule_ids, metric_names, code_names)
        )
    findings.extend(_check_observability_coverage(root))
    findings.extend(_check_rule_coverage(root))
    findings.extend(_check_events_coverage(root))
    findings.extend(_check_serving_coverage(root))
    findings.extend(_check_cli_surface(root))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else Path.cwd()
    if not (root / "docs").is_dir():
        print(f"docs-check: no docs/ directory under {root}", file=sys.stderr)
        return 1
    findings = check_docs(root)
    for finding in findings:
        print(finding.render())
    checked = ", ".join(p.name for p in _doc_files(root))
    status = "FAIL" if findings else "OK"
    print(f"docs-check: {status} ({len(findings)} finding(s); checked {checked})")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
