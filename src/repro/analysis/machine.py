"""The reference state machine of the RISPP run-time model (rispp-verify).

:class:`ReferenceMachine` replays a recorded event trace (any
:class:`~repro.sim.trace.Trace`) against an *independent* model of the
paper's hardware semantics: Atom Containers hold at most one Atom, every
rotation serialises through the single SelectMap port (request fixes
``started = max(now, busy_until)``, eviction happens at the start, the
Atom becomes usable at the finish), failed containers drop their jobs and
the queue closes the gap, and an SI execution may only use a molecule
whose atom vector is ≤ the reconstructed fabric state (§3.1's residual
``o ∸ m`` must be zero).  Divergence between the trace and the model is
emitted as :class:`~repro.analysis.diagnostics.Diagnostic` findings
(rules ``TRC001``–``TRC013``); replay continues best-effort after a
finding so one corruption does not mask independent ones.

The machine is deliberately *not* the runtime manager: it never plans,
selects or replaces — it only re-derives hardware state from the events
themselves.  That keeps it a genuine second opinion: a planner bug that
issues an impossible rotation cannot also hide it here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from ..core.library import SILibrary
from ..core.molecule import Molecule
from ..core.si import SpecialInstruction
from ..hardware.atom_specs import SELECTMAP_BYTES_PER_US
from ..hardware.energy import EnergyModel
from ..hardware.reconfig import ReconfigurationPort
from ..sim.trace import Event, EventKind
from .diagnostics import Diagnostic, Severity
from .registry import diag

#: Events recorded by the manager's public entry points.  The manager
#: processes (and records) every due rotation completion *before* any of
#: these, so at such an event every completed job must have been reported.
_ENTRY_KINDS = frozenset(
    {
        EventKind.FORECAST,
        EventKind.FORECAST_END,
        EventKind.SI_EXECUTED,
        EventKind.SI_MODE_SWITCH,
        EventKind.CONTAINER_FAILED,
        EventKind.FAULT_INJECTED,
        EventKind.FAULT_DETECTED,
        EventKind.CONTAINER_QUARANTINED,
        EventKind.CONTAINER_REPAIRED,
        EventKind.ROTATION_RETRIED,
    }
)


@dataclass
class _ContainerState:
    """Replayed view of one Atom Container."""

    container_id: int
    atom: str | None = None
    loading: str | None = None
    failed: bool = False
    #: Silent SEU corruption (the atom still serves; see TRC014/TRC015).
    corrupted: bool = False
    #: The scrubber reported the corruption (FAULT_DETECTED seen).
    detected: bool = False
    #: Out of service pending a repair rotation.
    quarantined: bool = False


@dataclass
class _ReplayJob:
    """Replayed view of one rotation job on the serial port."""

    atom: str
    container_id: int
    requested_at: int
    started_at: int
    finish_at: int
    started: bool = False
    completed: bool = False
    reported: bool = False
    #: Repair rotation allowed to target a quarantined container.
    repair: bool = False

    @property
    def duration(self) -> int:
        return self.finish_at - self.started_at


@dataclass
class _PendingSwitch:
    """A recorded SI_MODE_SWITCH awaiting its SI_EXECUTED confirmation."""

    cycle: int
    to_mode: str
    cycles: object
    event_index: int


@dataclass
class _Accounting:
    """Per-event deltas accumulated during replay (TRC007 ground truth)."""

    si_executions: int = 0
    sw_executions: int = 0
    hw_executions: int = 0
    si_cycles: int = 0
    rotations_requested: int = 0
    mode_switches: int = 0
    rotation_energy_nj: float = 0.0
    execution_energy_nj: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "si_executions": self.si_executions,
            "sw_executions": self.sw_executions,
            "hw_executions": self.hw_executions,
            "si_cycles": self.si_cycles,
            "rotations_requested": self.rotations_requested,
            "mode_switches": self.mode_switches,
            "rotation_energy_nj": self.rotation_energy_nj,
            "execution_energy_nj": self.execution_energy_nj,
        }


class ReferenceMachine:
    """Replays one trace against the formal RISPP hardware model."""

    def __init__(
        self,
        library: SILibrary,
        containers: int,
        *,
        core_mhz: float = 100.0,
        bytes_per_us: float | None = None,
        static_multiplicity: int = 16,
        totals: Mapping[str, float] | None = None,
        energy_model: EnergyModel | None = None,
        subject: str = "",
    ) -> None:
        self.library = library
        self.subject = subject
        self.totals = dict(totals) if totals is not None else None
        self.energy_model = energy_model
        catalogue = library.catalogue
        self._port_model = ReconfigurationPort(
            catalogue,
            core_mhz=core_mhz,
            bytes_per_us=(
                bytes_per_us if bytes_per_us is not None
                else SELECTMAP_BYTES_PER_US
            ),
        )
        self._space = catalogue.space
        self._reconfigurable = set(catalogue.reconfigurable_names())
        # Mirror of Fabric._static: helper atoms at full multiplicity plus
        # the baseline instances of reconfigurable kinds.
        self._static_counts: dict[str, int] = {
            kind.name: static_multiplicity for kind in catalogue.static_kinds()
        }
        for name, baseline in catalogue.baseline_counts().items():
            if baseline:
                self._static_counts[name] = baseline
        self._containers = [_ContainerState(i) for i in range(containers)]
        self._pending: list[_ReplayJob] = []
        self._retired: list[_ReplayJob] = []
        self._busy_until = 0
        self._clock = 0
        self._available: Molecule | None = None
        self._last_mode: dict[tuple[str, str], str] = {}
        self._pending_switch: dict[tuple[str, str], _PendingSwitch] = {}
        self._accounting = _Accounting()
        #: Open quarantines awaiting repair or retirement, by container id
        #: (value: the cycle the quarantine opened) — TRC014 at finish().
        self._open_quarantines: dict[int, int] = {}
        self.findings: list[Diagnostic] = []

    # -- public driver ----------------------------------------------------

    def verify(self, events: Sequence[Event]) -> list[Diagnostic]:
        """Replay ``events`` and run the end-of-trace checks."""
        self.replay(events)
        self.finish()
        return self.findings

    def replay(self, events: Iterable[Event]) -> None:
        last_cycle = 0
        for index, event in enumerate(events):
            cycle = event.cycle
            if not isinstance(cycle, int) or cycle < 0 or cycle < last_cycle:
                self._emit(
                    "TRC001",
                    f"event #{index} ({event.kind.value}) at cycle {cycle!r} "
                    f"after cycle {last_cycle}",
                    location=f"event {index}",
                    cycle=cycle,
                    previous_cycle=last_cycle,
                )
                # Clamp and keep replaying: one bad timestamp must not
                # mask independent corruptions later in the trace.
                cycle = last_cycle
            last_cycle = max(last_cycle, cycle)
            self._advance_to(cycle)
            self._clock = max(self._clock, cycle)
            if event.kind in _ENTRY_KINDS:
                self._check_reported_completions(index, cycle)
            self._dispatch(index, cycle, event)

    def finish(self) -> None:
        """End-of-trace checks: dangling switches, dangling completions,
        and (when totals were provided) the TRC007 accounting rules."""
        for (task, si_name), pending in sorted(self._pending_switch.items()):
            self._emit(
                "TRC011",
                f"mode switch of SI {si_name!r} (task {task!r}) at cycle "
                f"{pending.cycle} was never confirmed by an execution",
                location=f"event {pending.event_index}",
                si=si_name,
            )
        for job in self._retired:
            if not job.reported:
                self._emit(
                    "TRC004",
                    f"rotation of {job.atom!r} into container "
                    f"{job.container_id} completed at cycle {job.finish_at} "
                    "without a completion event",
                    location=f"container {job.container_id}",
                    atom=job.atom,
                    finish=job.finish_at,
                )
                job.reported = True
        for container_id, opened in sorted(self._open_quarantines.items()):
            self._emit(
                "TRC014",
                f"container {container_id} was quarantined at cycle {opened} "
                "and never repaired or retired by the end of the trace",
                location=f"container {container_id}",
                container=container_id,
                quarantined_at=opened,
            )
        self._check_totals()

    # -- reconstructed state ----------------------------------------------

    def available_molecule(self) -> Molecule:
        """Atoms usable right now (static + baseline + loaded containers)."""
        if self._available is None:
            counts = dict(self._static_counts)
            for cont in self._containers:
                if (
                    cont.atom is not None
                    and not cont.failed
                    and not cont.quarantined
                ):
                    counts[cont.atom] = counts.get(cont.atom, 0) + 1
            self._available = self._space.molecule(counts)
        return self._available

    def accounting(self) -> dict[str, float]:
        """The per-event delta sums accumulated so far."""
        return self._accounting.as_dict()

    # -- time -------------------------------------------------------------

    def _advance_to(self, cycle: int) -> None:
        """Perform due rotation starts (evictions) and finishes in order."""
        while True:
            start_job: _ReplayJob | None = None
            finish_job: _ReplayJob | None = None
            for job in self._pending:
                if not job.started:
                    if start_job is None or job.started_at < start_job.started_at:
                        start_job = job
                elif not job.completed:
                    if finish_job is None or job.finish_at < finish_job.finish_at:
                        finish_job = job
            next_start = start_job.started_at if start_job is not None else None
            next_finish = finish_job.finish_at if finish_job is not None else None
            if (
                start_job is not None
                and next_start is not None
                and next_start <= cycle
                and (next_finish is None or next_start <= next_finish)
            ):
                cont = self._containers[start_job.container_id]
                if cont.quarantined and not start_job.repair:
                    self._emit(
                        "TRC015",
                        f"rotation of {start_job.atom!r} starts on quarantined "
                        f"container {start_job.container_id} at cycle "
                        f"{start_job.started_at} without being a repair",
                        location=f"container {start_job.container_id}",
                        container=start_job.container_id,
                        atom=start_job.atom,
                    )
                cont.atom = None
                cont.loading = start_job.atom
                cont.corrupted = False
                cont.detected = False
                start_job.started = True
                self._available = None
            elif finish_job is not None and next_finish is not None and next_finish <= cycle:
                cont = self._containers[finish_job.container_id]
                cont.atom = finish_job.atom
                cont.loading = None
                finish_job.completed = True
                self._pending.remove(finish_job)
                self._retired.append(finish_job)
                self._available = None
            else:
                return

    def _check_reported_completions(self, index: int, cycle: int) -> None:
        for job in self._retired:
            if job.reported or job.finish_at > cycle:
                continue
            job.reported = True
            self._emit(
                "TRC004",
                f"rotation of {job.atom!r} into container {job.container_id} "
                f"completed at cycle {job.finish_at} but no completion event "
                f"was recorded before event #{index} at cycle {cycle}",
                location=f"event {index}",
                atom=job.atom,
                container=job.container_id,
                finish=job.finish_at,
            )

    # -- event handlers ---------------------------------------------------

    def _dispatch(self, index: int, cycle: int, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.FORECAST:
            self._on_forecast(index, event)
        elif kind is EventKind.FORECAST_END:
            self._require_si(index, event.si)
        elif kind is EventKind.REALLOCATION:
            self._on_reallocation(index, event)
        elif kind is EventKind.ROTATION_REQUESTED:
            self._on_rotation_requested(index, cycle, event)
        elif kind is EventKind.ROTATION_COMPLETED:
            self._on_rotation_completed(index, cycle, event)
        elif kind is EventKind.SI_MODE_SWITCH:
            self._on_mode_switch(index, cycle, event)
        elif kind is EventKind.SI_EXECUTED:
            self._on_si_executed(index, cycle, event)
        elif kind is EventKind.CONTAINER_FAILED:
            self._on_container_failed(index, cycle, event)
        elif kind is EventKind.FAULT_INJECTED:
            self._on_fault_injected(index, cycle, event)
        elif kind is EventKind.FAULT_DETECTED:
            self._on_fault_detected(index, cycle, event)
        elif kind is EventKind.CONTAINER_QUARANTINED:
            self._on_container_quarantined(index, cycle, event)
        elif kind is EventKind.CONTAINER_REPAIRED:
            self._on_container_repaired(index, cycle, event)
        elif kind is EventKind.ROTATION_RETRIED:
            self._on_rotation_retried(index, cycle, event)
        # TASK_STEP and future kinds are neutral: only the clock matters.

    def _on_forecast(self, index: int, event: Event) -> None:
        if not self._require_si(index, event.si):
            return
        detail = event.detail
        expected = detail.get("expected")
        priority = detail.get("priority")
        if not isinstance(expected, (int, float)) or expected < 0:
            self._emit(
                "TRC012",
                f"forecast for SI {event.si!r} carries expected executions "
                f"{expected!r} (need a non-negative number)",
                location=f"event {index}",
                si=event.si,
                expected=expected,
            )
        elif not isinstance(priority, (int, float)) or priority <= 0:
            self._emit(
                "TRC012",
                f"forecast for SI {event.si!r} carries priority {priority!r} "
                "(need a positive number)",
                location=f"event {index}",
                si=event.si,
                priority=priority,
            )

    def _on_reallocation(self, index: int, event: Event) -> None:
        container = event.detail.get("container")
        if not self._valid_container(container):
            self._emit(
                "TRC003",
                f"reallocation names container {container!r} "
                f"(platform has {len(self._containers)})",
                location=f"event {index}",
                container=container,
            )

    def _on_rotation_requested(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        atom = detail.get("atom", detail.get("detail_atom"))
        container_id = detail.get("container")
        starts = detail.get("starts")
        finishes = detail.get("finishes")
        evicts = detail.get("evicts")
        where = f"event {index}"
        self._accounting.rotations_requested += 1
        if not isinstance(atom, str) or atom not in self._reconfigurable:
            self._emit(
                "TRC009",
                f"rotation requests atom {atom!r}, which is not a "
                "reconfigurable kind of this library",
                location=where,
                atom=atom,
            )
            return
        kind = self.library.catalogue.get(atom)
        if self.energy_model is not None:
            self._accounting.rotation_energy_nj += (
                kind.bitstream_bytes * self.energy_model.rotation_nj_per_byte
            )
        if not self._valid_container(container_id):
            self._emit(
                "TRC003",
                f"rotation of {atom!r} targets container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        repair = bool(detail.get("repair"))
        if cont.failed:
            self._emit(
                "TRC003",
                f"rotation of {atom!r} targets failed container {container_id}",
                location=where,
                container=container_id,
            )
            return
        if cont.quarantined and not repair:
            self._emit(
                "TRC015",
                f"rotation of {atom!r} targets quarantined container "
                f"{container_id} without being a repair",
                location=where,
                container=container_id,
                atom=atom,
            )
            return
        if any(j.container_id == container_id for j in self._pending):
            self._emit(
                "TRC004",
                f"container {container_id} already has a rotation scheduled "
                f"or in flight when {atom!r} is requested at cycle {cycle}",
                location=where,
                container=container_id,
                atom=atom,
            )
            return
        if not isinstance(starts, int) or not isinstance(finishes, int):
            self._emit(
                "TRC008",
                f"rotation of {atom!r} carries malformed timing "
                f"starts={starts!r} finishes={finishes!r}",
                location=where,
                starts=starts,
                finishes=finishes,
            )
            return
        if evicts != cont.atom:
            self._emit(
                "TRC004",
                f"rotation into container {container_id} claims to evict "
                f"{evicts!r} but the container holds {cont.atom!r}",
                location=where,
                container=container_id,
                claimed=evicts,
                actual=cont.atom,
            )
        elif starts < self._busy_until:
            self._emit(
                "TRC002",
                f"rotation of {atom!r} starts at cycle {starts} while the "
                f"port is busy until cycle {self._busy_until}",
                location=where,
                starts=starts,
                busy_until=self._busy_until,
            )
        elif starts != max(cycle, self._busy_until):
            self._emit(
                "TRC008",
                f"rotation of {atom!r} starts at cycle {starts}; the serial "
                f"port model starts it at {max(cycle, self._busy_until)}",
                location=where,
                starts=starts,
                expected=max(cycle, self._busy_until),
            )
        elif finishes - starts != self._port_model.rotation_cycles(atom):
            self._emit(
                "TRC008",
                f"rotation of {atom!r} takes {finishes - starts} cycles; "
                f"its bitstream needs "
                f"{self._port_model.rotation_cycles(atom)}",
                location=where,
                duration=finishes - starts,
                expected=self._port_model.rotation_cycles(atom),
            )
        # Enqueue with the claimed times even after a timing finding so the
        # rest of the replay tracks the trace's own view of the hardware.
        self._pending.append(
            _ReplayJob(
                atom=atom,
                container_id=container_id,
                requested_at=cycle,
                started_at=starts,
                finish_at=finishes,
                repair=repair,
            )
        )
        self._busy_until = max(self._busy_until, finishes)
        self._advance_to(self._clock)

    def _on_rotation_completed(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        atom = detail.get("atom", detail.get("detail_atom"))
        container_id = detail.get("container")
        for job in self._retired:
            if (
                not job.reported
                and job.container_id == container_id
                and job.atom == atom
                and job.finish_at == cycle
            ):
                job.reported = True
                return
        self._emit(
            "TRC004",
            f"completion of {atom!r} in container {container_id!r} at cycle "
            f"{cycle} matches no replayed rotation",
            location=f"event {index}",
            atom=atom,
            container=container_id,
        )

    def _on_mode_switch(self, index: int, cycle: int, event: Event) -> None:
        if not self._require_si(index, event.si):
            return
        detail = event.detail
        from_mode = detail.get("from_mode")
        to_mode = detail.get("to_mode")
        key = (event.task, event.si)
        self._accounting.mode_switches += 1
        known = self._last_mode.get(key)
        if from_mode == to_mode or not isinstance(to_mode, str):
            self._emit(
                "TRC011",
                f"mode switch of SI {event.si!r} from {from_mode!r} to "
                f"{to_mode!r} is not a switch",
                location=f"event {index}",
                si=event.si,
            )
            return
        if known is not None and from_mode != known:
            self._emit(
                "TRC011",
                f"mode switch of SI {event.si!r} claims previous mode "
                f"{from_mode!r} but the replayed mode is {known!r}",
                location=f"event {index}",
                si=event.si,
                claimed=from_mode,
                actual=known,
            )
            return
        self._pending_switch[key] = _PendingSwitch(
            cycle=cycle,
            to_mode=to_mode,
            cycles=detail.get("cycles"),
            event_index=index,
        )

    def _on_si_executed(self, index: int, cycle: int, event: Event) -> None:
        if not self._require_si(index, event.si):
            return
        si = self.library.get(event.si)
        detail = event.detail
        mode = detail.get("mode")
        cycles = detail.get("cycles")
        where = f"event {index}"
        if not isinstance(mode, str) or not isinstance(cycles, int):
            self._emit(
                "TRC006",
                f"SI {event.si!r} execution carries malformed detail "
                f"mode={mode!r} cycles={cycles!r}",
                location=where,
                mode=mode,
                cycles=cycles,
            )
            return
        available = self.available_molecule()
        consistent = self._check_execution(
            index, si, mode, cycles, available
        )
        if consistent:
            # An inconsistent execution is noise, not a mode change: the
            # replayed mode state keeps following the coherent events.
            self._confirm_mode(index, cycle, event, mode, cycles)
        self._accounting.si_executions += 1
        self._accounting.si_cycles += cycles
        if mode == "SW":
            self._accounting.sw_executions += 1
        else:
            self._accounting.hw_executions += 1
        if self.energy_model is not None and consistent:
            slices = 0
            if mode != "SW":
                impl = si.best_available(available)
                if impl is not None:
                    for kind_name in impl.molecule.kinds_used():
                        kind = self.library.catalogue.get(kind_name)
                        slices += kind.slices * impl.molecule.count(kind_name)
            self._accounting.execution_energy_nj += (
                self.energy_model.execution_energy_nj(slices, cycles)
            )

    def _check_execution(
        self,
        index: int,
        si: SpecialInstruction,
        mode: str,
        cycles: int,
        available: Molecule,
    ) -> bool:
        """The §3.1 residency and §5 best-available rules for one execution."""
        where = f"event {index}"
        if mode == "SW":
            if cycles != si.software_cycles:
                self._emit(
                    "TRC006",
                    f"SI {si.name!r} ran in SW mode for {cycles} cycles; its "
                    f"software molecule takes {si.software_cycles}",
                    location=where,
                    cycles=cycles,
                    expected=si.software_cycles,
                )
                return False
        else:
            candidates = [
                impl
                for impl in si.implementations
                if (impl.label or "HW") == mode and impl.cycles == cycles
            ]
            if not candidates:
                self._emit(
                    "TRC006",
                    f"SI {si.name!r} claims mode {mode!r} at {cycles} cycles; "
                    "no molecule of the library matches",
                    location=where,
                    mode=mode,
                    cycles=cycles,
                )
                return False
            if not any(impl.molecule <= available for impl in candidates):
                missing = (candidates[0].molecule - available).as_dict()
                self._emit(
                    "TRC005",
                    f"SI {si.name!r} executed its {cycles}-cycle molecule "
                    f"but the fabric lacks {missing} (residual o ∸ m "
                    "is non-zero)",
                    location=where,
                    missing=missing,
                    mode=mode,
                )
                return False
        expected = si.cycles_with(available)
        if cycles != expected:
            self._emit(
                "TRC013",
                f"SI {si.name!r} ran for {cycles} cycles but the best "
                f"available molecule takes {expected} (gradual upgrade "
                "must always use the fastest resident molecule)",
                location=where,
                cycles=cycles,
                expected=expected,
            )
            return False
        return True

    def _confirm_mode(
        self, index: int, cycle: int, event: Event, mode: str, cycles: int
    ) -> None:
        key = (event.task, event.si)
        known = self._last_mode.get(key)
        pending = self._pending_switch.pop(key, None)
        if known is not None and mode != known:
            if (
                pending is None
                or pending.cycle != cycle
                or pending.to_mode != mode
                or pending.cycles != cycles
            ):
                self._emit(
                    "TRC011",
                    f"SI {event.si!r} changed mode {known!r} -> {mode!r} at "
                    f"cycle {cycle} without a matching mode-switch event",
                    location=f"event {index}",
                    si=event.si,
                    previous=known,
                    mode=mode,
                )
        elif pending is not None:
            self._emit(
                "TRC011",
                f"mode switch of SI {event.si!r} to {pending.to_mode!r} was "
                f"recorded but the execution at cycle {cycle} stayed in "
                f"mode {mode!r}",
                location=f"event {index}",
                si=event.si,
                mode=mode,
            )
        self._last_mode[key] = mode

    def _on_container_failed(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        container_id = detail.get("container")
        lost = detail.get("lost_atom")
        if not self._valid_container(container_id):
            self._emit(
                "TRC003",
                f"failure event names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=f"event {index}",
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        expected_lost = cont.loading if cont.loading is not None else cont.atom
        if lost != expected_lost:
            self._emit(
                "TRC004",
                f"container {container_id} failed losing {lost!r} but the "
                f"replayed state holds {expected_lost!r}",
                location=f"event {index}",
                container=container_id,
                claimed=lost,
                actual=expected_lost,
            )
        cont.failed = True
        cont.atom = None
        cont.loading = None
        cont.corrupted = False
        cont.detected = False
        cont.quarantined = False
        # Retirement resolves an open quarantine (repair became moot).
        self._open_quarantines.pop(container_id, None)
        self._available = None
        self._drop_and_resequence(container_id, cycle)

    def _drop_and_resequence(self, container_id: int, now: int) -> None:
        """Mirror of ``ReconfigurationPort._drop_failed``: jobs targeting
        the dead container vanish and unstarted jobs close the port gap."""
        dropped = [j for j in self._pending if j.container_id == container_id]
        if not dropped:
            return
        for job in dropped:
            self._pending.remove(job)
        self._resequence(now)

    def _resequence(self, now: int) -> None:
        """Mirror of ``ReconfigurationPort._resequence``: unstarted jobs
        close the port gap left by dropped or aborted writes."""
        cursor = now
        for job in sorted(self._pending, key=lambda j: j.started_at):
            if job.started:
                cursor = max(cursor, job.finish_at)
                continue
            duration = job.duration
            job.started_at = max(cursor, job.requested_at)
            job.finish_at = job.started_at + duration
            cursor = job.finish_at
        self._busy_until = cursor
        self._advance_to(self._clock)

    # -- fault events -------------------------------------------------------

    def _on_fault_injected(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        effect = detail.get("effect")
        where = f"event {index}"
        if effect == "none":
            return
        container_id = detail.get("container")
        if not self._valid_container(container_id):
            self._emit(
                "TRC014",
                f"fault injection names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        if effect == "corrupted":
            if (
                cont.atom is None
                or cont.failed
                or cont.quarantined
                or cont.corrupted
            ):
                self._emit(
                    "TRC014",
                    f"transient fault claims to corrupt container "
                    f"{container_id}, which holds no healthy loaded atom",
                    location=where,
                    container=container_id,
                )
                return
            atom = detail.get("atom")
            if atom != cont.atom:
                self._emit(
                    "TRC014",
                    f"transient fault in container {container_id} claims atom "
                    f"{atom!r} but the replayed state holds {cont.atom!r}",
                    location=where,
                    container=container_id,
                    claimed=atom,
                    actual=cont.atom,
                )
            cont.corrupted = True
        elif effect == "write_aborted":
            job = next(
                (j for j in self._pending if j.container_id == container_id),
                None,
            )
            if (
                job is None
                or not job.started
                or job.completed
                or not job.started_at <= cycle < job.finish_at
            ):
                self._emit(
                    "TRC014",
                    f"write abort on container {container_id} at cycle "
                    f"{cycle} matches no bitstream write in flight",
                    location=where,
                    container=container_id,
                )
                return
            self._pending.remove(job)
            cont.loading = None
            self._available = None
            self._resequence(cycle)
        elif effect == "failed":
            # The CONTAINER_FAILED event that follows performs the state
            # change; the injection record itself is informational.
            pass
        else:
            self._emit(
                "TRC014",
                f"fault injection carries unknown effect {effect!r}",
                location=where,
                effect=effect,
            )

    def _on_fault_detected(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        container_id = detail.get("container")
        where = f"event {index}"
        if not self._valid_container(container_id):
            self._emit(
                "TRC014",
                f"fault detection names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        if not cont.corrupted:
            self._emit(
                "TRC014",
                f"scrubber reports a fault in container {container_id} at "
                f"cycle {cycle}, but no silent corruption is open there",
                location=where,
                container=container_id,
            )
            return
        atom = detail.get("atom")
        if atom != cont.atom:
            self._emit(
                "TRC014",
                f"fault detection in container {container_id} claims atom "
                f"{atom!r} but the replayed state holds {cont.atom!r}",
                location=where,
                container=container_id,
                claimed=atom,
                actual=cont.atom,
            )
        cont.detected = True

    def _on_container_quarantined(
        self, index: int, cycle: int, event: Event
    ) -> None:
        detail = event.detail
        container_id = detail.get("container")
        where = f"event {index}"
        if not self._valid_container(container_id):
            self._emit(
                "TRC014",
                f"quarantine names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        if not cont.detected:
            self._emit(
                "TRC014",
                f"container {container_id} is quarantined at cycle {cycle} "
                "without a preceding fault detection",
                location=where,
                container=container_id,
            )
        atom = detail.get("atom")
        if cont.detected and atom != cont.atom:
            self._emit(
                "TRC014",
                f"quarantine of container {container_id} claims to drop atom "
                f"{atom!r} but the replayed state holds {cont.atom!r}",
                location=where,
                container=container_id,
                claimed=atom,
                actual=cont.atom,
            )
        # Follow the trace's claim either way so replay stays coherent.
        cont.atom = None
        cont.corrupted = False
        cont.detected = False
        cont.quarantined = True
        self._open_quarantines[container_id] = cycle
        self._available = None
        # A rotation the planner already queued into this container is
        # adopted as the repair (it overwrites the bad configuration).
        for job in self._pending:
            if job.container_id == container_id:
                job.repair = True

    def _on_container_repaired(
        self, index: int, cycle: int, event: Event
    ) -> None:
        detail = event.detail
        container_id = detail.get("container")
        where = f"event {index}"
        if not self._valid_container(container_id):
            self._emit(
                "TRC014",
                f"repair names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        assert isinstance(container_id, int)
        cont = self._containers[container_id]
        if not cont.quarantined:
            self._emit(
                "TRC014",
                f"container {container_id} is reported repaired at cycle "
                f"{cycle} but was not quarantined",
                location=where,
                container=container_id,
            )
            return
        if cont.atom is None:
            self._emit(
                "TRC014",
                f"container {container_id} is reported repaired at cycle "
                f"{cycle} but no repair rotation has completed there",
                location=where,
                container=container_id,
            )
        cont.quarantined = False
        self._open_quarantines.pop(container_id, None)
        self._available = None

    def _on_rotation_retried(self, index: int, cycle: int, event: Event) -> None:
        detail = event.detail
        container_id = detail.get("container")
        attempt = detail.get("attempt")
        retry_at = detail.get("retry_at")
        where = f"event {index}"
        if not self._valid_container(container_id):
            self._emit(
                "TRC014",
                f"rotation retry names container {container_id!r} "
                f"(platform has {len(self._containers)})",
                location=where,
                container=container_id,
            )
            return
        if not isinstance(attempt, int) or attempt < 1:
            self._emit(
                "TRC014",
                f"rotation retry carries malformed attempt {attempt!r}",
                location=where,
                attempt=attempt,
            )
        elif not isinstance(retry_at, int) or retry_at <= cycle:
            self._emit(
                "TRC014",
                f"rotation retry at cycle {cycle} is due at {retry_at!r}; "
                "backoff must land strictly in the future",
                location=where,
                retry_at=retry_at,
            )

    # -- totals ------------------------------------------------------------

    def _check_totals(self) -> None:
        """TRC007: reported run totals must equal the per-event delta sums.

        Skipped when the replay already found errors — corrupted events
        make both sides of the comparison meaningless.
        """
        if self.totals is None:
            return
        if any(d.severity >= Severity.ERROR for d in self.findings):
            return
        expected = self._accounting.as_dict()
        checked = set(expected)
        if self.energy_model is None:
            checked -= {"rotation_energy_nj", "execution_energy_nj"}
        for key in sorted(checked):
            if key not in self.totals:
                continue
            reported = self.totals[key]
            if not isinstance(reported, (int, float)):
                self._emit(
                    "TRC007",
                    f"reported total {key}={reported!r} is not a number",
                    location=key,
                )
                continue
            if reported < 0:
                self._emit(
                    "TRC007",
                    f"reported total {key}={reported} is negative",
                    location=key,
                    reported=reported,
                )
                continue
            want = expected[key]
            tolerance = 1e-6 * max(1.0, abs(want))
            if abs(reported - want) > tolerance:
                self._emit(
                    "TRC007",
                    f"reported total {key}={reported} but the per-event "
                    f"deltas sum to {want}",
                    location=key,
                    reported=reported,
                    expected=want,
                )

    # -- helpers -----------------------------------------------------------

    def _valid_container(self, container_id: object) -> bool:
        return (
            isinstance(container_id, int)
            and 0 <= container_id < len(self._containers)
        )

    def _require_si(self, index: int, si_name: str) -> bool:
        if si_name in self.library:
            return True
        self._emit(
            "TRC010",
            f"event references SI {si_name!r}, which the library does not "
            "define",
            location=f"event {index}",
            si=si_name,
        )
        return False

    def _emit(
        self,
        rule_id: str,
        message: str,
        *,
        location: str = "",
        **context: object,
    ) -> None:
        self.findings.append(
            diag(
                rule_id,
                message,
                subject=self.subject,
                location=location,
                **context,
            )
        )
