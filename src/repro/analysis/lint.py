"""High-level lint drivers: one call per artifact family, plus built-ins.

These are the convenience entry points everything else uses:

* :func:`lint_library` / :func:`lint_cfg` / :func:`lint_forecast` /
  :func:`lint_schedule` / :func:`lint_rotations` — single-artifact runs;
* :func:`lint_flow` — the combined compile-time bundle checked by
  :func:`repro.sim.integration.compile_and_run` before executing;
* :func:`lint_builtin` — the shipped H.264 and AES subjects behind
  ``python -m repro lint``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from .diagnostics import DiagnosticReport
from .registry import (
    EventBusArtifact,
    ForecastArtifact,
    LintContext,
    RotationLog,
    ScheduleArtifact,
    run_checks,
)

if TYPE_CHECKING:
    from ..cfg.graph import ControlFlowGraph
    from ..core.library import SILibrary
    from ..core.molecule import Molecule
    from ..core.schedule import Dataflow, Schedule
    from ..forecast.annotate import ForecastAnnotation
    from ..forecast.fdf import ForecastDecisionFunction
    from ..forecast.placement import ForecastPoint
    from ..hardware.reconfig import ReconfigurationPort, RotationJob
    from ..runtime.events import EventBus


def lint_library(
    library: "SILibrary",
    *,
    containers: int | None = None,
    subject: str = "",
) -> DiagnosticReport:
    """Lattice + library checks over one SI library."""
    ctx = LintContext(containers=containers, subject=subject)
    return run_checks(library, context=ctx)


def lint_cfg(cfg: "ControlFlowGraph", *, subject: str = "") -> DiagnosticReport:
    """Profile well-formedness checks over one CFG."""
    return run_checks(cfg, context=LintContext(subject=subject))


def lint_forecast(
    cfg: "ControlFlowGraph",
    placements: "ForecastAnnotation | Sequence[ForecastPoint]",
    *,
    library: "SILibrary | None" = None,
    fdfs: "dict[str, ForecastDecisionFunction] | None" = None,
    subject: str = "",
) -> DiagnosticReport:
    """Placement checks of forecast points (or a whole annotation)."""
    artifact = ForecastArtifact(
        cfg=cfg, points=placements, fdfs=fdfs, library=library, subject=subject
    )
    return run_checks(artifact, context=LintContext(subject=subject))


def lint_schedule(
    dataflow: "Dataflow",
    molecule: "Molecule",
    schedule: "Schedule",
    *,
    unconstrained_kinds: Iterable[str] = (),
    issue_overhead: int = 0,
    subject: str = "",
) -> DiagnosticReport:
    """Feasibility checks of a list-scheduler result."""
    artifact = ScheduleArtifact(
        dataflow=dataflow,
        molecule=molecule,
        schedule=schedule,
        unconstrained_kinds=tuple(unconstrained_kinds),
        issue_overhead=issue_overhead,
        subject=subject,
    )
    return run_checks(artifact, context=LintContext(subject=subject))


def lint_rotations(
    jobs: "Sequence[RotationJob] | ReconfigurationPort",
    *,
    subject: str = "",
) -> DiagnosticReport:
    """Serialisation/feasibility checks of a rotation job sequence.

    Accepts a raw job list or a whole port (which also yields the
    per-atom expected rotation latencies).
    """
    if hasattr(jobs, "rotation_cycles"):  # a ReconfigurationPort
        log = RotationLog.from_port(jobs, subject=subject)  # type: ignore[arg-type]
    else:
        log = RotationLog(jobs=list(jobs), subject=subject)
    return run_checks(log, context=LintContext(subject=subject))


def lint_events(
    bus: "EventBus | None" = None,
    *,
    subject: str = "",
) -> DiagnosticReport:
    """Event-bus wiring coherence checks (EVT rules).

    ``bus=None`` checks a fresh default bus — the wiring every runtime
    gets unless a caller injects its own.
    """
    artifact = EventBusArtifact(bus=bus, subject=subject or "events:default-bus")
    return run_checks(artifact, context=LintContext(subject=subject))


def lint_flow(
    cfg: "ControlFlowGraph",
    library: "SILibrary",
    annotation: "ForecastAnnotation",
    *,
    fdfs: "dict[str, ForecastDecisionFunction] | None" = None,
    containers: int | None = None,
    subject: str = "",
) -> DiagnosticReport:
    """The combined compile-time bundle: library + CFG + placements.

    ``containers`` is deliberately optional: running a library on a
    platform with fewer (even zero) containers is a valid pure-software
    baseline, so the integration layer skips the capacity rules unless a
    caller opts in.
    """
    report = lint_library(library, containers=containers,
                          subject=subject or "flow:library")
    report.merge(lint_cfg(cfg, subject=subject or "flow:cfg"))
    report.merge(
        lint_forecast(
            cfg, annotation, library=library, fdfs=fdfs,
            subject=subject or "flow:forecast",
        )
    )
    return report


# ---------------------------------------------------------------------------
# Built-in subjects: what ``python -m repro lint`` analyses
# ---------------------------------------------------------------------------

BUILTIN_SUBJECTS = ("h264", "aes", "events")


def _h264_artifacts(containers: int | None) -> DiagnosticReport:
    from ..apps.h264 import build_h264_library
    from ..core.schedule import layered_dataflow, list_schedule

    library = build_h264_library()
    report = lint_library(library, containers=containers, subject="library:h264")

    # Cross-check one Table 2 molecule as a dataflow schedule artifact:
    # 4 Transform executions feeding 4 Pack executions (the HT_4x4 shape).
    dataflow = layered_dataflow(
        [("Transform", 4, 2), ("Pack", 4, 1)], fan_in=True
    )
    molecule = library.space.molecule({"Transform": 2, "Pack": 1})
    schedule = list_schedule(dataflow, molecule)
    report.merge(
        lint_schedule(dataflow, molecule, schedule, subject="schedule:h264-HT")
    )
    return report


def _aes_artifacts(containers: int | None) -> DiagnosticReport:
    from ..apps.aes import (
        build_aes_library,
        default_aes_fdfs,
        profile_aes,
    )
    from ..forecast import run_forecast_pipeline
    from ..hardware.fabric import Fabric
    from ..hardware.reconfig import ReconfigurationPort

    library = build_aes_library()
    report = lint_library(library, containers=containers, subject="library:aes")

    cfg = profile_aes(runs=4)
    report.merge(lint_cfg(cfg, subject="cfg:aes"))

    fdfs = default_aes_fdfs()
    annotation = run_forecast_pipeline(cfg, library, fdfs, containers or 4)
    report.merge(
        lint_forecast(
            cfg, annotation, library=library, fdfs=fdfs, subject="forecast:aes"
        )
    )

    # A short synthetic rotation sequence through the single port.
    fabric = Fabric(library.catalogue, 3)
    port = ReconfigurationPort(library.catalogue)
    now = 0
    for container_id, atom in enumerate(("SBoxLUT", "GFMul", "XorTree")):
        port.request(fabric, atom, container_id, now)
    port.advance(fabric, port.busy_until)
    report.merge(lint_rotations(port, subject="rotations:aes"))
    return report


def lint_builtin(
    subjects: Iterable[str] = BUILTIN_SUBJECTS,
    *,
    containers: int | None = None,
) -> DiagnosticReport:
    """Lint the shipped case-study artifacts (the CLI's default run)."""
    report = DiagnosticReport()
    for subject in subjects:
        if subject == "h264":
            report.merge(_h264_artifacts(containers))
        elif subject == "aes":
            report.merge(_aes_artifacts(containers))
        elif subject == "events":
            report.merge(lint_events(subject="events:default-bus"))
        else:
            raise ValueError(
                f"unknown lint subject {subject!r}; "
                f"expected one of {BUILTIN_SUBJECTS}"
            )
    return report
