"""The rule-ID catalogue: one source of truth for every declared invariant.

rispp-lint (LAT/LIB/CFG/FC/SCH/ROT), rispp-verify (TRC/FEA) and
rispp-explore (MC) all judge artifacts against rules declared *here* —
one :class:`Rule` per invariant, with a stable ID, a default severity and
the paper section it formalises.  The CLIs' ``--select``/``--ignore``/
``--list-rules`` flags, the ``--help`` epilogs and the docs cross-checker
(:mod:`.docs_check`) read this single catalogue, so a rule cannot exist
in one surface and be missing from another.

Checker *functions* live elsewhere (:mod:`.registry` holds the artifact
dispatch; :mod:`.explore` holds the model-checking drivers); this module
is import-light on purpose so CLI help and docs tooling can load the
catalogue without pulling in the domain packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    """One declared invariant."""

    rule_id: str
    family: str
    severity: Severity
    title: str
    paper_ref: str = ""


RULES: dict[str, Rule] = {}


def _rule(rule_id: str, family: str, severity: Severity, title: str, paper_ref: str) -> None:
    if rule_id in RULES:  # pragma: no cover - catalogue authoring error
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULES[rule_id] = Rule(rule_id, family, severity, title, paper_ref)


# -- lattice family (§3.1 / §3.2): the Molecule vector algebra --------------
_rule("LAT001", "lattice", Severity.ERROR,
      "union/intersection absorption law violated", "§3.1")
_rule("LAT002", "lattice", Severity.ERROR,
      "residual operator violates its bounding laws", "§3.1")
_rule("LAT003", "lattice", Severity.ERROR,
      "Rep(S) outside its lattice bounds [inf(S), sup(S)]", "§3.2")
_rule("LAT004", "lattice", Severity.ERROR,
      "molecule lives outside its SI's atom space", "§3.1")

# -- library family: SI/catalogue coherence ---------------------------------
_rule("LIB001", "library", Severity.ERROR,
      "SI has no usable software molecule", "§3.2")
_rule("LIB002", "library", Severity.ERROR,
      "SI built over a different atom space than its library", "§3.1")
_rule("LIB003", "library", Severity.WARNING,
      "hardware molecule is Pareto-dominated", "Fig. 13")
_rule("LIB004", "library", Severity.ERROR,
      "SI cannot fit the configured Atom Containers", "§3/§5")
_rule("LIB005", "library", Severity.WARNING,
      "hardware molecule exceeds the configured Atom Containers", "§3/§5")
_rule("LIB006", "library", Severity.WARNING,
      "hardware molecule not faster than the software molecule", "§4.1")
_rule("LIB007", "library", Severity.ERROR,
      "SI offers no hardware molecule", "§3.2")
_rule("LIB008", "library", Severity.WARNING,
      "atom kind unused by every SI of the library", "Fig. 2")

# -- cfg family (§4): profile well-formedness -------------------------------
_rule("CFG001", "cfg", Severity.ERROR,
      "entry block missing or unknown", "§4")
_rule("CFG002", "cfg", Severity.ERROR,
      "out-edge probabilities do not sum to 1", "§4.1")
_rule("CFG003", "cfg", Severity.ERROR,
      "edge probability outside [0, 1]", "§4.1")
_rule("CFG004", "cfg", Severity.WARNING,
      "block unreachable from the entry", "§4")
_rule("CFG005", "cfg", Severity.ERROR,
      "SCC segmentation is not a partition of the blocks", "§4.1")
_rule("CFG006", "cfg", Severity.ERROR,
      "negative profile count", "§4.1")
_rule("CFG007", "cfg", Severity.WARNING,
      "profiled edge counts violate flow conservation", "§4.1")

# -- forecast family (§4.1/§4.2): FC placements -----------------------------
_rule("FC001", "forecast", Severity.ERROR,
      "forecast point targets an unknown block", "§4.2")
_rule("FC002", "forecast", Severity.ERROR,
      "forecast names an SI absent from the library", "§4.2")
_rule("FC003", "forecast", Severity.ERROR,
      "no use of the SI is reachable from the forecast block", "§4.2")
_rule("FC004", "forecast", Severity.ERROR,
      "forecast initial values out of range", "§4.2")
_rule("FC005", "forecast", Severity.ERROR,
      "expected executions below the FDF break-even offset", "§4.1")
_rule("FC006", "forecast", Severity.WARNING,
      "forecast block does not dominate any use of its SI", "§4.2")
_rule("FC007", "forecast", Severity.ERROR,
      "duplicate forecast for the same (block, SI) pair", "§4.2")

# -- schedule family (§3 / §5): dataflow schedules and rotations ------------
_rule("SCH001", "schedule", Severity.ERROR,
      "two operations overlap on one atom instance", "§3")
_rule("SCH002", "schedule", Severity.ERROR,
      "operation placed on an atom instance the molecule does not offer", "§3")
_rule("SCH003", "schedule", Severity.ERROR,
      "operation timing violates the dataflow (dependency or latency)", "§3")
_rule("SCH004", "schedule", Severity.ERROR,
      "makespan below the latest operation finish", "§3")
_rule("SCH005", "schedule", Severity.ERROR,
      "scheduled operations do not match the dataflow", "§3")
_rule("ROT001", "schedule", Severity.ERROR,
      "rotations overlap on the single reconfiguration port", "§5")
_rule("ROT002", "schedule", Severity.ERROR,
      "overlapping reservations of one Atom Container", "§5")
_rule("ROT003", "schedule", Severity.ERROR,
      "rotation job timing inconsistent", "§5")
_rule("ROT004", "schedule", Severity.ERROR,
      "rotation of a static atom kind", "§3")

# -- trace family (§3/§5): model-based replay of recorded run traces --------
_rule("TRC001", "trace", Severity.ERROR,
      "event cycles negative or out of order", "§5")
_rule("TRC002", "trace", Severity.ERROR,
      "rotations overlap on the single reconfiguration port", "§5")
_rule("TRC003", "trace", Severity.ERROR,
      "event references an unknown or failed Atom Container", "§5")
_rule("TRC004", "trace", Severity.ERROR,
      "Atom Container occupancy inconsistent with the replayed state", "§3/§5")
_rule("TRC005", "trace", Severity.ERROR,
      "SI executed without its molecule's atoms resident", "§3.1")
_rule("TRC006", "trace", Severity.ERROR,
      "SI execution mode/latency matches no library molecule", "§3.2")
_rule("TRC007", "trace", Severity.ERROR,
      "run totals inconsistent with the per-event deltas", "§1/§2")
_rule("TRC008", "trace", Severity.ERROR,
      "rotation timing deviates from the SelectMap port model", "§5")
_rule("TRC009", "trace", Severity.ERROR,
      "rotation of a static or unknown atom kind", "§3")
_rule("TRC010", "trace", Severity.ERROR,
      "event references an SI absent from the library", "§4.2")
_rule("TRC011", "trace", Severity.ERROR,
      "execution-mode switch bookkeeping inconsistent", "Fig. 6")
_rule("TRC012", "trace", Severity.ERROR,
      "forecast carries an invalid expectation or priority", "§4.2")
_rule("TRC013", "trace", Severity.ERROR,
      "SI did not execute the best available molecule", "§5")
_rule("TRC014", "trace", Severity.ERROR,
      "fault/recovery lifecycle inconsistent with the replayed state", "§5")
_rule("TRC015", "trace", Severity.ERROR,
      "quarantined Atom Container serves work", "§5")
_rule("TRC016", "trace", Severity.ERROR,
      "resume boundary incoherent with the recovery snapshot", "§5")

# -- feasibility family (§4/§5): static worst-case rotation guarantees ------
_rule("FEA001", "feasibility", Severity.WARNING,
      "forecast can never be satisfied before its hot spot", "§4.1")
_rule("FEA002", "feasibility", Severity.WARNING,
      "molecule can never be loaded on this platform", "§3/§5")
_rule("FEA003", "feasibility", Severity.WARNING,
      "atom kind only used by unloadable molecules", "§3")
_rule("FEA004", "feasibility", Severity.INFO,
      "worst-case rotation latency bound", "§5")
_rule("FEA005", "feasibility", Severity.WARNING,
      "degraded fabric cannot hold an SI's largest hardware molecule", "§5")

# -- explore family (§4/§5): exhaustive small-scope model checking ----------
# rispp-explore proves these over *every* reachable state of a bounded
# configuration, not just along one recorded trace; each MC rule names
# the TRC/FEA rule it generalises where one exists.
_rule("MC001", "explore", Severity.ERROR,
      "two bitstream writes overlap on the single SelectMap port", "§5")
_rule("MC002", "explore", Severity.ERROR,
      "port reservations out of sync with the pending rotation queue", "§5")
_rule("MC003", "explore", Severity.ERROR,
      "Atom Container lifecycle state incoherent", "§3/§5")
_rule("MC004", "explore", Severity.ERROR,
      "quarantined Atom Container targeted or served without repair", "§5")
_rule("MC005", "explore", Severity.ERROR,
      "state cannot drain to an idle quiescent state (deadlock/livelock)", "§5")
_rule("MC006", "explore", Severity.ERROR,
      "replanning does not converge (re-replan issues new rotations)", "§5")
_rule("MC007", "explore", Severity.ERROR,
      "rotation latency exceeds the FEA004 static bound", "§5")
_rule("MC008", "explore", Severity.ERROR,
      "repair latency exceeds the static repair bound", "§5")
_rule("MC009", "explore", Severity.ERROR,
      "terminal-state trace fails reference-machine replay", "§3/§5")
_rule("MC010", "explore", Severity.ERROR,
      "SI dispatch deviates from the best available molecule", "§5")

# -- audit family: rispp-audit, the source-contract analyzer ----------------
# AST-level checks over ``src/repro`` itself: the implementation
# contracts the verification story rests on (seeded determinism,
# declared-ahead telemetry, the diag() rule-ID contract, pure compute
# backends), machine-checked instead of enforced by convention.
_rule("AUD001", "audit", Severity.ERROR,
      "unseeded randomness or entropy source in platform code", "§5")
_rule("AUD002", "audit", Severity.ERROR,
      "wall-clock read outside the repro.obs.clock seam", "§5")
_rule("AUD003", "audit", Severity.ERROR,
      "environment read outside an allowlisted seam", "§5")
_rule("AUD004", "audit", Severity.ERROR,
      "order-sensitive iteration over an unordered set", "§5")
_rule("AUD005", "audit", Severity.ERROR,
      "instrumentation site does not resolve against the metric catalogue",
      "§5")
_rule("AUD006", "audit", Severity.ERROR,
      "declared metric is never instrumented (dead catalogue entry)", "§5")
_rule("AUD007", "audit", Severity.ERROR,
      "rule ID not registered in the rule catalogue", "§5")
_rule("AUD008", "audit", Severity.ERROR,
      "registered rule is never emitted by any checker", "§5")
_rule("AUD009", "audit", Severity.ERROR,
      "compute-backend kernel mutates an input argument", "§5")
_rule("AUD010", "audit", Severity.ERROR,
      "compute-backend kernel writes undeclared state", "§5")
_rule("AUD011", "audit", Severity.WARNING,
      "stale baseline suppression matches no finding", "§5")

# -- events family: runtime event-bus wiring coherence ----------------------
# The runtime core dispatches through the typed event bus
# (``repro.runtime.events``); trace byte-identity with the pre-bus loop
# rests on the wiring being exactly the documented one.  These rules
# hold the live default bus to ``DEFAULT_WIRING`` and the event
# taxonomy to the trace-kind vocabulary (``docs/events.md``).
_rule("EVT001", "events", Severity.ERROR,
      "event-bus wiring diverges from the documented default ordering", "§5")
_rule("EVT002", "events", Severity.ERROR,
      "trace recorder is not the first handler of a traced event", "§5")
_rule("EVT003", "events", Severity.ERROR,
      "event taxonomy and trace-kind vocabulary do not line up", "§5")


def rule(rule_id: str) -> Rule:
    """Look up a rule; raises ``KeyError`` for unknown IDs."""
    return RULES[rule_id]


def rules_of_family(family: str) -> list[Rule]:
    return [r for r in RULES.values() if r.family == family]


def families() -> list[str]:
    """All declared rule families, sorted."""
    return sorted({r.family for r in RULES.values()})


def expand_selectors(selectors: Iterable[str]) -> set[str]:
    """Expand ``--select``/``--ignore`` patterns into concrete rule IDs.

    A selector matches case-insensitively by rule-ID prefix, so ``TRC``
    selects the whole trace family and ``trc005`` one rule.  An empty or
    unmatched selector raises ``ValueError`` — a typo silently selecting
    nothing would defeat the point of filtering.
    """
    expanded: set[str] = set()
    for selector in selectors:
        prefix = selector.strip().upper()
        matched = [rid for rid in RULES if prefix and rid.startswith(prefix)]
        if not matched:
            raise ValueError(
                f"selector {selector!r} matches no rule ID "
                f"(families: {families()})"
            )
        expanded.update(matched)
    return expanded


def render_rule_list(wanted_families: "tuple[str, ...] | None" = None) -> str:
    """The ``--list-rules`` table: one line per rule of the given families."""
    lines = []
    for rule_id, r in sorted(RULES.items()):
        if wanted_families is not None and r.family not in wanted_families:
            continue
        ref = f"  ({r.paper_ref})" if r.paper_ref else ""
        lines.append(
            f"{rule_id}  [{r.severity}] {r.family:<11} {r.title}{ref}"
        )
    return "\n".join(lines)


def diag(
    rule_id: str,
    message: str,
    *,
    subject: str = "",
    location: str = "",
    severity: Severity | None = None,
    **context: object,
) -> Diagnostic:
    """Build a diagnostic for a catalogued rule (default severity from it)."""
    r = RULES[rule_id]
    return Diagnostic(
        rule_id=rule_id,
        severity=severity if severity is not None else r.severity,
        message=message,
        subject=subject,
        location=location,
        context=context,
    )
