"""rispp-audit: the AST-level source-contract analyzer (``repro audit``).

The platform's verification story — byte-identical seeded chaos
reports, trace-equivalent backends, replayable golden traces — rests on
implementation contracts that no runtime test can see from the outside:
model code must never consult the host clock or an unseeded entropy
source, every metric name must resolve against the declared catalogue,
every ``diag()`` must use a registered rule ID, and compute-backend
kernels must never mutate their inputs.  This module machine-checks
those contracts over the source tree itself, reusing the Diagnostic /
rule-registry machinery every other analyser shares.

Rule groups (family ``audit``, catalogued in ``docs/analysis.md``):

* **determinism sanitizer** (AUD001–AUD004) — unseeded randomness and
  entropy sources, wall-clock reads outside the
  :mod:`repro.obs.clock` seam, environment reads, and order-sensitive
  iteration over unordered ``set`` values;
* **obs contract** (AUD005–AUD006) — every instrumentation site
  (``registry.counter("name")``, ``.labels(...)``) must statically
  resolve against :data:`repro.obs.catalogue.METRICS` (name, metric
  type, label names, declared label values), and every declared metric
  must be instrumented somewhere (dead-catalogue-entry detection);
* **rules contract** (AUD007–AUD008) — every rule-ID literal (and every
  ``diag()`` first argument) must be registered in
  :mod:`repro.analysis.rules`, and every registered rule must be
  referenced by some checker;
* **backend purity** (AUD009–AUD010) — a lightweight attribute-store /
  alias pass over :class:`repro.core.backend.ComputeBackend` subclasses
  proving kernel methods never mutate their arguments or undeclared
  state (instance attributes assigned in ``__init__`` and module names
  listed in a module-level ``__audit_caches__`` frozenset are the
  declared caches).

Intentional exceptions live in a checked-in suppression baseline
(``audit_baseline.json`` at the repository root): entries match on
``(rule, path, symbol)`` so they survive line churn, every entry must
carry a reason, and stale entries are flagged (AUD011) so the baseline
can only shrink silently, never grow.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import Diagnostic, DiagnosticReport
from .rules import RULES, diag

__all__ = [
    "AuditResult",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Suppression",
    "audit_source",
    "package_root",
    "run_audit",
]

#: Name of the checked-in suppression baseline at the repository root.
DEFAULT_BASELINE_NAME = "audit_baseline.json"

#: Path suffixes (posix) allowed to read the host clock — the seam.
CLOCK_SEAM_SUFFIXES: tuple[str, ...] = ("obs/clock.py",)

def _family_prefixes() -> tuple[str, ...]:
    """Registered rule-ID prefixes (``TRC``, ``AUD``, ...), longest first."""
    prefixes: set[str] = set()
    for rid in RULES:
        match = re.match(r"[A-Z]+", rid)
        if match is not None:
            prefixes.add(match.group(0))
    return tuple(sorted(prefixes, key=lambda p: (-len(p), p)))


#: A string literal shaped ``<known-prefix>NNN`` must name a registered
#: rule (AUD007).
_RULE_SHAPE = re.compile(r"(?:" + "|".join(_family_prefixes()) + r")\d{3}")

#: ``random`` module attributes that are fine: seeded-instance
#: construction (the zero-argument call is caught separately).
_RANDOM_ALLOWED = frozenset({"Random"})
#: ``numpy.random`` attributes that are fine when called with a seed.
_NP_RANDOM_ALLOWED = frozenset({"default_rng"})
#: ``datetime`` attributes that read the wall clock.
_DATETIME_CLOCK_ATTRS = frozenset({"now", "utcnow", "today"})
#: Modules watched by the determinism sanitizer (canonical names).
_WATCHED_MODULES = frozenset(
    {"random", "secrets", "uuid", "time", "os", "datetime", "numpy"}
)

#: Callables whose consumption of an iterable is order-insensitive.
_ORDER_FREE_CALLS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)
#: Callables that materialise their argument's iteration order.
_ORDER_CASTS = frozenset({"list", "tuple", "enumerate", "iter"})
#: Set methods returning another set (propagate set-ness).
_SET_PRODUCERS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "sort", "reverse", "fill",
        "intersection_update", "difference_update", "symmetric_difference_update",
    }
)
#: Instrument-factory method names of the obs registry.
_INSTRUMENT_KINDS = frozenset({"counter", "gauge", "histogram"})


# -- baseline -----------------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    """One intentional, documented exception in the baseline."""

    rule_id: str
    path: str
    symbol: str
    reason: str

    def matches(self, d: Diagnostic) -> bool:
        return (
            d.rule_id == self.rule_id
            and d.subject == self.path
            and str(d.context.get("symbol", "")) == self.symbol
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "symbol": self.symbol,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The checked-in suppression set (``audit_baseline.json``)."""

    entries: list[Suppression] = field(default_factory=list)
    path: str = ""

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        entries: list[Suppression] = []
        for raw in data.get("suppressions", ()):
            if not isinstance(raw, Mapping):
                raise ValueError(f"baseline entry is not an object: {raw!r}")
            missing = {"rule", "path", "symbol", "reason"} - set(raw)
            if missing:
                raise ValueError(
                    f"baseline entry {raw!r} lacks {sorted(missing)} "
                    "(every suppression must be documented)"
                )
            if not str(raw["reason"]).strip():
                raise ValueError(
                    f"baseline entry {raw!r} has an empty reason"
                )
            entries.append(
                Suppression(
                    rule_id=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw["symbol"]),
                    reason=str(raw["reason"]),
                )
            )
        return cls(entries=entries, path=str(path))

    def apply(
        self, report: DiagnosticReport
    ) -> tuple[DiagnosticReport, int, list[Suppression]]:
        """(kept findings, suppressed count, stale entries)."""
        used: set[Suppression] = set()
        kept: list[Diagnostic] = []
        for d in report:
            hit = next((s for s in self.entries if s.matches(d)), None)
            if hit is None:
                kept.append(d)
            else:
                used.add(hit)
        stale = [s for s in self.entries if s not in used]
        return DiagnosticReport(kept), len(report) - len(kept), stale


# -- per-file facts for the cross-file checks ---------------------------------


@dataclass
class FileFacts:
    """What one module contributes to the whole-tree contracts."""

    path: str
    #: Metric names used at instrumentation sites.
    metric_uses: set[str] = field(default_factory=set)
    #: Rule-ID-shaped string literals appearing anywhere in the module.
    rule_literals: set[str] = field(default_factory=set)


# -- helpers ------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _root_name(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript/call chain, if any."""
    while True:
        if isinstance(node, ast.Attribute) or isinstance(node, ast.Starred):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def _literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _metric_catalogue() -> Mapping[str, object]:
    from ..obs.catalogue import METRICS

    return METRICS


class _Scope:
    """One lexical scope: name bindings with set-ness, and instruments.

    ``bindings`` maps every name assigned in the scope to whether its
    last-seen value was set-typed; tracking non-set bindings too lets
    the lexical lookup stop at shadowing locals instead of falling
    through to an outer set-typed constant (false-positive guard).
    """

    __slots__ = ("name", "bindings", "instruments")

    def __init__(self, name: str):
        self.name = name
        self.bindings: dict[str, bool] = {}
        self.instruments: dict[str, object] = {}


# -- the per-module analyzer --------------------------------------------------


class _ModuleAuditor(ast.NodeVisitor):
    """Single-pass visitor emitting AUD001–AUD005 and AUD007 findings."""

    def __init__(
        self,
        relpath: str,
        report: DiagnosticReport,
        facts: FileFacts,
    ):
        self.relpath = relpath
        self.report = report
        self.facts = facts
        self.clock_seam = any(
            relpath.endswith(suffix) for suffix in CLOCK_SEAM_SUFFIXES
        )
        #: Alias -> canonical module name for watched imports.
        self.modules: dict[str, str] = {}
        self.scopes: list[_Scope] = [_Scope("<module>")]
        #: Attribute nodes already judged as part of an outer chain.
        self._consumed: set[int] = set()
        #: Comprehension nodes consumed by an order-insensitive call.
        self._order_free: set[int] = set()

    # -- emission ---------------------------------------------------------

    def symbol(self) -> str:
        parts = [s.name for s in self.scopes[1:]]
        return ".".join(parts) if parts else "<module>"

    def emit(
        self, rule_id: str, message: str, node: ast.AST, **context: object
    ) -> None:
        line = getattr(node, "lineno", 0)
        self.report.append(
            diag(
                rule_id,
                message,
                subject=self.relpath,
                location=f"line {line}",
                line=line,
                symbol=self.symbol(),
                **context,
            )
        )

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in _WATCHED_MODULES:
                self.modules[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0 and module in _WATCHED_MODULES:
            for alias in node.names:
                name, bound = alias.name, alias.asname or alias.name
                if module == "time" and not self.clock_seam:
                    self.emit(
                        "AUD002",
                        f"wall-clock primitive 'time.{name}' imported "
                        "directly; route host-time reads through "
                        "repro.obs.clock",
                        node,
                    )
                elif module == "random" or module == "secrets":
                    if not (module == "random" and name in _RANDOM_ALLOWED):
                        self.emit(
                            "AUD001",
                            f"entropy primitive '{module}.{name}' imported "
                            "directly; model paths must use seeded "
                            "random.Random instances",
                            node,
                        )
                elif module == "uuid" and name in ("uuid1", "uuid4"):
                    self.emit(
                        "AUD001",
                        f"'uuid.{name}' draws from the process entropy "
                        "pool; seeded model paths cannot use it",
                        node,
                    )
                elif module == "os" and name in ("environ", "getenv"):
                    self.emit(
                        "AUD003",
                        f"'os.{name}' imported directly; environment "
                        "reads need an allowlisted seam or a baseline "
                        "suppression",
                        node,
                    )
                elif module == "os" and name == "urandom":
                    self.emit(
                        "AUD001",
                        "'os.urandom' is an entropy source; seeded model "
                        "paths cannot use it",
                        node,
                    )
                elif module == "datetime":
                    # ``from datetime import datetime`` binds the class;
                    # track it so ``datetime.now()`` resolves (AUD002).
                    self.modules[bound] = "datetime"
        self.generic_visit(node)

    # -- scopes and assignments -------------------------------------------

    def _push(self, name: str) -> None:
        self.scopes.append(_Scope(name))

    def _pop(self) -> None:
        self.scopes.pop()

    def _bind(self, name: str, setish: bool) -> None:
        self.scopes[-1].bindings[name] = setish

    def _bind_target(self, target: ast.expr, setish: bool) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, setish)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, False)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, False)

    def _lookup_setish(self, name: str) -> bool:
        for scope in reversed(self.scopes):
            if name in scope.bindings:
                return scope.bindings[name]
        return False

    def _visit_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        self._push(node.name)
        args = node.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self._bind(arg.arg, False)
        self.generic_visit(node)
        self._pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._push(node.name)
        self.generic_visit(node)
        self._pop()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name is not None:
            self._bind(node.name, False)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._bind_target(node.optional_vars, False)
        self.generic_visit(node)

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup_setish(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setish(node.left) or self._is_setish(node.right)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_PRODUCERS
                and self._is_setish(node.func.value)
            ):
                return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        setish = self._is_setish(node.value)
        spec = self._instrument_spec(node.value)
        scope = self.scopes[-1]
        for target in node.targets:
            self._bind_target(target, setish)
            if isinstance(target, ast.Name):
                if spec is not None:
                    scope.instruments[target.id] = spec
                else:
                    scope.instruments.pop(target.id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind_target(node.target, self._is_setish(node.value))

    # -- AUD004: order-sensitive set iteration ----------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_setish(node.iter):
            self.emit(
                "AUD004",
                "for-loop iterates an unordered set; iteration order is "
                "interpreter-dependent — sort first (sorted(...)) or use "
                "an ordered container",
                node,
            )
        self._bind_target(node.target, False)
        self.generic_visit(node)

    def _check_comprehension(
        self, node: "ast.ListComp | ast.GeneratorExp | ast.DictComp"
    ) -> None:
        for gen in node.generators:
            self._bind_target(gen.target, False)
        if id(node) in self._order_free:
            return
        for gen in node.generators:
            if self._is_setish(gen.iter):
                self.emit(
                    "AUD004",
                    "comprehension iterates an unordered set into an "
                    "order-preserving result; sort first (sorted(...))",
                    node,
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    # -- calls: determinism, obs contract, rules contract -----------------

    def _instrument_spec(self, node: ast.expr) -> object | None:
        """The MetricSpec produced by ``<x>.counter("name")``-style calls."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _INSTRUMENT_KINDS
        ):
            return None
        name = _literal_str(node.args[0] if node.args else None)
        if name is None:
            return None
        catalogue = _metric_catalogue()
        return catalogue.get(name)

    def _check_instrument_call(self, node: ast.Call, kind: str) -> None:
        name = _literal_str(node.args[0] if node.args else None)
        if name is None:
            return
        self.facts.metric_uses.add(name)
        catalogue = _metric_catalogue()
        spec = catalogue.get(name)
        if spec is None:
            self.emit(
                "AUD005",
                f"metric {name!r} is not declared in the repro.obs "
                "catalogue; instrumentation sites must resolve statically",
                node,
                metric=name,
            )
            return
        declared_type = getattr(spec, "type", kind)
        if declared_type != kind:
            self.emit(
                "AUD005",
                f"metric {name!r} is declared as a {declared_type}, but "
                f"this site creates a {kind}",
                node,
                metric=name,
            )

    def _check_labels_call(self, node: ast.Call) -> None:
        assert isinstance(node.func, ast.Attribute)
        receiver = node.func.value
        spec: object | None = None
        if isinstance(receiver, ast.Call):
            spec = self._instrument_spec(receiver)
        elif isinstance(receiver, ast.Name):
            for scope in reversed(self.scopes):
                if receiver.id in scope.instruments:
                    spec = scope.instruments[receiver.id]
                    break
        if spec is None:
            return
        if any(kw.arg is None for kw in node.keywords):
            return  # **splat: not statically resolvable
        declared = tuple(getattr(spec, "labels", ()))
        metric = str(getattr(spec, "name", "?"))
        given = tuple(sorted(kw.arg for kw in node.keywords if kw.arg))
        if given != tuple(sorted(declared)):
            self.emit(
                "AUD005",
                f"metric {metric!r} declares labels {declared}, but this "
                f"site binds {given}",
                node,
                metric=metric,
            )
            return
        label_values = getattr(spec, "label_values", {})
        for kw in node.keywords:
            value = _literal_str(kw.value)
            allowed = label_values.get(kw.arg, ()) if kw.arg else ()
            if value is not None and allowed and value not in allowed:
                self.emit(
                    "AUD005",
                    f"metric {metric!r} label {kw.arg!r} declares values "
                    f"{tuple(allowed)}, got {value!r}",
                    node,
                    metric=metric,
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Order-insensitive consumers exempt their comprehension argument.
        if isinstance(func, ast.Name) and func.id in _ORDER_FREE_CALLS:
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    self._order_free.add(id(arg))
        # Order-materialising casts over a set are AUD004 sinks.
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_CASTS
            and node.args
            and self._is_setish(node.args[0])
        ):
            self.emit(
                "AUD004",
                f"{func.id}() materialises the iteration order of an "
                "unordered set; sort first (sorted(...))",
                node,
            )
        if isinstance(func, ast.Attribute):
            if func.attr == "join" and node.args and self._is_setish(node.args[0]):
                self.emit(
                    "AUD004",
                    "str.join over an unordered set produces an "
                    "interpreter-dependent string; sort first",
                    node,
                )
            if func.attr in _INSTRUMENT_KINDS:
                self._check_instrument_call(node, func.attr)
            if func.attr == "labels":
                self._check_labels_call(node)
        # diag() with a literal rule ID must be registered.  IDs shaped
        # like a known family are handled by the literal check below
        # (exactly one finding per site); this catches foreign shapes.
        is_diag = (isinstance(func, ast.Name) and func.id == "diag") or (
            isinstance(func, ast.Attribute) and func.attr == "diag"
        )
        if is_diag:
            rid = _literal_str(node.args[0] if node.args else None)
            if rid is not None:
                self.facts.rule_literals.add(rid)
                if rid not in RULES and not _RULE_SHAPE.fullmatch(rid):
                    self.emit(
                        "AUD007",
                        f"diag() uses rule ID {rid!r}, which is not "
                        "registered in repro.analysis.rules",
                        node,
                        rule=rid,
                    )
        # Unseeded constructors: random.Random() / np.random.default_rng()
        chain = _attr_chain(func) if isinstance(func, ast.Attribute) else None
        if chain is not None and not node.args and not node.keywords:
            module = self.modules.get(chain[0])
            if (
                module == "random"
                and len(chain) == 2
                and chain[1] in _RANDOM_ALLOWED
            ) or (
                module == "numpy"
                and len(chain) == 3
                and chain[1] == "random"
                and chain[2] in _NP_RANDOM_ALLOWED
            ):
                self.emit(
                    "AUD001",
                    f"{'.'.join(chain)}() without a seed draws from the "
                    "process entropy pool; pass an explicit seed",
                    node,
                )
        self.generic_visit(node)

    # -- attribute chains: clock / entropy / environment ------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) in self._consumed:
            self.generic_visit(node)
            return
        chain = _attr_chain(node)
        if chain is not None:
            # Judge the chain once, at its outermost attribute.
            inner = node.value
            while isinstance(inner, ast.Attribute):
                self._consumed.add(id(inner))
                inner = inner.value
            self._check_chain(chain, node)
        self.generic_visit(node)

    def _check_chain(self, chain: list[str], node: ast.AST) -> None:
        module = self.modules.get(chain[0])
        if module is None or len(chain) < 2:
            return
        attr = chain[1]
        dotted = ".".join(chain)
        if module == "time":
            if not self.clock_seam:
                self.emit(
                    "AUD002",
                    f"direct wall-clock read {dotted!r}; route host-time "
                    "reads through the repro.obs.clock seam",
                    node,
                )
        elif module == "datetime":
            if chain[-1] in _DATETIME_CLOCK_ATTRS and not self.clock_seam:
                self.emit(
                    "AUD002",
                    f"direct wall-clock read {dotted!r}; route host-time "
                    "reads through the repro.obs.clock seam",
                    node,
                )
        elif module == "random":
            if attr not in _RANDOM_ALLOWED:
                self.emit(
                    "AUD001",
                    f"{dotted!r} uses the process-global (unseeded) RNG; "
                    "model paths must thread a seeded random.Random",
                    node,
                )
        elif module == "secrets":
            self.emit(
                "AUD001",
                f"{dotted!r} is an entropy source; seeded model paths "
                "cannot use it",
                node,
            )
        elif module == "uuid":
            if attr in ("uuid1", "uuid4"):
                self.emit(
                    "AUD001",
                    f"{dotted!r} draws from the process entropy pool; "
                    "seeded model paths cannot use it",
                    node,
                )
        elif module == "os":
            if attr == "urandom":
                self.emit(
                    "AUD001",
                    "'os.urandom' is an entropy source; seeded model "
                    "paths cannot use it",
                    node,
                )
            elif attr in ("environ", "getenv"):
                self.emit(
                    "AUD003",
                    f"environment read {dotted!r}; configuration must "
                    "flow through explicit arguments or a baselined seam",
                    node,
                )
        elif module == "numpy":
            if attr == "random" and (
                len(chain) == 2 or chain[2] not in _NP_RANDOM_ALLOWED
            ):
                self.emit(
                    "AUD001",
                    f"{dotted!r} uses numpy's process-global RNG; use "
                    "numpy.random.default_rng(seed)",
                    node,
                )

    # -- rule-ID-shaped literals ------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and _RULE_SHAPE.fullmatch(node.value):
            self.facts.rule_literals.add(node.value)
            if node.value not in RULES:
                self.emit(
                    "AUD007",
                    f"rule-ID literal {node.value!r} is not registered in "
                    "repro.analysis.rules",
                    node,
                    rule=node.value,
                )


# -- backend purity (AUD009 / AUD010) -----------------------------------------


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _declared_module_caches(tree: ast.Module) -> set[str]:
    """Names listed in a module-level ``__audit_caches__`` declaration."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__audit_caches__"
                for t in stmt.targets
            )
        ):
            names: set[str] = set()
            for literal in ast.walk(stmt.value):
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    names.add(literal.value)
            return names
    return set()


def _backend_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within the module) from ComputeBackend."""
    classes = [s for s in tree.body if isinstance(s, ast.ClassDef)]
    known = {"ComputeBackend"}
    found: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in found:
                continue
            bases = {b.id for b in cls.bases if isinstance(b, ast.Name)} | {
                b.attr for b in cls.bases if isinstance(b, ast.Attribute)
            }
            if bases & known:
                found[cls.name] = cls
                known.add(cls.name)
                changed = True
    return list(found.values())


def _init_declared_attrs(cls: ast.ClassDef) -> set[str]:
    attrs: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            self_name = stmt.args.args[0].arg if stmt.args.args else "self"
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        attrs.add(target.attr)
    return attrs


class _KernelPurity:
    """Alias-tracking walk of one backend kernel method."""

    def __init__(
        self,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        declared_attrs: set[str],
        module_names: set[str],
        module_caches: set[str],
        emit: "_Emitter",
    ):
        args = fn.args
        self.cls = cls
        self.fn = fn
        self.emit = emit
        self.declared_attrs = declared_attrs
        self.module_names = module_names
        self.module_caches = module_caches
        positional = [a.arg for a in args.posonlyargs + args.args]
        self.self_name = positional[0] if positional else "self"
        params = positional[1:] + [a.arg for a in args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        #: Names aliasing an input argument (or an element of one).
        self.aliases: set[str] = set(params)
        #: Names aliasing internal (self-derived) state.
        self.self_derived: set[str] = set()
        #: Every locally bound name.
        self.locals: set[str] = set(params) | {self.self_name}

    # -- classification ---------------------------------------------------

    def _is_alias_expr(self, node: ast.expr) -> bool:
        """Does this expression alias an input argument (or element)?"""
        if isinstance(node, ast.Name):
            return node.id in self.aliases
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._is_alias_expr(node.value)
        return False

    def _is_self_derived(self, node: ast.expr) -> bool:
        root = _root_name(node)
        if root == self.self_name:
            return True
        return root is not None and root in self.self_derived

    # -- emission ----------------------------------------------------------

    def _where(self) -> str:
        return f"{self.cls.name}.{self.fn.name}"

    def _flag_arg_mutation(self, node: ast.AST, what: str) -> None:
        self.emit(
            "AUD009",
            f"backend kernel {self._where()} mutates its input "
            f"({what}); kernels must treat arguments as immutable",
            node,
            symbol=self._where(),
        )

    def _flag_state_write(self, node: ast.AST, what: str) -> None:
        self.emit(
            "AUD010",
            f"backend kernel {self._where()} writes undeclared state "
            f"({what}); declare caches in __init__ or __audit_caches__",
            node,
            symbol=self._where(),
        )

    # -- store / call checks ----------------------------------------------

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        if isinstance(target, ast.Name):
            return  # plain rebinding never mutates a value
        root = _root_name(target)
        if root is None:
            return
        if root in self.aliases:
            self._flag_arg_mutation(target, f"store into {root!r}")
        elif root == self.self_name:
            attr = self._first_attr(target)
            if attr is not None and attr not in self.declared_attrs:
                self._flag_state_write(target, f"self.{attr}")
        elif root in self.self_derived or root in self.locals:
            return
        elif root in self.module_names and root not in self.module_caches:
            self._flag_state_write(target, f"module global {root!r}")

    def _first_attr(self, node: ast.expr) -> str | None:
        """The attribute closest to the root: ``self.X[...].y`` -> ``X``."""
        attr: str | None = None
        while True:
            if isinstance(node, ast.Attribute):
                attr = node.attr
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                return attr

    def _check_calls(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            for kw in call.keywords:
                if kw.arg == "out" and self._is_alias_expr(kw.value):
                    self._flag_arg_mutation(
                        call, f"out= into {_root_name(kw.value)!r}"
                    )
            func = call.func
            if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
                continue
            root = _root_name(func.value)
            if root is None:
                continue
            if root in self.aliases:
                self._flag_arg_mutation(call, f"{root}.{func.attr}()")
            elif root == self.self_name:
                attr = self._first_attr(func.value)
                if attr is not None and attr not in self.declared_attrs:
                    self._flag_state_write(call, f"self.{attr}.{func.attr}()")
            elif root in self.self_derived or root in self.locals:
                continue
            elif root in self.module_names and root not in self.module_caches:
                self._flag_state_write(call, f"{root}.{func.attr}()")

    # -- statement walk ----------------------------------------------------

    def run(self) -> None:
        self._walk(self.fn.body)

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Element binding from an alias container keeps aliasing.
                self._bind(element, value)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        self.locals.add(name)
        self.aliases.discard(name)
        self.self_derived.discard(name)
        if self._is_alias_expr(value):
            self.aliases.add(name)
        elif self._is_self_derived(value):
            self.self_derived.add(name)

    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._check_calls(stmt.value)
                for target in stmt.targets:
                    self._check_store(target)
                    self._bind(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._check_calls(stmt.value)
                    self._check_store(stmt.target)
                    self._bind(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                self._check_calls(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    if stmt.target.id in self.aliases:
                        self._flag_arg_mutation(
                            stmt.target,
                            f"augmented assignment to {stmt.target.id!r}",
                        )
                else:
                    self._check_store(stmt.target)
            elif isinstance(stmt, ast.Global):
                for name in stmt.names:
                    self.locals.add(name)
                    if name not in self.module_caches:
                        self._flag_state_write(
                            stmt, f"global statement for {name!r}"
                        )
            elif isinstance(stmt, ast.For):
                self._check_calls(stmt.iter)
                self._bind(stmt.target, stmt.iter)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._check_calls(stmt.test)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.If):
                self._check_calls(stmt.test)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._check_calls(item.context_expr)
                self._walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)
            elif isinstance(stmt, ast.FunctionDef):
                # Nested closures may mutate enclosing names: analyse the
                # body in the same alias context.
                self.locals.add(stmt.name)
                self._walk(stmt.body)
            elif isinstance(stmt, (ast.Return, ast.Expr, ast.Assert, ast.Raise)):
                for value in ast.iter_child_nodes(stmt):
                    if isinstance(value, ast.expr):
                        self._check_calls(value)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._check_store(target)


class _Emitter:
    """diag() wrapper shared by the purity pass (callable protocol)."""

    def __init__(self, relpath: str, report: DiagnosticReport):
        self.relpath = relpath
        self.report = report

    def __call__(
        self, rule_id: str, message: str, node: ast.AST, *, symbol: str = ""
    ) -> None:
        line = getattr(node, "lineno", 0)
        self.report.append(
            diag(
                rule_id,
                message,
                subject=self.relpath,
                location=f"line {line}",
                line=line,
                symbol=symbol or "<module>",
            )
        )


def _audit_backend_purity(
    tree: ast.Module, relpath: str, report: DiagnosticReport
) -> None:
    classes = _backend_classes(tree)
    if not classes:
        return
    emit = _Emitter(relpath, report)
    module_names = _module_level_names(tree)
    module_caches = _declared_module_caches(tree)
    for cls in classes:
        declared = _init_declared_attrs(cls)
        for stmt in cls.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name.startswith("__"):
                continue  # __init__ and dunders set up declared state
            _KernelPurity(
                cls, stmt, declared, module_names, module_caches, emit
            ).run()


# -- whole-tree driver --------------------------------------------------------


def audit_source(
    source: str, relpath: str, report: DiagnosticReport
) -> FileFacts:
    """Audit one module's source text; findings land in ``report``."""
    tree = ast.parse(source, filename=relpath)
    facts = FileFacts(path=relpath)
    _ModuleAuditor(relpath, report, facts).visit(tree)
    _audit_backend_purity(tree, relpath, report)
    return facts


def _cross_file_checks(
    all_facts: Sequence[FileFacts], report: DiagnosticReport
) -> None:
    """Dead catalogue entries (AUD006) and dead rules (AUD008).

    These only run when the scanned tree contains the declaring module —
    a synthetic test tree declares nothing, so nothing can be dead.
    """
    catalogue_path = next(
        (f.path for f in all_facts if f.path.endswith("obs/catalogue.py")), None
    )
    if catalogue_path is not None:
        used: set[str] = set()
        for facts in all_facts:
            used |= facts.metric_uses
        for name in _metric_catalogue():
            if name not in used:
                report.append(
                    diag(
                        "AUD006",
                        f"metric {name!r} is declared in the catalogue but "
                        "never instrumented anywhere in the tree",
                        subject=catalogue_path,
                        location=f"metric {name}",
                        line=0,
                        symbol=name,
                        metric=name,
                    )
                )
    rules_path = next(
        (f.path for f in all_facts if f.path.endswith("analysis/rules.py")), None
    )
    if rules_path is not None:
        referenced: set[str] = set()
        for facts in all_facts:
            if facts.path == rules_path:
                continue
            referenced |= facts.rule_literals
        for rid in RULES:
            if rid not in referenced:
                report.append(
                    diag(
                        "AUD008",
                        f"rule {rid!r} is registered but never referenced "
                        "by any checker in the tree",
                        subject=rules_path,
                        location=f"rule {rid}",
                        line=0,
                        symbol=rid,
                        rule=rid,
                    )
                )


@dataclass
class AuditResult:
    """Outcome of one rispp-audit run."""

    report: DiagnosticReport
    files_scanned: int
    suppressed: int
    stale_suppressions: list[Suppression]
    root: str
    baseline_path: str | None

    def exit_code(self) -> int:
        return self.report.exit_code()

    def summary(self) -> str:
        tail = ""
        if self.suppressed:
            tail = f", {self.suppressed} baseline-suppressed"
        return (
            f"rispp-audit: scanned {self.files_scanned} file(s) "
            f"under {self.root}{tail}"
        )


def package_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def _iter_files(root: Path) -> list[Path]:
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def run_audit(
    root: "str | Path | None" = None,
    *,
    baseline: "Baseline | str | Path | None" = "auto",
) -> AuditResult:
    """Audit a source tree (default: the ``repro`` package itself).

    ``baseline="auto"`` loads ``audit_baseline.json`` from the display
    root (the repository root for default runs) when present; pass
    ``None`` to force a baseline-free run or a path/:class:`Baseline`
    to use a specific one.
    """
    pkg = package_root()
    scan_root = Path(root).resolve() if root is not None else pkg
    if not scan_root.exists():
        raise FileNotFoundError(f"audit root does not exist: {scan_root}")
    if scan_root == pkg and pkg.parent.name == "src":
        display_base = pkg.parent.parent  # repository root: "src/repro/..."
    elif scan_root.is_file():
        display_base = scan_root.parent
    else:
        display_base = scan_root
    report = DiagnosticReport()
    all_facts: list[FileFacts] = []
    files = _iter_files(scan_root)
    for path in files:
        try:
            relpath = path.relative_to(display_base).as_posix()
        except ValueError:  # pragma: no cover - display base always above
            relpath = path.as_posix()
        all_facts.append(
            audit_source(path.read_text(encoding="utf-8"), relpath, report)
        )
    _cross_file_checks(all_facts, report)

    resolved: Baseline | None
    if baseline == "auto":
        default = display_base / DEFAULT_BASELINE_NAME
        resolved = Baseline.load(default) if default.exists() else None
    elif baseline is None:
        resolved = None
    elif isinstance(baseline, Baseline):
        resolved = baseline
    else:
        resolved = Baseline.load(baseline)

    suppressed = 0
    stale: list[Suppression] = []
    if resolved is not None:
        report, suppressed, stale = resolved.apply(report)
        for entry in stale:
            report.append(
                diag(
                    "AUD011",
                    f"baseline suppression ({entry.rule_id}, "
                    f"{entry.path}, {entry.symbol}) matches no finding; "
                    "remove it",
                    subject=resolved.path or DEFAULT_BASELINE_NAME,
                    location=f"{entry.rule_id} {entry.path}",
                    line=0,
                    symbol=entry.symbol,
                )
            )
    return AuditResult(
        report=report,
        files_scanned=len(files),
        suppressed=suppressed,
        stale_suppressions=stale,
        root=str(scan_root),
        baseline_path=resolved.path if resolved is not None else None,
    )
