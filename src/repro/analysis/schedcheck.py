"""Schedule feasibility checks (rules SCH001..SCH005, ROT001..ROT004).

Two kinds of "schedule" exist in the model and both get checked:

**Dataflow schedules** (:class:`ScheduleArtifact`) — a list-scheduler
result placing an SI's atomic operations onto a molecule's atom
instances (§3, the spatial/temporal trade-off).  Feasibility means: no
two operations overlap on one instance (SCH001), no operation uses an
instance the molecule does not offer (SCH002), dependencies are honoured
(SCH003), the makespan covers the last finish plus the issue overhead
(SCH004), and the placements cover the dataflow exactly (SCH005).

**Rotation logs** (:class:`RotationLog`) — the reconfiguration-port job
sequence of a run (§5).  The prototype has a *single* SelectMap port, so
jobs must be strictly serialised (ROT001: the per-step reconfiguration
bandwidth is one bitstream write); a container must never be reserved by
two overlapping jobs (ROT002: no double-assignment); job timing must be
internally consistent and match the atom's bitstream rotation latency
(ROT003); static atoms never rotate (ROT004).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from .diagnostics import Diagnostic
from .registry import LintContext, RotationLog, ScheduleArtifact, checker, diag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.schedule import ScheduledOp


@checker("dataflow-schedule", "schedule", ScheduleArtifact)
def check_schedule(artifact: ScheduleArtifact, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = artifact.subject or ctx.subject or "schedule"
    dataflow, molecule, schedule = artifact.dataflow, artifact.molecule, artifact.schedule
    unconstrained = set(artifact.unconstrained_kinds)
    ops = dataflow.ops

    finish_by_op: dict[str, int] = {}
    seen_ops: set[str] = set()
    for placed in schedule.placements:
        loc = f"op {placed.op_id}"
        if placed.op_id not in ops:
            yield diag(
                "SCH005",
                f"schedule places operation {placed.op_id!r} that the "
                "dataflow does not contain",
                subject=subject, location=loc, op=placed.op_id,
            )
            continue
        if placed.op_id in seen_ops:
            yield diag(
                "SCH005",
                f"operation {placed.op_id!r} is placed twice",
                subject=subject, location=loc, op=placed.op_id,
            )
        seen_ops.add(placed.op_id)
        op = ops[placed.op_id]
        if placed.kind != op.kind:
            yield diag(
                "SCH005",
                f"operation {placed.op_id!r} runs on atom kind "
                f"{placed.kind!r} but the dataflow declares {op.kind!r}",
                subject=subject, location=loc, op=placed.op_id,
                scheduled_kind=placed.kind, dataflow_kind=op.kind,
            )
        if placed.finish - placed.start != op.latency or placed.start < 0:
            yield diag(
                "SCH003",
                f"operation {placed.op_id!r} occupies "
                f"[{placed.start}, {placed.finish}) but its latency is "
                f"{op.latency}",
                subject=subject, location=loc, op=placed.op_id,
                start=placed.start, finish=placed.finish, latency=op.latency,
            )
        if placed.kind not in unconstrained:
            capacity = (
                molecule.count(placed.kind) if placed.kind in molecule.space else 0
            )
            if placed.instance < 0 or placed.instance >= capacity:
                yield diag(
                    "SCH002",
                    f"operation {placed.op_id!r} is placed on "
                    f"{placed.kind!r} instance {placed.instance} but the "
                    f"molecule offers {capacity} instance(s)",
                    subject=subject, location=loc, op=placed.op_id,
                    kind=placed.kind, instance=placed.instance,
                    capacity=capacity,
                )
        finish_by_op[placed.op_id] = placed.finish

    for op_id in ops:
        if op_id not in seen_ops:
            yield diag(
                "SCH005",
                f"dataflow operation {op_id!r} was never scheduled",
                subject=subject, location=f"op {op_id}", op=op_id,
            )

    for placed in schedule.placements:
        op = ops.get(placed.op_id)
        if op is None:
            continue
        for dep in op.deps:
            dep_finish = finish_by_op.get(dep)
            if dep_finish is not None and placed.start < dep_finish:
                yield diag(
                    "SCH003",
                    f"operation {placed.op_id!r} starts at {placed.start} "
                    f"before its dependency {dep!r} finishes at {dep_finish}",
                    subject=subject, location=f"op {placed.op_id}",
                    op=placed.op_id, dep=dep, start=placed.start,
                    dep_finish=dep_finish,
                )

    lanes: dict[tuple[str, int], list[ScheduledOp]] = {}
    for placed in schedule.placements:
        lanes.setdefault((placed.kind, placed.instance), []).append(placed)
    for (kind, instance), placed_ops in sorted(lanes.items()):
        placed_ops.sort(key=lambda p: (p.start, p.finish))
        for earlier, later in zip(placed_ops, placed_ops[1:]):
            if later.start < earlier.finish:
                yield diag(
                    "SCH001",
                    f"operations {earlier.op_id!r} and {later.op_id!r} "
                    f"overlap on {kind!r} instance {instance} "
                    f"([{earlier.start},{earlier.finish}) vs "
                    f"[{later.start},{later.finish}))",
                    subject=subject, location=f"{kind}[{instance}]",
                    kind=kind, instance=instance,
                    ops=[earlier.op_id, later.op_id],
                )

    last_finish = max((p.finish for p in schedule.placements), default=0)
    required = last_finish + artifact.issue_overhead
    if schedule.makespan < required:
        yield diag(
            "SCH004",
            f"makespan {schedule.makespan} is below the latest operation "
            f"finish {last_finish} plus issue overhead "
            f"{artifact.issue_overhead}",
            subject=subject, location="makespan",
            makespan=schedule.makespan, last_finish=last_finish,
            issue_overhead=artifact.issue_overhead,
        )


@checker("rotation-log", "schedule", RotationLog)
def check_rotations(log: RotationLog, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = log.subject or ctx.subject or f"rotations:{len(log.jobs)}-jobs"

    for i, job in enumerate(log.jobs):
        loc = f"job {i} ({job.atom}->AC{job.container_id})"
        if log.catalogue is not None and job.atom in log.catalogue:
            if not log.catalogue.get(job.atom).reconfigurable:
                yield diag(
                    "ROT004",
                    f"job {i} rotates static atom kind {job.atom!r}; static "
                    "atoms live in the fabric and never rotate",
                    subject=subject, location=loc, job=i, atom=job.atom,
                )
                continue
        if job.started_at < job.requested_at:
            yield diag(
                "ROT003",
                f"job {i} starts at {job.started_at}, before its request at "
                f"{job.requested_at}",
                subject=subject, location=loc, job=i,
                started_at=job.started_at, requested_at=job.requested_at,
            )
        if job.finish_at <= job.started_at:
            yield diag(
                "ROT003",
                f"job {i} finishes at {job.finish_at}, not after its start "
                f"at {job.started_at}",
                subject=subject, location=loc, job=i,
                started_at=job.started_at, finish_at=job.finish_at,
            )
        elif log.rotation_cycles and job.atom in log.rotation_cycles:
            expected = log.rotation_cycles[job.atom]
            if job.duration != expected:
                yield diag(
                    "ROT003",
                    f"job {i} rotates {job.atom!r} in {job.duration} cycles "
                    f"but the bitstream needs {expected}",
                    subject=subject, location=loc, job=i,
                    duration=job.duration, expected=expected,
                )

    # ROT001: the single port serialises rotations strictly.
    by_start = sorted(
        ((j.started_at, j.finish_at, i) for i, j in enumerate(log.jobs)),
    )
    for (s1, f1, i1), (s2, f2, i2) in zip(by_start, by_start[1:]):
        if s2 < f1:
            yield diag(
                "ROT001",
                f"jobs {i1} and {i2} overlap on the single reconfiguration "
                f"port ([{s1},{f1}) vs [{s2},{f2}))",
                subject=subject, location=f"jobs {i1},{i2}",
                jobs=[i1, i2],
            )

    # ROT002: a container's reservation spans request..finish; two jobs on
    # one container must not overlap in that span.
    by_container: dict[int, list[tuple[int, int, int]]] = {}
    for i, job in enumerate(log.jobs):
        by_container.setdefault(job.container_id, []).append(
            (job.requested_at, job.finish_at, i)
        )
    for container_id, spans in sorted(by_container.items()):
        spans.sort()
        for (r1, f1, i1), (r2, f2, i2) in zip(spans, spans[1:]):
            if r2 < f1:
                yield diag(
                    "ROT002",
                    f"jobs {i1} and {i2} both reserve container "
                    f"{container_id} with overlapping spans "
                    f"([{r1},{f1}) vs [{r2},{f2}))",
                    subject=subject, location=f"AC{container_id}",
                    container=container_id, jobs=[i1, i2],
                )
