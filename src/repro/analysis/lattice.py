"""Lattice-law checks over a library's molecules (rules LAT001..LAT004).

The §3.1 Molecule model is a complete lattice on ``N^n``; every algorithm
downstream (Rep-based trimming, residual-driven rotation planning,
supremum-based selection) silently assumes its laws.  ``Molecule`` itself
enforces them by construction — but libraries are assembled from mutable
``SpecialInstruction`` objects and user subclasses (custom ``rep()``
overrides, duck-typed molecules from generators), so a constructed
library can still violate them.  These checks re-verify the laws over the
concrete molecules of a library, pairwise and per SI:

* LAT001 — absorption: ``m | (m & o) == m`` and ``m & (m | o) == m``;
* LAT002 — residual bounds: ``(o - m) <= o`` and ``m + (o - m) >= o``;
* LAT003 — ``inf(S) <= Rep(S) <= sup(S)`` component-wise (§3.2);
* LAT004 — every hardware molecule lives in its SI's atom space.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.library import SILibrary
from ..core.molecule import infimum, supremum
from .diagnostics import Diagnostic
from .registry import LintContext, checker, diag


def _subject(library: SILibrary, ctx: LintContext) -> str:
    return ctx.subject or f"library:{len(library)}-SIs"


@checker("lattice-laws", "lattice", SILibrary)
def check_lattice_laws(library: SILibrary, ctx: LintContext) -> Iterator[Diagnostic]:
    """LAT001/LAT002 over all molecule pairs, LAT003/LAT004 per SI."""
    subject = _subject(library, ctx)

    labelled = []
    for si in library:
        for i, impl in enumerate(si.implementations):
            labelled.append((f"SI {si.name} / molecule {i}", impl.molecule))
            if impl.molecule.space != si.space:
                yield diag(
                    "LAT004",
                    f"molecule {i} of SI {si.name!r} lives in a foreign atom "
                    f"space {impl.molecule.space!r} (SI space {si.space!r})",
                    subject=subject,
                    location=f"SI {si.name} / molecule {i}",
                    si=si.name,
                    molecule=i,
                )

    comparable = [(loc, m) for loc, m in labelled if m.space == library.space]
    for a_loc, a in comparable:
        for b_loc, b in comparable:
            union, inter = a.union(b), a.intersection(b)
            if a.union(inter) != a or a.intersection(union) != a:
                yield diag(
                    "LAT001",
                    f"absorption law fails for {a_loc} vs {b_loc}: "
                    f"a|(a&b)={a.union(inter)!r}, a&(a|b)={a.intersection(union)!r}, a={a!r}",
                    subject=subject,
                    location=a_loc,
                    pair=[a_loc, b_loc],
                )
            residual = a.residual(b)
            if not (residual <= a) or not (b.plus(residual) >= a):
                yield diag(
                    "LAT002",
                    f"residual law fails for {a_loc} given {b_loc}: "
                    f"a-b={residual!r} must satisfy (a-b)<=a and b+(a-b)>=a",
                    subject=subject,
                    location=a_loc,
                    pair=[a_loc, b_loc],
                )

    for si in library:
        molecules = [m for m in si.molecules() if m.space == si.space]
        if not molecules:
            continue  # LIB007/LAT004 report the underlying defect
        rep = si.rep()
        if rep.space != si.space:
            yield diag(
                "LAT003",
                f"Rep(S) of SI {si.name!r} lives in a foreign atom space",
                subject=subject,
                location=f"SI {si.name}",
                si=si.name,
            )
            continue
        lower, upper = infimum(molecules), supremum(molecules, space=si.space)
        if not (lower <= rep) or not (rep <= upper):
            yield diag(
                "LAT003",
                f"Rep(S) of SI {si.name!r} is {rep!r}, outside its bounds "
                f"inf={lower!r} .. sup={upper!r}",
                subject=subject,
                location=f"SI {si.name}",
                si=si.name,
                rep=rep.as_dict(),
                inf=lower.as_dict(),
                sup=upper.as_dict(),
            )
