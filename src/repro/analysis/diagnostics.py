"""Diagnostic primitives of the RISPP invariant checker ("rispp-lint").

A :class:`Diagnostic` is one finding of a static check: a stable rule ID
(``LAT002``, ``CFG004``, ...), a severity, a human-readable message, and
enough location/context information to find the offending artifact
without re-running the check.  :class:`DiagnosticReport` is an ordered
collection with the aggregation helpers the CLI, the integration layer
and the tests consume (text / JSON rendering, exit codes, fail-fast).

Severity semantics follow the usual compiler convention:

* ``ERROR``   — a paper invariant is violated; simulations built on the
  artifact would compute garbage.  Drivers fail fast on these.
* ``WARNING`` — the artifact is usable but suspicious (dead molecules,
  unreachable blocks, non-amortisable rotations).
* ``INFO``    — neutral observations, never affects exit codes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, value: "str | int | Severity") -> "Severity":
        if isinstance(value, Severity):
            return value
        if isinstance(value, int):
            return cls(value)
        return cls[value.upper()]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Parameters
    ----------
    rule_id:
        Stable identifier from the rule catalogue (``docs/analysis.md``).
    severity:
        How bad the finding is (see module docstring).
    message:
        Human-readable description, self-contained.
    subject:
        The artifact the check ran on (e.g. ``"library:h264"``).
    location:
        Where inside the subject (e.g. ``"SI SATD_4x4 / molecule 2"``).
    context:
        Structured details for programmatic consumers (JSON-safe values).
    """

    rule_id: str
    severity: Severity
    message: str
    subject: str = ""
    location: str = ""
    context: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe dictionary representation."""
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Diagnostic":
        return cls(
            rule_id=str(data["rule_id"]),
            severity=Severity.parse(data["severity"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            subject=str(data.get("subject", "")),
            location=str(data.get("location", "")),
            context=dict(data.get("context", {})),  # type: ignore[arg-type]
        )

    def render(self) -> str:
        """One-line text rendering: ``severity RULE [subject] location: msg``."""
        where = " ".join(p for p in (self.subject, self.location) if p)
        prefix = f"{self.severity}: {self.rule_id}"
        return f"{prefix} [{where}] {self.message}" if where else f"{prefix} {self.message}"

    def __str__(self) -> str:
        return self.render()


class LintError(ValueError):
    """Raised by fail-fast drivers when a report contains ERROR diagnostics.

    Subclasses ``ValueError`` so callers that already guard artifact
    validation with ``except ValueError`` keep working.
    """

    def __init__(self, report: "DiagnosticReport"):
        self.report = report
        errors = report.errors()
        lines = [d.render() for d in errors]
        super().__init__(
            f"{len(errors)} invariant violation(s):\n" + "\n".join(lines)
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with aggregation helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    # -- collection protocol -------------------------------------------------

    def append(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> "DiagnosticReport":
        """Append another report's findings (returns ``self`` for chaining)."""
        self.diagnostics.extend(other.diagnostics)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        # A report is truthy when it exists, regardless of findings;
        # use ``ok()`` / ``len()`` for content queries.
        return True

    # -- aggregation ---------------------------------------------------------

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic is present."""
        return not self.errors()

    def clean(self) -> bool:
        """True when the report is entirely empty."""
        return not self.diagnostics

    def rule_ids(self) -> list[str]:
        """Rule IDs present, deduplicated, in first-seen order."""
        seen: dict[str, None] = {}
        for d in self.diagnostics:
            seen.setdefault(d.rule_id, None)
        return list(seen)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def filtered(
        self,
        *,
        select: "Iterable[str] | None" = None,
        ignore: "Iterable[str] | None" = None,
    ) -> "DiagnosticReport":
        """A new report narrowed to the given concrete rule IDs.

        ``select`` keeps only the named rules; ``ignore`` then drops its
        rules (ignore wins on overlap).  ``None`` means "no constraint".
        Callers expand user-facing prefixes into concrete IDs first (see
        :func:`repro.analysis.registry.expand_selectors`).
        """
        selected = set(select) if select is not None else None
        ignored = set(ignore) if ignore is not None else set()
        kept = [
            d
            for d in self.diagnostics
            if (selected is None or d.rule_id in selected)
            and d.rule_id not in ignored
        ]
        return DiagnosticReport(kept)

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exit_code(self) -> int:
        """Process exit status: 1 when any ERROR is present, else 0."""
        return 1 if self.errors() else 0

    def raise_on_error(self) -> None:
        """Fail fast: raise :class:`LintError` when ERRORs are present."""
        if not self.ok():
            raise LintError(self)

    # -- rendering -----------------------------------------------------------

    def render_text(self, *, tool: str = "rispp-lint") -> str:
        """Multi-line human-readable rendering with a summary tail line."""
        lines = [d.render() for d in self.diagnostics]
        n_err, n_warn = len(self.errors()), len(self.warnings())
        if not self.diagnostics:
            lines.append(f"{tool}: all checks passed")
        else:
            lines.append(
                f"{tool}: {len(self.diagnostics)} finding(s) "
                f"({n_err} error(s), {n_warn} warning(s))"
            )
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON rendering; round-trips through :meth:`from_json`."""
        payload = {
            "findings": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "total": len(self.diagnostics),
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "rule_ids": self.rule_ids(),
                "exit_code": self.exit_code(),
            },
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DiagnosticReport":
        data = json.loads(text)
        return cls([Diagnostic.from_dict(d) for d in data["findings"]])
