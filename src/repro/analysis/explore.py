"""rispp-explore: bounded exhaustive model checking of the rotation runtime.

rispp-verify replays *one* recorded trace; rispp-explore instead drives
the real runtime — :class:`~repro.runtime.manager.RisppRuntime`, its
:class:`~repro.hardware.reconfig.ReconfigurationPort` and an attached
:class:`~repro.faults.injector.FaultInjector` — through **every** enabled
action interleaving of a small-scope configuration (2–4 Atom Containers,
3–6 atom kinds, 2–3 SIs, bounded action budgets), with memoized state
hashing on a frontier/visited BFS core.  Every reachable state is judged
against the MC rule family declared in :mod:`.rules`:

* MC001/MC002/MC003 — port serialization, reservation/queue coherence and
  container lifecycle coherence (ROT001/ROT002 over all states);
* MC004 — quarantine safety (TRC015 over all states, plus the repair
  flag actually reaching the trace);
* MC005/MC006 — deadlock/livelock freedom and replan convergence, probed
  by forking the state and draining / re-replanning it;
* MC007/MC008 — rotation latency ≤ the FEA004-style static bound and
  repair latency ≤ the ``static_repair_bound`` formula (FEA005
  cross-validation), both rate-aware via
  :func:`~repro.analysis.feasibility.rotation_cycle_table`;
* MC009 — terminal-state traces replay cleanly through the rispp-verify
  reference machine;
* MC010 — SI dispatch matches the best available molecule (TRC013).

A violated rule yields a **minimized counterexample**: the action path is
greedily shrunk (ddmin-style single drops), replayed on a fresh world
and serialised as a golden-trace JSON v1 payload that ``rispp-verify``
independently replays — the checker and the verifier cross-validate each
other, and the expected TRC rule of the verifier run is recorded on the
counterexample.

Exploration is deterministic: action order is fixed, worlds carry no
wall-clock or randomness, and the state key includes the remaining
action budgets so merging two states never loses a distinct suffix.
"""

from __future__ import annotations

import copy
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.atom import AtomCatalogue, AtomKind
from ..core.library import SILibrary
from ..core.si import MoleculeImpl, SpecialInstruction
from ..faults.injector import FaultInjector
from ..faults.model import FaultEvent, FaultKind, FaultSchedule
from ..runtime.manager import RisppRuntime
from ..sim.trace import EventKind
from .diagnostics import Diagnostic, DiagnosticReport
from .feasibility import rotation_cycle_table
from .rules import diag, expand_selectors, rules_of_family
from .verify import golden_from_dict, golden_from_runtime, verify_golden, verify_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hardware.reconfig import RotationJob
    from ..obs import MetricRegistry

#: An action of the explored transition system, as a plain tuple:
#: ``("forecast", si)`` / ``("forecast_end", si)`` / ``("exec", si)`` /
#: ``("tick",)`` / ``("fault", kind_value, container)``.
Action = tuple[str | int, ...]

#: Memoization key for a machine state (nested value tuples, hash-stable).
StateKey = tuple[object, ...]

Mutator = Callable[[RisppRuntime], None]

_FAR = 10**9


# ---------------------------------------------------------------------------
# Scopes: the bounded configurations the checker can exhaust
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreScope:
    """One bounded configuration: platform shape plus action budgets.

    The budgets bound the *path language*, not the state count directly:
    each path may fire every forecast/exec/fault at most its budget many
    times, and ``tick`` (advance to the next scheduled hardware or fault
    event) at most ``tick_budget`` times — so the reachable state space
    is finite and the BFS terminates without a horizon heuristic.
    """

    name: str
    library_name: str
    containers: int
    core_mhz: float = 1.0
    bytes_per_us: float = 10.0
    scrub_period: int = 8
    max_retries: int = 1
    backoff_cycles: int = 2
    #: Per-SI budgets (every SI, unless overridden in ``si_budgets``).
    forecast_budget: int = 1
    forecast_end_budget: int = 1
    exec_budget: int = 1
    #: Per-SI overrides: (si, forecast, forecast_end, exec).  Asymmetric
    #: budgets keep richer scopes tractable — one SI exercises the full
    #: forecast/end/exec alphabet while the others only add demand.
    si_budgets: tuple[tuple[str, int, int, int], ...] = ()
    #: Global budgets.
    tick_budget: int = 6
    fault_budget: int = 1
    #: The fault actions available (kind value, container id).
    fault_actions: tuple[tuple[str, int], ...] = ()
    #: Forecast expectations per SI (selection weights); SIs not listed
    #: default to 2.0.
    expected: tuple[tuple[str, float], ...] = ()
    #: Safety valve only — the budgets already make the space finite.
    max_states: int = 200_000

    def expected_of(self, si_name: str) -> float:
        for name, value in self.expected:
            if name == si_name:
                return value
        return 2.0

    def budgets_of(self, si_name: str) -> tuple[int, int, int]:
        """(forecast, forecast_end, exec) budget for one SI."""
        for name, forecast, end, execute in self.si_budgets:
            if name == si_name:
                return (forecast, end, execute)
        return (self.forecast_budget, self.forecast_end_budget, self.exec_budget)


def _tiny_library() -> SILibrary:
    catalogue = AtomCatalogue.of(
        [
            AtomKind("XA", bitstream_bytes=30, slices=8, latency_cycles=1),
            AtomKind("XB", bitstream_bytes=40, slices=8, latency_cycles=1),
            AtomKind("XC", bitstream_bytes=50, slices=8, latency_cycles=1),
        ]
    )
    space = catalogue.space
    sis = [
        SpecialInstruction(
            "SI_A", space, 9,
            [MoleculeImpl(space.molecule({"XA": 1}), 3, "A1")],
        ),
        SpecialInstruction(
            "SI_B", space, 12,
            [
                MoleculeImpl(space.molecule({"XB": 1}), 5, "B1"),
                MoleculeImpl(space.molecule({"XB": 1, "XC": 1}), 2, "B2"),
            ],
        ),
    ]
    return SILibrary(catalogue, sis)


def _small_library() -> SILibrary:
    catalogue = AtomCatalogue.of(
        [
            AtomKind("XA", bitstream_bytes=30, slices=8, latency_cycles=1),
            AtomKind("XB", bitstream_bytes=40, slices=8, latency_cycles=1),
            AtomKind("XC", bitstream_bytes=50, slices=8, latency_cycles=1),
            AtomKind("XD", bitstream_bytes=60, slices=8, latency_cycles=1),
        ]
    )
    space = catalogue.space
    sis = [
        SpecialInstruction(
            "SI_A", space, 9,
            [
                MoleculeImpl(space.molecule({"XA": 1}), 4, "A1"),
                MoleculeImpl(space.molecule({"XA": 1, "XD": 1}), 2, "A2"),
            ],
        ),
        SpecialInstruction(
            "SI_B", space, 12,
            [
                MoleculeImpl(space.molecule({"XB": 1}), 5, "B1"),
                MoleculeImpl(space.molecule({"XB": 1, "XC": 1}), 2, "B2"),
            ],
        ),
        SpecialInstruction(
            "SI_C", space, 10,
            [MoleculeImpl(space.molecule({"XC": 1}), 4, "C1")],
        ),
    ]
    return SILibrary(catalogue, sis)


def build_explore_library(name: str) -> SILibrary:
    """The mini-library behind one explore scope (also a golden library)."""
    if name == "explore-tiny":
        return _tiny_library()
    if name == "explore-small":
        return _small_library()
    raise ValueError(
        f"unknown explore library {name!r}; "
        "choose from ['explore-small', 'explore-tiny']"
    )


SCOPES: dict[str, ExploreScope] = {
    "tiny": ExploreScope(
        name="tiny",
        library_name="explore-tiny",
        containers=2,
        forecast_budget=1,
        forecast_end_budget=1,
        exec_budget=1,
        tick_budget=5,
        fault_budget=1,
        fault_actions=(
            (FaultKind.TRANSIENT.value, 0),
            (FaultKind.WRITE_ERROR.value, 0),
        ),
        expected=(("SI_A", 4.0), ("SI_B", 3.0)),
    ),
    # The richness of "small" is the platform shape (3 containers, 4
    # atoms, 3 SIs with competing molecules), not the event budgets:
    # asymmetric per-SI budgets keep the interleaving space tractable
    # while SI_A still exercises the full forecast/end/exec alphabet.
    "small": ExploreScope(
        name="small",
        library_name="explore-small",
        containers=3,
        si_budgets=(
            ("SI_A", 1, 1, 1),
            ("SI_B", 1, 0, 1),
            ("SI_C", 1, 0, 0),
        ),
        tick_budget=3,
        fault_budget=1,
        fault_actions=(
            (FaultKind.TRANSIENT.value, 0),
            (FaultKind.WRITE_ERROR.value, 0),
            (FaultKind.PERMANENT.value, 2),
        ),
        expected=(("SI_A", 4.0), ("SI_B", 3.0), ("SI_C", 2.0)),
    ),
}

#: Package-level alias (``repro.analysis.EXPLORE_SCOPES``) — the bare
#: name ``SCOPES`` is too generic outside this module.
EXPLORE_SCOPES = SCOPES


# ---------------------------------------------------------------------------
# Worlds: building, copying, replaying
# ---------------------------------------------------------------------------


@dataclass
class _World:
    """One explored state: the live runtime and its current cycle."""

    runtime: RisppRuntime
    now: int = 0


def _build_world(scope: ExploreScope, mutator: Mutator | None) -> _World:
    injector = FaultInjector(
        FaultSchedule([]),
        scrub_period=scope.scrub_period,
        max_retries=scope.max_retries,
        backoff_cycles=scope.backoff_cycles,
    )
    runtime = RisppRuntime(
        build_explore_library(scope.library_name),
        scope.containers,
        core_mhz=scope.core_mhz,
        bytes_per_us=scope.bytes_per_us,
        optimize=False,
        faults=injector,
    )
    if mutator is not None:
        mutator(runtime)
    return _World(runtime=runtime, now=0)


def _shallow(obj: object, **overrides: object) -> Any:
    """Same-class instance with a shallow-copied ``__dict__`` + overrides."""
    clone = object.__new__(type(obj))
    clone.__dict__.update(vars(obj))
    clone.__dict__.update(overrides)
    return clone


def _copy_world(world: _World) -> _World:
    """Structural clone of a world — the successor generator's hot path.

    A generic ``copy.deepcopy`` spends milliseconds dispatching over the
    object graph; this clone knows exactly which parts are mutable
    machine state and copies only those.  Shared untouched: the library
    and catalogue, policy/selection/telemetry handles, recorded trace
    events (append-only), retired port jobs (nothing mutates a job once
    it left the pending queue) and immutable value objects (molecules,
    fault events).
    """
    rt = world.runtime
    port = rt.port
    # Pending jobs mutate (start/complete/abort flags), so they are the
    # one place needing identity-preserving copies: the injector's
    # ``_repair_of`` must reference the *same* clone the pending queue
    # holds — repair release compares by identity.
    job_map = {id(j): copy.copy(j) for j in port._pending}
    new_port = _shallow(
        port,
        jobs=[job_map.get(id(j), j) for j in port.jobs],
        _pending=[job_map[id(j)] for j in port._pending],
        _reserved=set(port._reserved),
    )
    new_fabric = _shallow(
        rt.fabric,
        containers=[copy.copy(c) for c in rt.fabric.containers],
    )
    new_monitor = _shallow(
        rt.monitor,
        _stats={k: copy.copy(s) for k, s in rt.monitor._stats.items()},
        _open={k: copy.copy(w) for k, w in rt.monitor._open.items()},
    )
    new_trace = _shallow(rt.trace, events=list(rt.trace.events))
    inj = rt._faults
    new_inj = None
    if inj is not None:
        new_inj = _shallow(
            inj,
            stats=copy.copy(inj.stats),
            _events=list(inj._events),
            _corrupted={k: copy.copy(e) for k, e in inj._corrupted.items()},
            _quarantined={k: copy.copy(e) for k, e in inj._quarantined.items()},
            _retries=[copy.copy(r) for r in inj._retries],
            _attempts=dict(inj._attempts),
            _repair_of={
                k: job_map.get(id(j), j) for k, j in inj._repair_of.items()
            },
        )
    new_rt = _shallow(
        rt,
        fabric=new_fabric,
        port=new_port,
        monitor=new_monitor,
        trace=new_trace,
        stats=copy.copy(rt.stats),
        task_stats={k: copy.copy(s) for k, s in rt.task_stats.items()},
        _active={k: copy.copy(f) for k, f in rt._active.items()},
        _last_mode=dict(rt._last_mode),
        _impl_cache=dict(rt._impl_cache),
        _rc_cache=dict(rt._rc_cache),
        _faults=new_inj,
    )
    if new_inj is not None:
        new_inj._runtime = new_rt
    # The cloned port must publish into the cloned runtime (the bus
    # itself is stateless and safely shared between clones).
    new_port._runtime = new_rt
    return _World(runtime=new_rt, now=world.now)


def _replay(scope: ExploreScope, mutator: Mutator | None, actions: Iterable[Action]) -> _World:
    """A fresh world with ``actions`` applied (assumes they are enabled)."""
    world = _build_world(scope, mutator)
    for action in actions:
        _apply(world, action, scope)
    return world


def _fork(
    scope: ExploreScope,
    mutator: Mutator | None,
    world: _World,
    path: tuple[Action, ...],
) -> _World:
    """A disposable clone for destructive probes (drain, re-replan).

    Without a mutator the world deepcopies; with one it is rebuilt and
    replayed instead — instance-level monkeypatches close over the
    original objects and would not survive a deepcopy.
    """
    if mutator is None:
        return _copy_world(world)
    return _replay(scope, mutator, path)


# ---------------------------------------------------------------------------
# The transition system
# ---------------------------------------------------------------------------


def _next_interesting(world: _World) -> int | None:
    """The next cycle at which scheduled state changes: the earliest
    pending rotation start/completion or fault/scrub/retry event."""
    rt = world.runtime
    best = rt.port.next_event()
    if rt._faults is not None:
        due = rt._faults.next_cycle(_FAR)
        if due is not None and (best is None or due < best):
            best = due
    if best is not None and best <= world.now:  # pragma: no cover - defensive
        return None
    return best


def _enabled_actions(
    world: _World, scope: ExploreScope, counts: dict[Action, int]
) -> list[Action]:
    rt = world.runtime
    actions: list[Action] = []
    for si_name in rt.library.names():
        forecasts, ends, execs = scope.budgets_of(si_name)
        active = ("main", si_name) in rt._active
        if not active and counts.get(("forecast", si_name), 0) < forecasts:
            actions.append(("forecast", si_name))
        if active and counts.get(("forecast_end", si_name), 0) < ends:
            actions.append(("forecast_end", si_name))
        if counts.get(("exec", si_name), 0) < execs:
            actions.append(("exec", si_name))
    if counts.get(("tick",), 0) < scope.tick_budget and _next_interesting(world) is not None:
        actions.append(("tick",))
    faults_used = sum(n for a, n in counts.items() if a[0] == "fault")
    if faults_used < scope.fault_budget:
        for kind_value, container in scope.fault_actions:
            actions.append(("fault", kind_value, container))
    return actions


def _apply(world: _World, action: Action, scope: ExploreScope) -> None:
    """Fire one action; the world ends fully advanced to its new cycle."""
    rt = world.runtime
    kind = action[0]
    if kind == "forecast":
        rt.forecast(action[1], world.now, expected=scope.expected_of(action[1]))
    elif kind == "forecast_end":
        rt.forecast_end(action[1], world.now)
    elif kind == "exec":
        world.now += rt.execute_si(action[1], world.now)
    elif kind == "tick":
        target = _next_interesting(world)
        if target is None:  # pragma: no cover - guarded by _enabled_actions
            return
        world.now = target
    elif kind == "fault":
        assert rt._faults is not None
        rt._faults.schedule_fault(
            FaultEvent(world.now, FaultKind(action[1]), action[2])
        )
    else:  # pragma: no cover - authoring error
        raise ValueError(f"unknown action {action!r}")
    # Normalise: rotations *starting* at the current cycle are processed
    # (``forecast`` replans after its internal advance, so a job issued
    # "now" would otherwise sit unstarted and every observer — the state
    # key, the MC checks, ``next_event`` — would see a half-advanced
    # world).
    rt.advance(world.now)


def _count(counts: dict[Action, int], action: Action) -> dict[Action, int]:
    # Faults share one budget regardless of kind/target.
    key: Action = ("fault", action[1], action[2]) if action[0] == "fault" else action
    bumped = dict(counts)
    bumped[key] = bumped.get(key, 0) + 1
    return bumped


def _state_key(world: _World, counts: dict[Action, int]) -> StateKey:
    """Canonical hashable fingerprint of everything behavior-relevant.

    The remaining budgets (via ``counts``) are part of the key: two
    worlds with identical machine state but different budgets left admit
    different suffixes, and merging them would silently prune paths.
    """
    rt = world.runtime
    port = rt.port
    inj = rt._faults
    containers = tuple(
        (c.state.value, c.atom, c.owner, c.ready_at, c.last_used,
         c.failed, c.corrupted, c.quarantined)
        for c in rt.fabric.containers
    )
    pending = tuple(
        (j.atom, j.container_id, j.requested_at, j.started_at, j.finish_at,
         j.started, j.repair, j.owner)
        for j in port.pending_jobs()
    )
    active = tuple(sorted(
        (key, f.weight, f.priority) for key, f in rt._active.items()
    ))
    modes = tuple(sorted(rt._last_mode.items()))
    monitor = rt.monitor
    tuned = tuple(sorted(
        (key, s.expectation, s.windows, s.total_predicted,
         s.total_observed, s.hit_windows)
        for key, s in monitor._stats.items()
    ))
    windows = tuple(sorted(
        (key, w.opened_at, w.predicted, w.observed)
        for key, w in monitor._open.items()
    ))
    fault_key: StateKey = ()
    if inj is not None:
        fault_key = (
            tuple(sorted(
                (cid, e.atom, e.injected_at) for cid, e in inj._corrupted.items()
            )),
            tuple(sorted(
                (cid, e.atom, e.injected_at, e.detected_at)
                for cid, e in inj._quarantined.items()
            )),
            tuple(sorted(
                (r.due, r.container, r.atom, r.owner or "", r.repair)
                for r in inj._retries
            )),
            tuple(sorted(inj._attempts.items())),
            tuple(sorted(
                (cid, j.atom, j.finish_at) for cid, j in inj._repair_of.items()
            )),
        )
    return (
        world.now,
        containers,
        port.busy_until,
        pending,
        active,
        modes,
        tuned,
        windows,
        fault_key,
        rt._unplaced_for,
        tuple(sorted(counts.items())),
    )


# ---------------------------------------------------------------------------
# The MC rule checks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Bounds:
    """Rate-aware static bounds the MC007/MC008/MC005 checks prove."""

    rotation_cycles: dict[str, int]
    max_rotation: int
    #: FEA004-style request-to-finish bound: own write + a full queue.
    queue_bound: int
    #: ``static_repair_bound`` formula at the scope's port rate.
    repair_bound: int
    #: Cycles a fork may advance before it must have gone quiescent.
    drain_bound: int


def _bounds_of(scope: ExploreScope, library: SILibrary) -> _Bounds:
    table = rotation_cycle_table(
        library, core_mhz=scope.core_mhz, bytes_per_us=scope.bytes_per_us
    )
    max_rotation = max(table.values(), default=1)
    queue_bound = scope.containers * max_rotation
    backoff_total = sum(
        scope.backoff_cycles * 2**i for i in range(scope.max_retries)
    )
    repair_bound = (
        scope.scrub_period + (1 + scope.max_retries) * queue_bound + backoff_total
    )
    return _Bounds(
        rotation_cycles=table,
        max_rotation=max_rotation,
        queue_bound=queue_bound,
        repair_bound=repair_bound,
        drain_bound=scope.scrub_period + repair_bound + queue_bound + 4,
    )


def _serialized_jobs(rt: RisppRuntime) -> "list[RotationJob]":
    """Jobs whose write windows are (or will be) real: completed ones and
    the pending queue.  Aborted and dropped-unstarted jobs carry stale
    ``finish_at`` values and never (fully) wrote, so they are excluded."""
    jobs = [j for j in rt.port.jobs if j.completed and not j.aborted]
    jobs.extend(j for j in rt.port.pending_jobs() if not j.completed)
    return jobs


def _check_mc001(world: _World) -> list[str]:
    windows = sorted(
        (j.started_at, j.finish_at, j.container_id, j.atom)
        for j in _serialized_jobs(world.runtime)
    )
    problems = []
    for prev, cur in zip(windows, windows[1:]):
        if cur[0] < prev[1]:
            problems.append(
                f"write of {cur[3]!r} into AC{cur[2]} at [{cur[0]}, {cur[1]}) "
                f"overlaps write of {prev[3]!r} into AC{prev[2]} "
                f"at [{prev[0]}, {prev[1]})"
            )
    return problems


def _check_mc002(world: _World) -> list[str]:
    rt = world.runtime
    reserved = set(rt.port._reserved)
    pending = {j.container_id for j in rt.port.pending_jobs()}
    problems = []
    if reserved != pending:
        problems.append(
            f"reservations {sorted(reserved)} != pending queue targets "
            f"{sorted(pending)} (phantom or leaked reservation)"
        )
    for cid in sorted(reserved):
        if rt.fabric.container(cid).failed:
            problems.append(f"failed AC{cid} still reserved on the port")
    return problems


def _check_mc003(world: _World) -> list[str]:
    rt = world.runtime
    started = {
        j.container_id: j for j in rt.port.pending_jobs() if j.started
    }
    problems = []
    for c in rt.fabric.containers:
        where = f"AC{c.container_id}"
        if c.failed:
            if c.atom is not None or c.quarantined or c.corrupted or c.ready_at is not None:
                problems.append(f"{where} failed but still carries state")
            continue
        if c.state.value == "loaded":
            if c.atom is None or c.ready_at is not None:
                problems.append(f"{where} LOADED without an atom (or still pending)")
        elif c.state.value == "empty":
            if c.atom is not None or c.ready_at is not None:
                problems.append(f"{where} EMPTY but carries an atom or ready_at")
        elif c.state.value == "loading":
            job = started.get(c.container_id)
            if c.atom is None or c.ready_at is None:
                problems.append(f"{where} LOADING without atom/ready_at")
            elif job is None:
                problems.append(f"{where} LOADING with no started port job")
            elif job.finish_at != c.ready_at or job.atom != c.atom:
                problems.append(
                    f"{where} LOADING ({c.atom} ready at {c.ready_at}) does not "
                    f"match its port job ({job.atom} finishing {job.finish_at})"
                )
        if c.corrupted and c.state.value != "loaded":
            problems.append(f"{where} corrupted but not LOADED (silent-fault model)")
    return problems


def _check_mc004(world: _World) -> list[str]:
    rt = world.runtime
    inj = rt._faults
    problems = []
    episodes = dict(inj._quarantined) if inj is not None else {}
    for c in rt.fabric.containers:
        if c.quarantined and c.container_id not in episodes:
            problems.append(
                f"AC{c.container_id} quarantined with no injector episode"
            )
    for cid in sorted(episodes):
        container = rt.fabric.container(cid)
        if container.is_available():
            problems.append(f"quarantined AC{cid} still serves work")
        for job in rt.port.pending_jobs():
            if job.container_id == cid and not job.repair:
                problems.append(
                    f"non-repair rotation of {job.atom!r} targets quarantined AC{cid}"
                )
    # The repair flag must also reach the *trace* — rispp-verify judges the
    # recorded run, so a repair that is only flagged in memory is a bug.
    for job in rt.port.pending_jobs():
        if not job.repair:
            continue
        episode = episodes.get(job.container_id)
        detected = episode.detected_at if episode is not None else None
        if detected is None or job.requested_at < detected:
            continue  # adopted planner job: recorded before the quarantine
        recorded = any(
            e.kind is EventKind.ROTATION_REQUESTED
            and e.cycle >= detected
            and e.detail.get("container") == job.container_id
            and e.detail.get("repair")
            for e in rt.trace.events
        )
        if not recorded:
            problems.append(
                f"repair rotation into AC{job.container_id} has no "
                "repair-flagged ROTATION_REQUESTED trace event"
            )
    return problems


def _quiescent(world: _World) -> bool:
    rt = world.runtime
    if not rt.port.is_idle():
        return False
    inj = rt._faults
    if inj is None:
        return True
    return inj.open_episodes() == 0 and inj.next_cycle(_FAR) is None


def _check_mc005(world: _World, bounds: _Bounds) -> list[str]:
    """Drain a fork of the state: every state must reach quiescence by
    only letting scheduled work finish (no new actions), within the
    static drain bound."""
    deadline = world.now + bounds.drain_bound
    steps = 0
    while not _quiescent(world):
        nxt = _next_interesting(world)
        if nxt is None:
            return [
                "state is not quiescent but schedules no further event (deadlock)"
            ]
        if nxt > deadline or steps > 10_000:
            return [
                f"state does not drain within {bounds.drain_bound} cycles (livelock)"
            ]
        world.now = nxt
        world.runtime.advance(nxt)
        steps += 1
    return []


def _drain_witness(world: _World, bounds: _Bounds) -> None:
    """Advance an MC005 counterexample witness through its scheduled
    events so the recorded trace *shows* the stuck state the drain probe
    detected (e.g. a quarantine left open forever) instead of ending just
    before it — rispp-verify judges the trace, not the probe."""
    deadline = world.now + bounds.drain_bound
    steps = 0
    while not _quiescent(world):
        nxt = _next_interesting(world)
        if nxt is None or nxt > deadline or steps > 10_000:
            return
        world.now = nxt
        world.runtime.advance(nxt)
        steps += 1


def _check_mc006(world: _World) -> list[str]:
    """Replanning on a fork must be convergent: a second identical replan
    round may not issue new rotations."""
    rt = world.runtime
    if not rt._active:
        return []
    rt._request_replan(world.now)
    settled = rt.port.total_rotations()
    rt._request_replan(world.now)
    again = rt.port.total_rotations()
    if again > settled:
        return [
            f"re-replanning with unchanged demand issued {again - settled} "
            "new rotation(s)"
        ]
    return []


def _check_mc007(world: _World, bounds: _Bounds) -> list[str]:
    problems = []
    for j in _serialized_jobs(world.runtime):
        own = bounds.rotation_cycles.get(j.atom, bounds.max_rotation)
        bound = own + bounds.queue_bound
        latency = j.finish_at - j.requested_at
        if latency > bound:
            problems.append(
                f"rotation of {j.atom!r} into AC{j.container_id} takes "
                f"{latency} cycles (requested {j.requested_at}, finishes "
                f"{j.finish_at}) > static bound {bound}"
            )
    return problems


def _check_mc008(world: _World, bounds: _Bounds) -> list[str]:
    inj = world.runtime._faults
    if inj is None:
        return []
    problems = []
    for cid in sorted(inj._quarantined):
        episode = inj._quarantined[cid]
        job = inj._repair_of.get(cid)
        if job is None or job.aborted:
            continue  # between retries; MC005 proves it still drains
        mttr = job.finish_at - episode.injected_at
        if mttr > bounds.repair_bound:
            problems.append(
                f"repair of AC{cid} completes {mttr} cycles after injection "
                f"> static repair bound {bounds.repair_bound}"
            )
    if inj.stats.mttr_cycles_max > bounds.repair_bound:
        problems.append(
            f"observed MTTR {inj.stats.mttr_cycles_max} cycles "
            f"> static repair bound {bounds.repair_bound}"
        )
    return problems


def _check_mc009(world: _World) -> list[str]:
    """Terminal states with no open fault episode must replay cleanly
    through the rispp-verify reference machine (golden traces describe
    finished runs, so states mid-quarantine are out of its contract)."""
    rt = world.runtime
    if rt._faults is not None and rt._faults.open_episodes():
        return []
    report = verify_trace(
        rt.trace.events,
        rt.library,
        containers=len(rt.fabric),
        core_mhz=rt.port.core_mhz,
        bytes_per_us=rt.port.bytes_per_us,
        static_multiplicity=rt.fabric.static_multiplicity,
        totals=asdict(rt.stats),
        subject="explore-terminal",
    )
    errors = report.errors()
    if errors:
        first = errors[0]
        return [
            f"reference machine flags {len(errors)} error(s), first: "
            f"{first.rule_id}: {first.message}"
        ]
    return []


def _check_mc010(world: _World) -> list[str]:
    rt = world.runtime
    available = rt.fabric.available_atoms()
    problems = []
    for si in rt.library:
        expected = si.cycles_with(available)
        actual = rt.si_cycles(si.name, world.now)
        if actual != expected:
            problems.append(
                f"{si.name} dispatches at {actual} cycles; best available "
                f"molecule costs {expected}"
            )
    return problems


def _record_bad_dispatch(world: _World) -> None:
    """Execute the first SI whose dispatch deviates from best-available,
    so an MC010 counterexample's trace *records* the wrong-mode execution
    (TRC013 material) instead of only holding it latently in the
    dispatch function."""
    rt = world.runtime
    available = rt.fabric.available_atoms()
    for si in rt.library:
        if rt.si_cycles(si.name, world.now) != si.cycles_with(available):
            rt.execute_si(si.name, world.now)
            return


def _check_state(
    world: _World,
    path: tuple[Action, ...],
    scope: ExploreScope,
    mutator: Mutator | None,
    bounds: _Bounds,
    checked: set[str],
    *,
    terminal: bool,
    machine_key: StateKey | None = None,
    probe_memo: dict[StateKey, list[str]] | None = None,
) -> list[tuple[str, str]]:
    """All selected MC findings for one state, as (rule_id, message).

    The fork probes (MC005 drain, MC006 re-replan) depend only on the
    machine state, not on the remaining action budgets, so their results
    are memoized under ``machine_key`` across the whole run.
    """
    findings: list[tuple[str, str]] = []

    def run(rule_id: str, problems: list[str]) -> None:
        findings.extend((rule_id, message) for message in problems)

    def probe(rule_id: str, fn: Callable[[_World], list[str]]) -> list[str]:
        if probe_memo is None or machine_key is None:
            return fn(_fork(scope, mutator, world, path))
        memo_key = (rule_id, machine_key)
        cached = probe_memo.get(memo_key)
        if cached is None:
            cached = fn(_fork(scope, mutator, world, path))
            probe_memo[memo_key] = cached
        return cached

    if "MC001" in checked:
        run("MC001", _check_mc001(world))
    if "MC002" in checked:
        run("MC002", _check_mc002(world))
    if "MC003" in checked:
        run("MC003", _check_mc003(world))
    if "MC004" in checked:
        run("MC004", _check_mc004(world))
    if "MC005" in checked and not _quiescent(world):
        run("MC005", probe("MC005", lambda w: _check_mc005(w, bounds)))
    if "MC006" in checked and world.runtime._active:
        run("MC006", probe("MC006", _check_mc006))
    if "MC007" in checked:
        run("MC007", _check_mc007(world, bounds))
    if "MC008" in checked:
        run("MC008", _check_mc008(world, bounds))
    if "MC009" in checked and terminal:
        run("MC009", _check_mc009(world))
    if "MC010" in checked:
        run("MC010", _check_mc010(world))
    return findings


# ---------------------------------------------------------------------------
# Counterexamples: minimization and golden emission
# ---------------------------------------------------------------------------


def _violating_prefix(
    scope: ExploreScope,
    mutator: Mutator | None,
    actions: tuple[Action, ...],
    rule_id: str,
    bounds: _Bounds,
) -> tuple[Action, ...] | None:
    """Replay ``actions`` on a fresh world; return the shortest prefix at
    which ``rule_id`` is violated, or ``None`` (also when an action of
    the candidate path is no longer enabled)."""
    world = _build_world(scope, mutator)
    counts: dict[Action, int] = {}
    done: list[Action] = []

    def violated() -> bool:
        enabled = _enabled_actions(world, scope, counts)
        return bool(
            _check_state(
                world, tuple(done), scope, mutator, bounds, {rule_id},
                terminal=not enabled,
            )
        )

    if violated():
        return ()
    for action in actions:
        if action not in _enabled_actions(world, scope, counts):
            return None
        _apply(world, action, scope)
        counts = _count(counts, action)
        done.append(action)
        if violated():
            return tuple(done)
    return None


def _minimize_path(
    scope: ExploreScope,
    mutator: Mutator | None,
    actions: tuple[Action, ...],
    rule_id: str,
    bounds: _Bounds,
) -> tuple[Action, ...]:
    """Greedy ddmin-lite: drop one action at a time while the rule still
    fires, truncating to the earliest violating prefix each round."""
    current = _violating_prefix(scope, mutator, actions, rule_id, bounds)
    if current is None:  # pragma: no cover - the BFS just saw it fire
        return actions
    improved = True
    while improved:
        improved = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            shorter = _violating_prefix(scope, mutator, candidate, rule_id, bounds)
            if shorter is not None:
                current = shorter
                improved = True
                break
    return current


@dataclass
class Counterexample:
    """One minimized invariant violation, replayable by rispp-verify."""

    rule_id: str
    message: str
    actions: tuple[Action, ...]
    #: Golden-trace JSON v1 payload of the minimized run (plus an
    #: ``explore`` metadata key the verifier tolerates).
    golden: dict[str, Any]
    #: Rules rispp-verify flags when independently replaying the golden.
    verified_rule_ids: tuple[str, ...] = ()


@dataclass
class ExploreResult:
    """The outcome of exhausting one scope."""

    scope: str
    states_explored: int
    transitions: int
    deduplicated: int
    terminal_states: int
    #: False when the ``max_states`` safety valve stopped the search (the
    #: proof claim then does not hold and ``rules_proven`` stays empty).
    complete: bool
    rules_checked: tuple[str, ...]
    rules_proven: tuple[str, ...]
    report: DiagnosticReport = field(default_factory=DiagnosticReport)
    counterexamples: list[Counterexample] = field(default_factory=list)

    def dedupe_ratio(self) -> float:
        if not self.transitions:
            return 0.0
        return self.deduplicated / self.transitions

    def exit_code(self) -> int:
        return self.report.exit_code()

    def to_dict(self) -> dict[str, Any]:
        return {
            "scope": self.scope,
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "deduplicated": self.deduplicated,
            "dedupe_ratio": round(self.dedupe_ratio(), 4),
            "terminal_states": self.terminal_states,
            "complete": self.complete,
            "rules_checked": list(self.rules_checked),
            "rules_proven": list(self.rules_proven),
            "violations": [d.to_dict() for d in self.report],
            "counterexamples": [
                {
                    "rule": cx.rule_id,
                    "message": cx.message,
                    "actions": [list(a) for a in cx.actions],
                    "verified_rule_ids": list(cx.verified_rule_ids),
                }
                for cx in self.counterexamples
            ],
        }


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


def explore(
    scope: str | ExploreScope = "tiny",
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    metrics: "MetricRegistry | None" = None,
    mutator: Mutator | None = None,
    max_states: int | None = None,
    minimize: bool = True,
    cross_verify: bool = True,
    stop_on_violation: bool | None = None,
) -> ExploreResult:
    """Exhaustively model-check one scope; returns states, proofs, findings.

    ``select``/``ignore`` take rule-ID prefixes (``MC``, ``mc005`` ...)
    and must leave at least one MC rule to check.  ``mutator`` patches
    each freshly built runtime before exploration — the test fixtures
    break invariants this way and assert the minimized counterexample;
    with a mutator the search stops at the first violation by default.
    ``cross_verify`` replays every counterexample's golden trace through
    rispp-verify and records the rules it flags.
    """
    sc = SCOPES[scope] if isinstance(scope, str) else scope
    mc_rules = {r.rule_id for r in rules_of_family("explore")}
    checked = set(mc_rules)
    if select is not None:
        checked &= expand_selectors(select)
    if ignore is not None:
        checked -= expand_selectors(ignore)
    if not checked:
        raise ValueError("rule selection leaves no MC rule to check")
    if stop_on_violation is None:
        stop_on_violation = mutator is not None
    cap = max_states if max_states is not None else sc.max_states

    from ..obs import DISABLED

    obs = metrics if metrics is not None else DISABLED
    states_counter = obs.counter("explore_states_total")
    m_visited = states_counter.labels(outcome="visited")
    m_dedup = states_counter.labels(outcome="deduplicated")
    m_violations = obs.counter("explore_violations_total")

    bounds = _bounds_of(sc, build_explore_library(sc.library_name))
    root = _build_world(sc, mutator)
    root_counts: dict[Action, int] = {}
    root_key = _state_key(root, root_counts)
    visited = {root_key}
    frontier: deque[
        tuple[_World, tuple[Action, ...], dict[Action, int], StateKey]
    ] = deque([(root, (), root_counts, root_key)])
    m_visited.inc()

    transitions = 0
    deduplicated = 0
    terminal_states = 0
    complete = True
    #: First finding per rule: (message, path to the violating state).
    violations: dict[str, tuple[str, tuple[Action, ...]]] = {}
    probe_memo: dict[StateKey, list[str]] = {}

    while frontier:
        world, path, counts, key = frontier.popleft()
        actions = _enabled_actions(world, sc, counts)
        findings = _check_state(
            world, path, sc, mutator, bounds, checked,
            terminal=not actions,
            machine_key=key[:-1],  # drop the budget component
            probe_memo=probe_memo,
        )
        fresh = False
        for rule_id, message in findings:
            if rule_id not in violations:
                violations[rule_id] = (message, path)
                m_violations.inc()
                fresh = True
        if fresh and stop_on_violation:
            break
        if not actions:
            terminal_states += 1
            continue
        for index, action in enumerate(actions):
            transitions += 1
            if mutator is not None:
                child = _replay(sc, mutator, path)
            elif index == len(actions) - 1:
                child = world  # the popped world is free to mutate now
            else:
                child = _copy_world(world)
            _apply(child, action, sc)
            child_counts = _count(counts, action)
            child_key = _state_key(child, child_counts)
            if child_key in visited:
                deduplicated += 1
                m_dedup.inc()
                continue
            if len(visited) >= cap:
                complete = False
                continue
            visited.add(child_key)
            m_visited.inc()
            frontier.append((child, path + (action,), child_counts, child_key))

    report = DiagnosticReport()
    counterexamples: list[Counterexample] = []
    for rule_id in sorted(violations):
        message, path = violations[rule_id]
        actions = (
            _minimize_path(sc, mutator, path, rule_id, bounds)
            if minimize
            else path
        )
        witness = _replay(sc, mutator, actions)
        if rule_id == "MC005":
            _drain_witness(witness, bounds)
        elif rule_id == "MC010":
            _record_bad_dispatch(witness)
        golden = golden_from_runtime(
            witness.runtime,
            suite=f"explore-{sc.name}",
            library_name=sc.library_name,
        )
        golden["explore"] = {
            "scope": sc.name,
            "rule": rule_id,
            "actions": [list(a) for a in actions],
        }
        verified: tuple[str, ...] = ()
        if cross_verify:
            verified = tuple(verify_golden(golden_from_dict(golden)).rule_ids())
        counterexamples.append(
            Counterexample(
                rule_id=rule_id,
                message=message,
                actions=actions,
                golden=golden,
                verified_rule_ids=verified,
            )
        )
        report.append(
            diag(
                rule_id,
                message,
                subject=f"explore-{sc.name}",
                location=f"after {len(actions)} action(s)",
                actions=[list(a) for a in actions],
                verified_rule_ids=list(verified),
            )
        )

    proven = (
        tuple(sorted(checked - set(violations))) if complete else ()
    )
    return ExploreResult(
        scope=sc.name,
        states_explored=len(visited),
        transitions=transitions,
        deduplicated=deduplicated,
        terminal_states=terminal_states,
        complete=complete,
        rules_checked=tuple(sorted(checked)),
        rules_proven=proven,
        report=report,
        counterexamples=counterexamples,
    )
