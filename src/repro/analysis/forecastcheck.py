"""Forecast placement checks (rules FC001..FC007).

A :class:`ForecastArtifact` bundles placed Forecast points (or a complete
:class:`~repro.forecast.annotate.ForecastAnnotation`) with the CFG they
were placed on, optionally the SI library and the FDFs that produced
them.  The checks verify the §4.2 placement contract:

* FC001 — every point targets an existing block;
* FC002 — every forecasted SI exists in the library (when given);
* FC003 — from the forecast block, at least one block using the SI is
  reachable (otherwise the forecast can never pay off: the run-time
  would rotate atoms for an execution that cannot follow);
* FC004 — the carried initial values are in range: probability in
  (0, 1], distance ≥ 0, expected executions ≥ 0;
* FC005 — expected executions reach the FDF's energy break-even offset
  ``α·E_rot/(T_sw − T_hw)`` (when FDFs are given) — below it the
  rotation burns more energy than the SI saves (§4.1);
* FC006 — the forecast block dominates at least one use of its SI (the
  structural "fires before the use" guarantee; probabilistic placements
  may legitimately trade this off, hence a warning);
* FC007 — no duplicate (block, SI) forecast.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from ..cfg.dominators import immediate_dominators
from ..cfg.graph import ControlFlowGraph
from .diagnostics import Diagnostic
from .registry import ForecastArtifact, LintContext, checker, diag


def _dominator_chain(
    idom: dict[str, str], entry: str, block: str
) -> set[str]:
    """All dominators of ``block`` (itself included); empty if unreachable."""
    if block not in idom:
        return set()
    chain = {block}
    node = block
    while node != entry:
        node = idom[node]
        chain.add(node)
    return chain


def _reachable_from(cfg: ControlFlowGraph, start: str) -> set[str]:
    seen = {start}
    stack = [start]
    while stack:
        for succ in cfg.successors(stack.pop()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


@checker("forecast-placement", "forecast", ForecastArtifact)
def check_forecast(artifact: ForecastArtifact, ctx: LintContext) -> Iterator[Diagnostic]:
    cfg = artifact.cfg
    subject = artifact.subject or ctx.subject or f"forecast:{len(artifact.points)}-points"

    idom: dict[str, str] | None = None
    if cfg.entry is not None and cfg.entry in cfg:
        try:
            idom = immediate_dominators(cfg)
        except (KeyError, ValueError):  # malformed graphs: CFG rules report
            idom = None

    seen_pairs: set[tuple[str, str]] = set()
    for point in artifact.points:
        loc = f"FC {point.block_id}/{point.si_name}"

        pair = (point.block_id, point.si_name)
        if pair in seen_pairs:
            yield diag(
                "FC007",
                f"duplicate forecast of SI {point.si_name!r} in block "
                f"{point.block_id!r}",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name,
            )
        seen_pairs.add(pair)

        if point.block_id not in cfg:
            yield diag(
                "FC001",
                f"forecast point targets unknown block {point.block_id!r}",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name,
            )
            continue

        if artifact.library is not None and point.si_name not in artifact.library:
            yield diag(
                "FC002",
                f"forecast names SI {point.si_name!r}, absent from the "
                "library",
                subject=subject, location=loc, si=point.si_name,
            )

        if not 0 < point.probability <= 1:
            yield diag(
                "FC004",
                f"forecast probability {point.probability!r} outside (0, 1]",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name,
                probability=point.probability,
            )
        if point.distance < 0 or math.isnan(point.distance):
            yield diag(
                "FC004",
                f"forecast distance {point.distance!r} is negative",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name,
                distance=point.distance,
            )
        if point.expected_executions < 0 or math.isnan(point.expected_executions):
            yield diag(
                "FC004",
                f"forecast expected executions {point.expected_executions!r} "
                "is negative",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name,
                expected_executions=point.expected_executions,
            )

        uses = cfg.blocks_using(point.si_name)
        reachable = _reachable_from(cfg, point.block_id)
        if not any(u in reachable for u in uses):
            yield diag(
                "FC003",
                f"no block using SI {point.si_name!r} is reachable from the "
                f"forecast block {point.block_id!r}",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name, uses=list(uses),
            )
        elif idom is not None and cfg.entry is not None and not any(
            point.block_id in _dominator_chain(idom, cfg.entry, u)
            for u in uses
        ):
            yield diag(
                "FC006",
                f"forecast block {point.block_id!r} dominates no use of SI "
                f"{point.si_name!r}; some paths reach the SI without this "
                "forecast firing",
                subject=subject, location=loc,
                block=point.block_id, si=point.si_name, uses=list(uses),
            )

        if artifact.fdfs is not None and point.si_name in artifact.fdfs:
            offset = artifact.fdfs[point.si_name].offset
            if point.expected_executions + ctx.tolerance < offset:
                yield diag(
                    "FC005",
                    f"forecast expects {point.expected_executions:g} "
                    f"executions of SI {point.si_name!r}, below the FDF "
                    f"break-even offset {offset:g}; the rotation cannot "
                    "amortise its energy",
                    subject=subject, location=loc,
                    block=point.block_id, si=point.si_name,
                    expected_executions=point.expected_executions,
                    offset=offset,
                )
