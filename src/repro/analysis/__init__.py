"""``repro.analysis`` — rispp-lint, the static invariant checker.

A diagnostic framework plus domain checkers that statically analyse
already-constructed RISPP artifacts *without executing a simulation*:

* **lattice** — the §3.1 Molecule lattice laws and the §3.2 ``Rep(S)``
  bounds over a library's molecules;
* **library** — SI/catalogue coherence (software fallback, shared atom
  space, Pareto-dominated molecules, Atom Container capacity);
* **cfg** — profile well-formedness of the BB graph feeding the §4
  forecast pipeline (probability sums, reachability, SCC partition,
  flow conservation);
* **forecast** — placement soundness of Forecast points (§4.2) against
  their CFG, library and FDFs;
* **schedule** — feasibility of dataflow schedules (§3) and rotation
  job sequences on the single reconfiguration port (§5);
* **trace** — rispp-verify's model-based replay of simulation traces
  against a reference state machine of the §3/§5 runtime invariants;
* **feasibility** — rispp-verify's static prover of per-SI worst-case
  rotation latencies, upgrade starvation and dead molecules/atoms;
* **explore** — rispp-explore's bounded model checker: exhaustive
  small-scope state-space exploration of the live rotation runtime,
  proving the MC invariants or emitting verifier-replayable minimized
  counterexamples;
* **audit** — rispp-audit's AST-level source-contract analyzer over
  ``src/repro`` itself: determinism sanitizer, obs-catalogue and
  rule-registry resolution, compute-backend purity.

Entry points: :func:`run_checks` (registry driver over mixed artifacts),
the per-family ``lint_*`` helpers, :func:`verify_trace` /
:func:`verify_runtime` / :func:`prove_feasibility`, :func:`explore`,
:func:`run_audit`, and ``python -m repro lint`` / ``python -m repro
verify`` / ``python -m repro explore`` / ``python -m repro audit``.
The rule catalogue is documented in ``docs/analysis.md``.
"""

from .audit import AuditResult, Baseline, Suppression, run_audit
from .diagnostics import Diagnostic, DiagnosticReport, LintError, Severity
from .explore import (
    EXPLORE_SCOPES,
    Counterexample,
    ExploreResult,
    ExploreScope,
    build_explore_library,
    explore,
)
from .feasibility import (
    FeasibilityResult,
    MoleculeFeasibility,
    SIRotationBound,
    port_backlog_bound,
    prove_feasibility,
    rotation_cycle_table,
)
from .lint import (
    BUILTIN_SUBJECTS,
    lint_builtin,
    lint_cfg,
    lint_events,
    lint_flow,
    lint_forecast,
    lint_library,
    lint_rotations,
    lint_schedule,
)
from .machine import ReferenceMachine
from .rules import families, render_rule_list
from .registry import (
    RULES,
    Checker,
    EventBusArtifact,
    FeasibilityArtifact,
    ForecastArtifact,
    LintContext,
    RotationLog,
    Rule,
    ScheduleArtifact,
    TraceArtifact,
    checker,
    checkers,
    checkers_for,
    diag,
    expand_selectors,
    rule,
    rules_of_family,
    run_checks,
)
from .verify import (
    GoldenTrace,
    VerifyResult,
    golden_from_runtime,
    load_golden,
    run_verify_suite,
    verify_golden_result,
    verify_runtime,
    verify_trace,
    write_golden,
)

__all__ = [
    "AuditResult",
    "BUILTIN_SUBJECTS",
    "Baseline",
    "Checker",
    "Counterexample",
    "Diagnostic",
    "DiagnosticReport",
    "EXPLORE_SCOPES",
    "ExploreResult",
    "ExploreScope",
    "EventBusArtifact",
    "FeasibilityArtifact",
    "FeasibilityResult",
    "ForecastArtifact",
    "GoldenTrace",
    "LintContext",
    "LintError",
    "MoleculeFeasibility",
    "RULES",
    "ReferenceMachine",
    "RotationLog",
    "Rule",
    "SIRotationBound",
    "ScheduleArtifact",
    "Severity",
    "Suppression",
    "TraceArtifact",
    "VerifyResult",
    "build_explore_library",
    "checker",
    "checkers",
    "checkers_for",
    "diag",
    "expand_selectors",
    "explore",
    "families",
    "golden_from_runtime",
    "lint_builtin",
    "lint_cfg",
    "lint_events",
    "lint_flow",
    "lint_forecast",
    "lint_library",
    "lint_rotations",
    "lint_schedule",
    "load_golden",
    "port_backlog_bound",
    "prove_feasibility",
    "render_rule_list",
    "rotation_cycle_table",
    "rule",
    "rules_of_family",
    "run_audit",
    "run_checks",
    "run_verify_suite",
    "verify_golden_result",
    "verify_runtime",
    "verify_trace",
    "write_golden",
]
