"""``repro.analysis`` — rispp-lint, the static invariant checker.

A diagnostic framework plus domain checkers that statically analyse
already-constructed RISPP artifacts *without executing a simulation*:

* **lattice** — the §3.1 Molecule lattice laws and the §3.2 ``Rep(S)``
  bounds over a library's molecules;
* **library** — SI/catalogue coherence (software fallback, shared atom
  space, Pareto-dominated molecules, Atom Container capacity);
* **cfg** — profile well-formedness of the BB graph feeding the §4
  forecast pipeline (probability sums, reachability, SCC partition,
  flow conservation);
* **forecast** — placement soundness of Forecast points (§4.2) against
  their CFG, library and FDFs;
* **schedule** — feasibility of dataflow schedules (§3) and rotation
  job sequences on the single reconfiguration port (§5).

Entry points: :func:`run_checks` (registry driver over mixed artifacts),
the per-family ``lint_*`` helpers, and ``python -m repro lint``.
The rule catalogue is documented in ``docs/analysis.md``.
"""

from .diagnostics import Diagnostic, DiagnosticReport, LintError, Severity
from .lint import (
    BUILTIN_SUBJECTS,
    lint_builtin,
    lint_cfg,
    lint_flow,
    lint_forecast,
    lint_library,
    lint_rotations,
    lint_schedule,
)
from .registry import (
    RULES,
    Checker,
    ForecastArtifact,
    LintContext,
    RotationLog,
    Rule,
    ScheduleArtifact,
    checker,
    checkers,
    checkers_for,
    diag,
    rule,
    rules_of_family,
    run_checks,
)

__all__ = [
    "BUILTIN_SUBJECTS",
    "Checker",
    "Diagnostic",
    "DiagnosticReport",
    "ForecastArtifact",
    "LintContext",
    "LintError",
    "RULES",
    "RotationLog",
    "Rule",
    "ScheduleArtifact",
    "Severity",
    "checker",
    "checkers",
    "checkers_for",
    "diag",
    "lint_builtin",
    "lint_cfg",
    "lint_flow",
    "lint_forecast",
    "lint_library",
    "lint_rotations",
    "lint_schedule",
    "rule",
    "rules_of_family",
    "run_checks",
]
