"""RISPP: Rotating Instruction Set Processing Platform — behavioural reproduction.

Reproduction of Bauer, Shafique, Kramer, Henkel: *RISPP: Rotating
Instruction Set Processing Platform*, DAC 2007.

Top-level re-exports cover the public API most users need:

* the Atom/Molecule formal model (:mod:`repro.core`),
* the compile-time forecast pipeline (:mod:`repro.forecast`),
* the run-time rotation manager (:mod:`repro.runtime`),
* the hardware model (:mod:`repro.hardware`),
* the H.264 case-study library (:mod:`repro.apps.h264`).
"""

from .core import (
    AtomCatalogue,
    AtomKind,
    AtomSpace,
    ForecastedSI,
    Molecule,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    infimum,
    pareto_front_of,
    select_greedy,
    supremum,
)

__version__ = "1.0.0"

__all__ = [
    "AtomCatalogue",
    "AtomKind",
    "AtomSpace",
    "ForecastedSI",
    "Molecule",
    "MoleculeImpl",
    "SILibrary",
    "SpecialInstruction",
    "infimum",
    "pareto_front_of",
    "select_greedy",
    "supremum",
    "__version__",
]
