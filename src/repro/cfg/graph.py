"""Basic-block control-flow graph substrate (paper section 4).

The forecast pipeline runs on the application's Base-Block (BB) graph
annotated with profiling information (Fig. 3): per-block execution counts
and cycle costs, per-edge traversal counts (hence branch probabilities),
and per-block Special-Instruction usage.

:class:`ControlFlowGraph` is a light wrapper that keeps blocks and edges
in deterministic insertion order and offers the derived views the
forecast algorithms need (successor/predecessor maps, edge probabilities,
the transposed graph used for FC placement, DOT export for Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable


@dataclass
class BasicBlock:
    """One basic block with profile annotations.

    Parameters
    ----------
    block_id:
        Unique name within the graph.
    cycles:
        Core cycles one execution of this block costs (excluding SI
        executions, which are priced by the run-time molecule state).
    si_usages:
        ``{si_name: executions per block execution}``.
    exec_count:
        Profiled number of executions (0 until profiled).
    label:
        Optional human-readable annotation (function name etc.).
    """

    block_id: str
    cycles: int = 1
    si_usages: dict[str, int] = field(default_factory=dict)
    exec_count: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.block_id:
            raise ValueError("basic block needs a non-empty id")
        if self.cycles < 0:
            raise ValueError("block cycle cost cannot be negative")
        for si, n in self.si_usages.items():
            if n < 1:
                raise ValueError(f"SI usage count for {si!r} must be positive")

    def uses_si(self, si_name: str) -> bool:
        return si_name in self.si_usages


@dataclass
class Edge:
    """A CFG edge with a profiled traversal count."""

    src: str
    dst: str
    count: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("edge count cannot be negative")


class ControlFlowGraph:
    """A profiled basic-block graph."""

    def __init__(self, entry: str | None = None):
        self._blocks: dict[str, BasicBlock] = {}
        self._edges: dict[tuple[str, str], Edge] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self.entry = entry

    # -- construction ---------------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.block_id in self._blocks:
            raise ValueError(f"duplicate block {block.block_id!r}")
        self._blocks[block.block_id] = block
        self._succ[block.block_id] = []
        self._pred[block.block_id] = []
        if self.entry is None:
            self.entry = block.block_id
        return block

    def block(
        self,
        block_id: str,
        *,
        cycles: int = 1,
        si_usages: dict[str, int] | None = None,
        label: str = "",
    ) -> BasicBlock:
        """Convenience constructor-and-add."""
        return self.add_block(
            BasicBlock(block_id, cycles=cycles, si_usages=si_usages or {}, label=label)
        )

    def add_edge(self, src: str, dst: str, count: int = 0) -> Edge:
        if src not in self._blocks or dst not in self._blocks:
            raise ValueError(f"edge {src!r}->{dst!r} references an unknown block")
        key = (src, dst)
        if key in self._edges:
            raise ValueError(f"duplicate edge {src!r}->{dst!r}")
        edge = Edge(src, dst, count)
        self._edges[key] = edge
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        return edge

    # -- queries ---------------------------------------------------------------

    def __contains__(self, block_id: object) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def blocks(self) -> list[BasicBlock]:
        return list(self._blocks.values())

    def block_ids(self) -> list[str]:
        return list(self._blocks)

    def get(self, block_id: str) -> BasicBlock:
        return self._blocks[block_id]

    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    def edge(self, src: str, dst: str) -> Edge:
        return self._edges[(src, dst)]

    def successors(self, block_id: str) -> list[str]:
        return list(self._succ[block_id])

    def predecessors(self, block_id: str) -> list[str]:
        return list(self._pred[block_id])

    def exit_blocks(self) -> list[str]:
        """Blocks without successors (program exits)."""
        return [b for b in self._blocks if not self._succ[b]]

    def blocks_using(self, si_name: str) -> list[str]:
        return [b.block_id for b in self._blocks.values() if b.uses_si(si_name)]

    def si_names(self) -> list[str]:
        names: list[str] = []
        for block in self._blocks.values():
            for si in block.si_usages:
                if si not in names:
                    names.append(si)
        return names

    # -- probabilities ------------------------------------------------------------

    def edge_probability(self, src: str, dst: str) -> float:
        """Branch probability from profiled edge counts.

        Unprofiled blocks (all outgoing counts zero) fall back to a uniform
        distribution over their successors, so the forecast algorithms stay
        usable on statically constructed graphs.
        """
        out = [self._edges[(src, s)] for s in self._succ[src]]
        if not out:
            raise ValueError(f"block {src!r} has no successors")
        total = sum(e.count for e in out)
        if total == 0:
            return 1.0 / len(out)
        return self._edges[(src, dst)].count / total

    def set_profile(
        self,
        block_counts: dict[str, int] | None = None,
        edge_counts: dict[tuple[str, str], int] | None = None,
    ) -> None:
        """Install profiled execution/traversal counts."""
        for block_id, count in (block_counts or {}).items():
            if count < 0:
                raise ValueError("execution counts cannot be negative")
            self._blocks[block_id].exec_count = count
        for (src, dst), count in (edge_counts or {}).items():
            if count < 0:
                raise ValueError("edge counts cannot be negative")
            self._edges[(src, dst)].count = count

    # -- derived graphs -------------------------------------------------------------

    def transposed(self) -> "ControlFlowGraph":
        """The graph with all edges reversed (used for FC placement)."""
        t = ControlFlowGraph(entry=None)
        for block in self._blocks.values():
            t.add_block(
                BasicBlock(
                    block.block_id,
                    cycles=block.cycles,
                    si_usages=dict(block.si_usages),
                    exec_count=block.exec_count,
                    label=block.label,
                )
            )
        for edge in self._edges.values():
            t.add_edge(edge.dst, edge.src, edge.count)
        exits = self.exit_blocks()
        t.entry = exits[0] if exits else self.entry
        return t

    def to_networkx(self):
        """Export as a ``networkx.DiGraph``.

        Node attributes: ``cycles``, ``exec_count``, ``si_usages``;
        edge attributes: ``count`` and ``probability``.  Lets users run
        arbitrary graph algorithms on the profiled CFG.
        """
        import networkx as nx

        g = nx.DiGraph()
        for block in self._blocks.values():
            g.add_node(
                block.block_id,
                cycles=block.cycles,
                exec_count=block.exec_count,
                si_usages=dict(block.si_usages),
            )
        for edge in self._edges.values():
            g.add_edge(
                edge.src,
                edge.dst,
                count=edge.count,
                probability=self.edge_probability(edge.src, edge.dst),
            )
        return g

    def to_dot(self, *, highlight: Iterable[str] = (), si_marks: bool = True) -> str:
        """Graphviz DOT rendering (the Fig. 3 visualisation).

        Blocks in ``highlight`` (e.g. FC candidates) are drawn boxed; SI
        usages are annotated in the node label; the fill shade encodes the
        profiled execution count.
        """
        highlight = set(highlight)
        max_count = max((b.exec_count for b in self._blocks.values()), default=0)
        lines = ["digraph bbgraph {", "  node [style=filled];"]
        for block in self._blocks.values():
            label = block.block_id
            if block.label:
                label += f"\\n{block.label}"
            if si_marks and block.si_usages:
                uses = ",".join(f"{k}x{v}" for k, v in block.si_usages.items())
                label += f"\\n[{uses}]"
            if block.exec_count:
                label += f"\\n#{block.exec_count}"
            shade = 0
            if max_count:
                shade = int(90 * block.exec_count / max_count)
            shape = "box" if block.block_id in highlight else "ellipse"
            lines.append(
                f'  "{block.block_id}" [label="{label}", shape={shape}, '
                f'fillcolor="gray{100 - shade}"];'
            )
        for edge in self._edges.values():
            attr = f' [label="{edge.count}"]' if edge.count else ""
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{attr};')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph({len(self._blocks)} blocks, "
            f"{len(self._edges)} edges, entry={self.entry!r})"
        )
