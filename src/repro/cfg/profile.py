"""Profiling views over a CFG: traces, counts, and per-SI statistics.

The forecast pipeline consumes three profiled measurements per
(block, SI) pair (§4.1): the probability of reaching an execution of the
SI, the temporal distance until that execution, and the expected number
of executions once reached.  This module derives all three from a
profiled :class:`~repro.cfg.graph.ControlFlowGraph` and bundles them into
:class:`SIStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .distance import expected_distance, max_distance, min_distance
from .graph import ControlFlowGraph
from .probability import reach_probability_scc


def profile_from_trace(cfg: ControlFlowGraph, block_trace: list[str]) -> None:
    """Install block and edge execution counts from an executed block sequence."""
    block_counts: dict[str, int] = {}
    edge_counts: dict[tuple[str, str], int] = {}
    for block_id in block_trace:
        if block_id not in cfg:
            raise ValueError(f"trace mentions unknown block {block_id!r}")
        block_counts[block_id] = block_counts.get(block_id, 0) + 1
    for src, dst in zip(block_trace, block_trace[1:]):
        edge_counts[(src, dst)] = edge_counts.get((src, dst), 0) + 1
    cfg.set_profile(block_counts, edge_counts)


def expected_si_executions(cfg: ControlFlowGraph, si_name: str) -> dict[str, float]:
    """Expected future executions of ``si_name`` from each block (inclusive).

    Solves the Markov expectation ``E(b) = usage(b) + sum p(b->s) E(s)``
    over the profiled branch probabilities.  Unlike the reach probability
    this counts *how many* executions, so loops multiply usage by their
    expected trip count.
    """
    ids = cfg.block_ids()
    index = {b: i for i, b in enumerate(ids)}
    n = len(ids)
    a = np.eye(n)
    rhs = np.zeros(n)
    for b in ids:
        i = index[b]
        rhs[i] = cfg.get(b).si_usages.get(si_name, 0)
        for s in cfg.successors(b):
            a[i, index[s]] -= cfg.edge_probability(b, s)
    try:
        solution = np.linalg.solve(a, rhs)
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "expected-execution system is singular; the profile implies a "
            "loop that never exits"
        ) from exc
    return {b: float(max(solution[index[b]], 0.0)) for b in ids}


@dataclass(frozen=True)
class SIStats:
    """Profiled forecast inputs for one (block, SI) pair (§4.1)."""

    block_id: str
    si_name: str
    probability: float
    min_distance: float
    expected_distance: float
    max_distance: float
    expected_executions: float

    def reachable(self) -> bool:
        return self.probability > 0 and not math.isinf(self.expected_distance)


def collect_si_stats(cfg: ControlFlowGraph, si_name: str) -> dict[str, SIStats]:
    """All per-block forecast inputs for one SI in one pass."""
    targets = cfg.blocks_using(si_name)
    if not targets:
        raise ValueError(f"no block uses SI {si_name!r}")
    prob = reach_probability_scc(cfg, targets)
    dmin = min_distance(cfg, targets)
    dexp = expected_distance(cfg, targets)
    dmax = max_distance(cfg, targets)
    execs = expected_si_executions(cfg, si_name)
    return {
        b: SIStats(
            block_id=b,
            si_name=si_name,
            probability=prob[b],
            min_distance=dmin[b],
            expected_distance=dexp[b],
            max_distance=dmax[b],
            expected_executions=execs[b],
        )
        for b in cfg.block_ids()
    }
