"""Strongly connected components and graph condensation.

The paper's probability algorithm "segments the BB graph into a tree of
strongly connected components (SCC) [Cormen et al.], recursively calls
itself to compute the probability values of the SCCs and finally executes
the algorithm proposed by Li/Hauck to compute the probability in the
resulting tree".  This module provides the segmentation: an iterative
Tarjan SCC finder (no recursion limits on deep CFGs) and the condensation
DAG whose nodes are SCCs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import ControlFlowGraph


def strongly_connected_components(cfg: ControlFlowGraph) -> list[list[str]]:
    """Tarjan's algorithm, iterative form.

    Returns SCCs in reverse topological order of the condensation (every
    SCC appears before any SCC that can reach it), which is Tarjan's
    natural emission order.
    """
    index_counter = 0
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    result: list[list[str]] = []

    for root in cfg.block_ids():
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, succ_i = work[-1]
            if succ_i == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            successors = cfg.successors(node)
            while succ_i < len(successors):
                succ = successors[succ_i]
                succ_i += 1
                if succ not in index:
                    work[-1] = (node, succ_i)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work[-1] = (node, succ_i)
            if succ_i >= len(successors):
                work.pop()
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component.append(w)
                        if w == node:
                            break
                    result.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


@dataclass
class SCCNode:
    """One node of the condensation: a maximal strongly connected component."""

    scc_id: int
    members: tuple[str, ...]
    is_loop: bool = False
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class Condensation:
    """The DAG of SCCs of a CFG."""

    nodes: list[SCCNode]
    scc_of: dict[str, int]
    entry: int | None

    def topological_order(self) -> list[int]:
        """SCC ids in topological order (sources first)."""
        # Tarjan emits reverse topological order; our nodes kept that order.
        return [node.scc_id for node in reversed(self.nodes)]

    def loops(self) -> list[SCCNode]:
        return [n for n in self.nodes if n.is_loop]


def condense(cfg: ControlFlowGraph) -> Condensation:
    """Build the condensation DAG; SCCs with >1 member or a self edge are loops."""
    components = strongly_connected_components(cfg)
    scc_of: dict[str, int] = {}
    nodes: list[SCCNode] = []
    for i, members in enumerate(components):
        for m in members:
            scc_of[m] = i
        has_self_edge = any(
            scc_of.get(s) == i for m in members for s in cfg.successors(m) if s in scc_of
        )
        nodes.append(
            SCCNode(
                scc_id=i,
                members=tuple(members),
                is_loop=len(members) > 1 or has_self_edge,
            )
        )
    # Self-edge detection above only sees already-assigned members; redo
    # exactly now that the full map exists.
    for node in nodes:
        member_set = set(node.members)
        node.is_loop = len(node.members) > 1 or any(
            s in member_set for m in node.members for s in cfg.successors(m)
        )
    seen_edges: set[tuple[int, int]] = set()
    for edge in cfg.edges():
        a, b = scc_of[edge.src], scc_of[edge.dst]
        if a != b and (a, b) not in seen_edges:
            seen_edges.add((a, b))
            nodes[a].successors.append(b)
            nodes[b].predecessors.append(a)
    entry = scc_of.get(cfg.entry) if cfg.entry is not None else None
    return Condensation(nodes=nodes, scc_of=scc_of, entry=entry)
