"""Dominator analysis over the BB graph.

A block ``d`` dominates ``b`` when every path from the entry to ``b``
passes through ``d``.  Dominators give the forecast pipeline a structural
guarantee the probabilistic candidates lack: a Forecast point placed in a
dominator of an SI's usage blocks fires on *every* execution path that
can reach the SI — useful both to validate placements and to hoist a
cluster's FC to the lowest common dominator.

Implemented with the classic iterative dataflow algorithm (Cooper,
Harvey & Kennedy's "A Simple, Fast Dominance Algorithm") in reverse
post-order.
"""

from __future__ import annotations

from .graph import ControlFlowGraph


def _reverse_postorder(cfg: ControlFlowGraph) -> list[str]:
    seen: set[str] = set()
    order: list[str] = []
    # Iterative DFS with an explicit post stack.
    stack: list[tuple[str, int]] = [(cfg.entry, 0)]
    seen.add(cfg.entry)
    while stack:
        node, idx = stack[-1]
        successors = cfg.successors(node)
        if idx < len(successors):
            stack[-1] = (node, idx + 1)
            succ = successors[idx]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def immediate_dominators(cfg: ControlFlowGraph) -> dict[str, str]:
    """The immediate dominator of every entry-reachable block.

    The entry's immediate dominator is itself (the usual convention);
    blocks unreachable from the entry are absent from the result.
    """
    if cfg.entry is None:
        raise ValueError("the CFG needs an entry block")
    order = _reverse_postorder(cfg)
    index = {b: i for i, b in enumerate(order)}
    idom: dict[str, str] = {cfg.entry: cfg.entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block == cfg.entry:
                continue
            preds = [p for p in cfg.predecessors(block) if p in idom]
            if not preds:
                continue
            new = preds[0]
            for p in preds[1:]:
                new = intersect(new, p)
            if idom.get(block) != new:
                idom[block] = new
                changed = True
    return idom


def dominators_of(cfg: ControlFlowGraph, block: str) -> list[str]:
    """All dominators of ``block``, from the block itself up to the entry."""
    idom = immediate_dominators(cfg)
    if block not in idom:
        raise ValueError(f"block {block!r} is unreachable from the entry")
    chain = [block]
    while chain[-1] != cfg.entry:
        chain.append(idom[chain[-1]])
    return chain


def dominates(cfg: ControlFlowGraph, dominator: str, block: str) -> bool:
    """True iff every entry→``block`` path passes through ``dominator``."""
    return dominator in dominators_of(cfg, block)


def common_dominator(cfg: ControlFlowGraph, blocks: list[str]) -> str:
    """The lowest block dominating *all* of ``blocks``.

    This is where a single Forecast point covers every path into an SI's
    whole usage cluster.
    """
    if not blocks:
        raise ValueError("need at least one block")
    chains = [dominators_of(cfg, b) for b in blocks]
    common = set(chains[0])
    for chain in chains[1:]:
        common &= set(chain)
    # The lowest common dominator appears earliest in any chain.
    for candidate in chains[0]:
        if candidate in common:
            return candidate
    raise AssertionError("entry dominates everything")  # pragma: no cover


def forecast_covers_usage(
    cfg: ControlFlowGraph, forecast_block: str, si_name: str
) -> bool:
    """Does an FC in ``forecast_block`` fire before *every* use of the SI?

    True when the forecast block dominates every block using ``si_name``
    — the structural soundness check for a placement.
    """
    usages = cfg.blocks_using(si_name)
    if not usages:
        raise ValueError(f"no block uses SI {si_name!r}")
    idom = immediate_dominators(cfg)
    return all(
        usage in idom and forecast_block in dominators_of(cfg, usage)
        for usage in usages
    )
