"""Reach probability: will an execution starting at block B reach SI S?

Two implementations of the same quantity:

* :func:`reach_probability_scc` follows the paper's structure — segment
  the BB graph into its tree of strongly connected components, solve each
  SCC "recursively" (a small local linear system per loop), then propagate
  through the resulting DAG in reverse topological order (the Li/Hauck
  configuration-prefetching propagation).
* :func:`reach_probability_markov` is the textbook absorbing-Markov-chain
  solution over the whole graph at once; it serves as the exact reference
  the SCC implementation is validated against.

Both take branch probabilities from the profiled edge counts
(:meth:`~repro.cfg.graph.ControlFlowGraph.edge_probability`).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .graph import ControlFlowGraph
from .scc import condense


def reach_probability_markov(
    cfg: ControlFlowGraph, targets: Iterable[str]
) -> dict[str, float]:
    """Exact hit probability for every block via one global linear solve.

    ``targets`` are absorbing with probability 1; exit blocks that are not
    targets absorb with probability 0.
    """
    target_set = set(targets)
    for t in sorted(target_set):
        if t not in cfg:
            raise ValueError(f"unknown target block {t!r}")
    ids = cfg.block_ids()
    transient = [
        b for b in ids if b not in target_set and cfg.successors(b)
    ]
    index = {b: i for i, b in enumerate(transient)}
    n = len(transient)
    a = np.eye(n)
    rhs = np.zeros(n)
    for b in transient:
        i = index[b]
        for s in cfg.successors(b):
            p = cfg.edge_probability(b, s)
            if s in target_set:
                rhs[i] += p
            elif s in index:
                a[i, index[s]] -= p
            # else: non-target exit block, contributes 0.
    solution = np.linalg.solve(a, rhs) if n else np.zeros(0)
    result = {}
    for b in ids:
        if b in target_set:
            result[b] = 1.0
        elif b in index:
            result[b] = float(min(max(solution[index[b]], 0.0), 1.0))
        else:
            result[b] = 0.0
    return result


def reach_probability_scc(
    cfg: ControlFlowGraph, targets: Iterable[str]
) -> dict[str, float]:
    """Hit probability via SCC segmentation + DAG propagation (paper §4.1)."""
    target_set = set(targets)
    for t in sorted(target_set):
        if t not in cfg:
            raise ValueError(f"unknown target block {t!r}")
    condensation = condense(cfg)
    prob: dict[str, float] = {}

    # Tarjan emits SCCs in reverse topological order: every successor SCC
    # of a component is already solved when the component is reached.
    for node in condensation.nodes:
        members = node.members
        if not node.is_loop:
            (b,) = members
            prob[b] = _trivial_probability(cfg, b, target_set, prob)
        else:
            _solve_loop(cfg, members, target_set, prob)
    return prob


def _trivial_probability(
    cfg: ControlFlowGraph,
    block: str,
    targets: set[str],
    solved: dict[str, float],
) -> float:
    if block in targets:
        return 1.0
    successors = cfg.successors(block)
    if not successors:
        return 0.0
    return sum(
        cfg.edge_probability(block, s) * solved[s] for s in successors
    )


def _solve_loop(
    cfg: ControlFlowGraph,
    members: tuple[str, ...],
    targets: set[str],
    solved: dict[str, float],
) -> None:
    """Solve the probabilities inside one loop SCC (local linear system).

    For member ``m``:  ``p(m) = 1`` if target, else
    ``p(m) = sum_in p(m->s) p(s)  +  sum_out p(m->s) p_solved(s)``
    where *in* edges stay inside the SCC and *out* edges leave it (their
    probabilities are already known from downstream SCCs).
    """
    member_set = set(members)
    unknown = [m for m in members if m not in targets]
    index = {m: i for i, m in enumerate(unknown)}
    n = len(unknown)
    a = np.eye(n)
    rhs = np.zeros(n)
    for m in unknown:
        i = index[m]
        for s in cfg.successors(m):
            p = cfg.edge_probability(m, s)
            if s in targets:
                rhs[i] += p
            elif s in member_set:
                a[i, index[s]] -= p
            else:
                rhs[i] += p * solved[s]
    solution = np.linalg.solve(a, rhs) if n else np.zeros(0)
    for m in members:
        if m in targets:
            solved[m] = 1.0
        else:
            solved[m] = float(min(max(solution[index[m]], 0.0), 1.0))
