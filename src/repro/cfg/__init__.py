"""Control-flow-graph substrate: BB graphs, SCCs, probabilities, distances.

Everything the compile-time forecast pipeline (:mod:`repro.forecast`)
needs to know about the application's basic-block structure and profile.
"""

from .dominators import (
    common_dominator,
    dominates,
    dominators_of,
    forecast_covers_usage,
    immediate_dominators,
)
from .distance import expected_distance, max_distance, min_distance
from .graph import BasicBlock, ControlFlowGraph, Edge
from .probability import reach_probability_markov, reach_probability_scc
from .profile import SIStats, collect_si_stats, expected_si_executions, profile_from_trace
from .scc import Condensation, SCCNode, condense, strongly_connected_components

__all__ = [
    "BasicBlock",
    "Condensation",
    "ControlFlowGraph",
    "Edge",
    "SCCNode",
    "SIStats",
    "collect_si_stats",
    "common_dominator",
    "condense",
    "dominates",
    "dominators_of",
    "expected_distance",
    "expected_si_executions",
    "forecast_covers_usage",
    "immediate_dominators",
    "max_distance",
    "min_distance",
    "profile_from_trace",
    "reach_probability_markov",
    "reach_probability_scc",
    "strongly_connected_components",
]
