"""Temporal distance between a block and the next usage of an SI (§4.1).

The FC-candidate decision needs, for a block ``B`` and an SI ``S``, how
many cycles will elapse after ``B`` until ``S`` executes:

* :func:`min_distance` — shortest possible distance (Dijkstra over block
  cycle costs).  A rotation started at ``B`` can only help if even the
  *shortest* path leaves enough time.
* :func:`expected_distance` — typical distance: the expected hitting cost
  of the target set, conditioned on reaching it (walks that exit the
  program never reach ``S`` and must not dilute the estimate).
* :func:`max_distance` — pessimistic distance over the condensation DAG,
  with loop bodies weighted by their profiled average trip count.  A block
  too far ahead would hold Atom Containers hostage.

All distances are in core cycles; a block that itself uses the SI has
distance 0; blocks that cannot reach the SI report ``math.inf``.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

import numpy as np

from .graph import ControlFlowGraph
from .probability import reach_probability_markov
from .scc import condense


def min_distance(
    cfg: ControlFlowGraph, targets: Iterable[str]
) -> dict[str, float]:
    """Shortest-path cycle distance from every block to the target set.

    Traversing edge ``u -> v`` costs ``cycles(v)`` (the cycles spent
    executing ``v``); a target block costs nothing on arrival — the SI
    fires at its start for our purposes.
    """
    target_set = set(targets)
    dist = {b: math.inf for b in cfg.block_ids()}
    heap: list[tuple[float, str]] = []
    for t in sorted(target_set):
        if t not in cfg:
            raise ValueError(f"unknown target block {t!r}")
        dist[t] = 0.0
        heapq.heappush(heap, (0.0, t))
    # Dijkstra on the transposed graph: settle distances *to* targets.
    while heap:
        d, block = heapq.heappop(heap)
        if d > dist[block]:
            continue
        for pred in cfg.predecessors(block):
            if pred in target_set:
                continue
            # Arriving *at* a target costs nothing extra; arriving at an
            # intermediate block costs that block's cycles.
            nd = d + (0 if block in target_set else cfg.get(block).cycles)
            if nd < dist[pred]:
                dist[pred] = nd
                heapq.heappush(heap, (nd, pred))
    return dist


def expected_distance(
    cfg: ControlFlowGraph, targets: Iterable[str]
) -> dict[str, float]:
    """Expected cycles until the target set, conditioned on reaching it.

    Uses the Doob h-transform: with reach probabilities ``h``, the
    conditioned walk takes edge ``u -> v`` with probability
    ``p(u->v) h(v) / h(u)``; the expected hitting cost then solves a
    linear system over blocks with ``h > 0``.
    """
    target_set = set(targets)
    h = reach_probability_markov(cfg, target_set)
    ids = cfg.block_ids()
    transient = [b for b in ids if b not in target_set and h[b] > 0]
    index = {b: i for i, b in enumerate(transient)}
    n = len(transient)
    a = np.eye(n)
    rhs = np.zeros(n)
    for b in transient:
        i = index[b]
        for s in cfg.successors(b):
            p_cond = cfg.edge_probability(b, s) * h[s] / h[b]
            if p_cond == 0:
                continue
            step_cost = 0.0 if s in target_set else cfg.get(s).cycles
            rhs[i] += p_cond * step_cost
            if s in index:
                a[i, index[s]] -= p_cond
    solution = np.linalg.solve(a, rhs) if n else np.zeros(0)
    result: dict[str, float] = {}
    for b in ids:
        if b in target_set:
            result[b] = 0.0
        elif b in index:
            result[b] = float(max(solution[index[b]], 0.0))
        else:
            result[b] = math.inf
    return result


def max_distance(
    cfg: ControlFlowGraph, targets: Iterable[str]
) -> dict[str, float]:
    """Pessimistic cycle distance via longest path on the condensation DAG.

    Within a loop SCC the body cost is multiplied by the profiled average
    trip count (ratio of member executions to entries into the SCC,
    defaulting to 1 when unprofiled), making the estimate finite.
    Blocks that cannot reach a target report ``inf``.
    """
    target_set = set(targets)
    for t in sorted(target_set):
        if t not in cfg:
            raise ValueError(f"unknown target block {t!r}")
    condensation = condense(cfg)
    scc_of = condensation.scc_of

    scc_cost: dict[int, float] = {}
    for node in condensation.nodes:
        body = sum(cfg.get(m).cycles for m in node.members)
        if node.is_loop:
            execs = sum(cfg.get(m).exec_count for m in node.members)
            entries = sum(
                cfg.edge(p, m).count
                for m in node.members
                for p in cfg.predecessors(m)
                if scc_of[p] != node.scc_id
            )
            trips = (execs / entries) if entries else 1.0
            body *= max(trips, 1.0)
        scc_cost[node.scc_id] = body

    target_sccs = {scc_of[t] for t in target_set}
    # Entering a target SCC costs, pessimistically, one pass over its
    # non-target members before the target fires (0 for a trivial SCC).
    target_entry_cost = {
        scc: sum(
            cfg.get(m).cycles
            for m in condensation.nodes[scc].members
            if m not in target_set
        )
        for scc in sorted(target_sccs)
    }
    # Longest distance from each SCC to any target SCC; process in Tarjan
    # (reverse topological) order so successors are settled first.
    best: dict[int, float] = {}
    for node in condensation.nodes:
        if node.scc_id in target_sccs:
            best[node.scc_id] = 0.0
            continue
        candidates = [
            (target_entry_cost[s] if s in target_sccs else scc_cost[s]) + best[s]
            for s in node.successors
            if best.get(s, math.inf) != math.inf
        ]
        best[node.scc_id] = max(candidates) if candidates else math.inf

    result: dict[str, float] = {}
    for b in cfg.block_ids():
        if b in target_set:
            result[b] = 0.0
        else:
            result[b] = best[scc_of[b]]
    return result
