"""The pure-software baseline: every SI runs as its optimised software
molecule on the plain core (Fig. 11/12's "Opt. SW" bars)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.library import SILibrary


@dataclass
class SoftwareProcessor:
    """A core with no SI hardware at all."""

    library: SILibrary

    def si_cycles(self, si_name: str) -> int:
        return self.library.get(si_name).software_cycles

    def execute_workload(self, executions: dict[str, int]) -> int:
        """Total SI cycles for a given execution-count profile."""
        total = 0
        for name, count in executions.items():
            if count < 0:
                raise ValueError("execution counts cannot be negative")
            total += count * self.si_cycles(name)
        return total
