"""Baselines the paper compares against: fixed-SI ASIP and pure software."""

from .asip import ExtensibleProcessor
from .software import SoftwareProcessor

__all__ = ["ExtensibleProcessor", "SoftwareProcessor"]
