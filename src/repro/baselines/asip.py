"""The extensible-processor (ASIP) baseline.

An extensible processor selects SI implementations **once, at design
time**, and fabricates dedicated hardware for them: every selected SI is
always fast, every unselected SI always runs as software, and the silicon
for *all* selected SIs is paid simultaneously (no rotation, no sharing
over time).  This is the comparison target of Fig. 1 (area) and the
"fixed SI implementations at design-time" limitation Fig. 13 calls out.

Design-time selection reuses the same molecule-selection algorithm as the
run-time system — the difference is purely *when* it runs and that the
choice can never adapt afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..core.library import SILibrary
from ..core.molecule import Molecule
from ..core.selection import ForecastedSI, SelectionResult, select_greedy
from ..core.si import MoleculeImpl


@dataclass
class ExtensibleProcessor:
    """A design-time-fixed configuration of SI hardware."""

    library: SILibrary
    chosen: dict[str, MoleculeImpl | None]
    area_molecule: Molecule
    #: Dedicated hardware area: the *sum* of the chosen molecules (no
    #: sharing across SIs — each SI gets its own data path).
    dedicated_atoms: int = field(default=0)

    @classmethod
    def design(
        cls,
        library: SILibrary,
        workload: Iterable[ForecastedSI],
        atom_budget: int,
        *,
        share_atoms: bool = False,
    ) -> "ExtensibleProcessor":
        """Pick the fixed SI set for an expected workload profile.

        ``share_atoms=False`` (the default, and the realistic ASIP model)
        accounts each SI's data path separately; with ``share_atoms=True``
        the comparison becomes RISPP-like spatial sharing at design time.
        """
        workload = list(workload)
        if share_atoms:
            result: SelectionResult = select_greedy(library, workload, atom_budget)
            chosen = result.chosen
        else:
            chosen = _select_dedicated(library, workload, atom_budget)
        area = library.space.zero()
        dedicated = 0
        for impl in chosen.values():
            if impl is None:
                continue
            rc = library.restricted_to_reconfigurable(impl.molecule)
            area = area | rc
            dedicated += abs(rc)
        return cls(
            library=library,
            chosen=chosen,
            area_molecule=area,
            dedicated_atoms=dedicated,
        )

    def si_cycles(self, si_name: str) -> int:
        """Latency of one SI execution on this fixed processor."""
        impl = self.chosen.get(si_name)
        if impl is None:
            return self.library.get(si_name).software_cycles
        return impl.cycles

    def execute_workload(self, executions: dict[str, int]) -> int:
        """Total SI cycles for a given execution-count profile."""
        total = 0
        for name, count in executions.items():
            if count < 0:
                raise ValueError("execution counts cannot be negative")
            total += count * self.si_cycles(name)
        return total


def _select_dedicated(
    library: SILibrary,
    workload: list[ForecastedSI],
    atom_budget: int,
) -> dict[str, MoleculeImpl | None]:
    """Greedy design-time selection with per-SI dedicated hardware.

    Each SI's molecule is charged its full atom count (sum, not
    supremum): dedicated data paths cannot share atom instances.
    """
    if atom_budget < 0:
        raise ValueError("atom budget cannot be negative")
    chosen: dict[str, MoleculeImpl | None] = {
        w.si.name: None for w in workload
    }
    used = 0

    def gain(w: ForecastedSI, impl: MoleculeImpl | None) -> float:
        if impl is None:
            return 0.0
        return w.expected_executions * max(w.si.software_cycles - impl.cycles, 0)

    while True:
        best = None
        for w in workload:
            current = chosen[w.si.name]
            current_cost = (
                0
                if current is None
                else abs(library.restricted_to_reconfigurable(current.molecule))
            )
            current_gain = gain(w, current)
            for impl in w.si.implementations:
                cost = abs(library.restricted_to_reconfigurable(impl.molecule))
                extra = cost - current_cost
                delta = gain(w, impl) - current_gain
                if delta <= 0 or used + extra > atom_budget:
                    continue
                score = delta / (extra + 0.5)
                if best is None or score > best[0]:
                    best = (score, w.si.name, impl, extra)
        if best is None:
            return chosen
        _, name, impl, extra = best
        chosen[name] = impl
        used += extra
