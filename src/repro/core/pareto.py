"""Pareto analysis of Molecule implementations (paper Fig. 13).

Each hardware molecule of an SI is a point in the (resources, latency)
plane: ``x = |m|`` (Atom instances; optionally only reconfigurable ones)
and ``y = cycles``.  The run-time system moves along the Pareto-optimal
front of this point cloud as Atoms become available — the "dynamic
trade-off" highlighted in Fig. 13, something a design-time-fixed ASIP
cannot do.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend import BackendSpec, resolve_backend
from .si import MoleculeImpl, SpecialInstruction


@dataclass(frozen=True)
class ParetoPoint:
    """One point of an SI's resource/latency trade-off curve."""

    atoms: int
    cycles: int
    impl: MoleculeImpl


def tradeoff_points(
    si: SpecialInstruction, *, reconfigurable_only_kinds: tuple[str, ...] | None = None
) -> list[ParetoPoint]:
    """All (atoms, cycles) points of ``si``, sorted by atoms then cycles.

    When ``reconfigurable_only_kinds`` is given, the x-coordinate counts
    only those atom kinds (Atom-Container occupancy).
    """
    points = []
    for impl in si.implementations:
        molecule = impl.molecule
        if reconfigurable_only_kinds is not None:
            molecule = molecule.restricted_to(reconfigurable_only_kinds)
        points.append(ParetoPoint(abs(molecule), impl.cycles, impl))
    points.sort(key=lambda p: (p.atoms, p.cycles))
    return points


def pareto_front(
    points: list[ParetoPoint], *, backend: BackendSpec | None = None
) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by ``(atoms, cycles)``.

    A point is kept iff no other point has ``atoms <=`` and ``cycles <=``
    with at least one strict inequality — exactly the predicate of
    :func:`is_pareto_optimal`, so membership in the front and
    per-point optimality always agree.  In particular, exact-duplicate
    ``(atoms, cycles)`` points do not dominate each other and therefore
    *all* stay on the front (in their original relative order); callers
    wanting one representative per coordinate must dedupe explicitly.

    The domination scan runs on the resolved compute backend (see
    :mod:`repro.core.backend`); ``backend`` overrides it per call.
    """
    ordered = sorted(points, key=lambda p: (p.atoms, p.cycles))
    if not ordered:
        return []
    mask = resolve_backend(backend).pareto_mask(
        [p.atoms for p in ordered], [p.cycles for p in ordered]
    )
    return [p for p, keep in zip(ordered, mask) if keep]


def pareto_front_of(
    si: SpecialInstruction, *, reconfigurable_only_kinds: tuple[str, ...] | None = None
) -> list[ParetoPoint]:
    """Convenience: Pareto front straight from an SI."""
    return pareto_front(
        tradeoff_points(si, reconfigurable_only_kinds=reconfigurable_only_kinds)
    )


def is_pareto_optimal(point: ParetoPoint, points: list[ParetoPoint]) -> bool:
    """True iff no point in ``points`` dominates ``point``.

    Uses the same domination predicate as :func:`pareto_front`, so the
    two never disagree — including on exact-duplicate points, which are
    mutually non-dominating and hence all optimal.
    """
    for other in points:
        if other is point:
            continue
        if (
            other.atoms <= point.atoms
            and other.cycles <= point.cycles
            and (other.atoms < point.atoms or other.cycles < point.cycles)
        ):
            return False
    return True
