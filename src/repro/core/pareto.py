"""Pareto analysis of Molecule implementations (paper Fig. 13).

Each hardware molecule of an SI is a point in the (resources, latency)
plane: ``x = |m|`` (Atom instances; optionally only reconfigurable ones)
and ``y = cycles``.  The run-time system moves along the Pareto-optimal
front of this point cloud as Atoms become available — the "dynamic
trade-off" highlighted in Fig. 13, something a design-time-fixed ASIP
cannot do.
"""

from __future__ import annotations

from dataclasses import dataclass

from .si import MoleculeImpl, SpecialInstruction


@dataclass(frozen=True)
class ParetoPoint:
    """One point of an SI's resource/latency trade-off curve."""

    atoms: int
    cycles: int
    impl: MoleculeImpl


def tradeoff_points(
    si: SpecialInstruction, *, reconfigurable_only_kinds: tuple[str, ...] | None = None
) -> list[ParetoPoint]:
    """All (atoms, cycles) points of ``si``, sorted by atoms then cycles.

    When ``reconfigurable_only_kinds`` is given, the x-coordinate counts
    only those atom kinds (Atom-Container occupancy).
    """
    points = []
    for impl in si.implementations:
        molecule = impl.molecule
        if reconfigurable_only_kinds is not None:
            molecule = molecule.restricted_to(reconfigurable_only_kinds)
        points.append(ParetoPoint(abs(molecule), impl.cycles, impl))
    points.sort(key=lambda p: (p.atoms, p.cycles))
    return points


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset: strictly decreasing cycles as atoms grow.

    A point is kept iff no other point has ``atoms <=`` and ``cycles <=``
    with at least one strict inequality.  For equal-atom groups only the
    fastest survives.
    """
    best_by_atoms: dict[int, ParetoPoint] = {}
    for p in sorted(points, key=lambda p: (p.atoms, p.cycles)):
        if p.atoms not in best_by_atoms:
            best_by_atoms[p.atoms] = p
    front: list[ParetoPoint] = []
    best_cycles = None
    for atoms in sorted(best_by_atoms):
        p = best_by_atoms[atoms]
        if best_cycles is None or p.cycles < best_cycles:
            front.append(p)
            best_cycles = p.cycles
    return front


def pareto_front_of(
    si: SpecialInstruction, *, reconfigurable_only_kinds: tuple[str, ...] | None = None
) -> list[ParetoPoint]:
    """Convenience: Pareto front straight from an SI."""
    return pareto_front(
        tradeoff_points(si, reconfigurable_only_kinds=reconfigurable_only_kinds)
    )


def is_pareto_optimal(point: ParetoPoint, points: list[ParetoPoint]) -> bool:
    """True iff no point in ``points`` dominates ``point``."""
    for other in points:
        if other is point:
            continue
        if (
            other.atoms <= point.atoms
            and other.cycles <= point.cycles
            and (other.atoms < point.atoms or other.cycles < point.cycles)
        ):
            return False
    return True
