"""Atom kind descriptors.

An *Atom* is an elementary, reusable data path (paper section 3).  This
module holds the architecture-level descriptor: a name, whether the atom
occupies a partially reconfigurable Atom Container (AC) or is part of the
static fabric (the paper's ``Load``/``Add``/``Store`` helpers live in the
static data path, while ``QuadSub``/``Pack``/``Transform``/``SATD`` are
rotated through ACs), and optional hardware figures used by the
reconfiguration model (bitstream size determines rotation time).

Behavioural implementations of concrete atoms (what they *compute*) live
with the application that defines them, e.g. ``repro.apps.h264.atoms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from .molecule import AtomSpace


@dataclass(frozen=True)
class AtomKind:
    """Architecture-level description of one Atom kind.

    Parameters
    ----------
    name:
        Unique atom-kind name (e.g. ``"Transform"``).
    reconfigurable:
        ``True`` when instances of this atom are rotated through Atom
        Containers; ``False`` for atoms hard-wired into the static fabric.
    bitstream_bytes:
        Size of the partial bitstream that configures one instance into an
        AC.  Determines rotation latency; irrelevant (0) for static atoms.
    slices, luts:
        FPGA resource usage of one instance (Table 1); informational for
        static atoms.
    latency_cycles:
        Latency of one execution of the atom's data path, in core cycles.
    baseline:
        Instances of this kind provided by the *static* fabric even when
        no container holds it (e.g. the case study's single built-in
        ``Load`` lane; extra ``Load`` atoms can still be rotated into
        containers on top).  Only meaningful for reconfigurable kinds —
        static kinds are always available at the fabric's multiplicity.
    description:
        Optional human-readable summary of the data path.
    """

    name: str
    reconfigurable: bool = True
    bitstream_bytes: int = 0
    slices: int = 0
    luts: int = 0
    latency_cycles: int = 1
    baseline: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("atom kind needs a non-empty name")
        if self.bitstream_bytes < 0 or self.slices < 0 or self.luts < 0:
            raise ValueError("hardware figures must be non-negative")
        if self.latency_cycles < 1:
            raise ValueError("latency must be at least one cycle")
        if not self.reconfigurable and self.bitstream_bytes:
            raise ValueError("static atoms have no partial bitstream")
        if self.baseline < 0:
            raise ValueError("baseline cannot be negative")
        if not self.reconfigurable and self.baseline:
            raise ValueError(
                "static atoms are always available; baseline applies only "
                "to reconfigurable kinds"
            )


@dataclass(frozen=True)
class AtomCatalogue:
    """An ordered collection of :class:`AtomKind` forming one architecture.

    Provides the :class:`~repro.core.molecule.AtomSpace` the molecules of
    this architecture live in, plus convenient kind lookups.
    """

    kinds: tuple[AtomKind, ...]
    _by_name: dict[str, AtomKind] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        by_name: dict[str, AtomKind] = {}
        for kind in self.kinds:
            if kind.name in by_name:
                raise ValueError(f"duplicate atom kind {kind.name!r}")
            by_name[kind.name] = kind
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, kinds: Iterable[AtomKind]) -> "AtomCatalogue":
        return cls(tuple(kinds))

    def __iter__(self):
        return iter(self.kinds)

    def __len__(self) -> int:
        return len(self.kinds)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def get(self, name: str) -> AtomKind:
        """Look up an atom kind by name; raises ``KeyError`` if unknown."""
        return self._by_name[name]

    @property
    def space(self) -> AtomSpace:
        """The molecule vector space spanned by this catalogue."""
        return AtomSpace(kind.name for kind in self.kinds)

    def reconfigurable_kinds(self) -> tuple[AtomKind, ...]:
        """Atom kinds that occupy Atom Containers."""
        return tuple(k for k in self.kinds if k.reconfigurable)

    def static_kinds(self) -> tuple[AtomKind, ...]:
        """Atom kinds hard-wired into the static fabric."""
        return tuple(k for k in self.kinds if not k.reconfigurable)

    def reconfigurable_names(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.kinds if k.reconfigurable)

    def baseline_counts(self) -> dict[str, int]:
        """Static-fabric instances of reconfigurable kinds (``baseline``)."""
        return {k.name: k.baseline for k in self.kinds if k.reconfigurable}
